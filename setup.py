"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` (legacy editable installs) on offline
machines that lack wheel/bdist_wheel support.
"""

from setuptools import setup

setup()
