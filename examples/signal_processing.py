#!/usr/bin/env python
"""Scenario: a 2D signal-processing pipeline (FFT + convolution filter).

Two of the paper's application constructs in one pipeline:

* **multi-dimensional array access** — the 2D FFT's second dimension
  runs directly in the SRF on the indexed machines (Figure 3b), while
  Base/Cache rotate the array through memory (Figure 3a);
* **neighbour access in a regular grid** — the 5x5 convolution reads
  its 25-tap window with in-lane indexed SRF accesses instead of
  managing a scratchpad (Figure 4).

Both stages verify bit-level results against numpy references.

Run:  python examples/signal_processing.py
"""

from repro.apps import fft, filter2d
from repro.config import base_config, cache_config, isrf4_config


def main():
    configs = [base_config(), isrf4_config(), cache_config()]

    print("Stage 1: 2D FFT (32 x 32 complex, resident in the SRF)")
    fft_results = {}
    for config in configs:
        result = fft.run(config, n=32).require_verified()
        fft_results[config.name] = result
    base = fft_results["Base"]
    for name, result in fft_results.items():
        rotation = "through memory" if name != "ISRF4" else "in-SRF indexed"
        print(f"  {name:6s}: {result.cycles:7d} cycles "
              f"({base.cycles / result.cycles:4.2f}x), "
              f"{result.offchip_words:6d} off-chip words "
              f"[2nd dimension {rotation}]")

    print("\nStage 2: 5x5 convolution (64 x 64 image)")
    flt_results = {}
    for config in configs:
        result = filter2d.run(config, height=64, width=64)
        flt_results[config.name] = result.require_verified()
    base = flt_results["Base"]
    for name, result in flt_results.items():
        run = result.stats.kernel_runs[0]
        how = ("scratchpad window management" if name != "ISRF4"
               else "25 in-lane indexed reads/pixel")
        print(f"  {name:6s}: {result.cycles:7d} cycles "
              f"({base.cycles / result.cycles:4.2f}x), kernel II={run.ii} "
              f"[{how}]")

    total_base = fft_results["Base"].cycles + flt_results["Base"].cycles
    total_isrf = fft_results["ISRF4"].cycles + flt_results["ISRF4"].cycles
    print(f"\nPipeline total: Base {total_base} cycles, "
          f"ISRF4 {total_isrf} cycles "
          f"-> {total_base / total_isrf:.2f}x with an 18% SRF area cost "
          f"(~2.4% of the die).")


if __name__ == "__main__":
    main()
