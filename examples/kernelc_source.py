#!/usr/bin/env python
"""Scenario: compile the paper's Figure 10 KernelC source, verbatim.

The paper's programmer interface (§4.7) is the KernelC language with
indexed stream types. This example feeds the figure's source text —
comments and all — through the bundled KernelC front-end, schedules it
with the modulo scheduler, and runs it on the cycle-accurate ISRF4
machine.

Run:  python examples/kernelc_source.py
"""

from repro.config import isrf4_config
from repro.core import SrfArray
from repro.kernel import ModuloScheduler, compile_kernelc
from repro.machine import KernelInvocation, StreamProcessor, StreamProgram
from repro.memory import load_op, store_op

FIGURE_10 = """
kernel lookup(
    istream<int> in,       // sequential in stream
    idxl_istream<int> LUT, // indexed in stream
    ostream<int> out) {    // seq. out stream
    int a, b, c;
    while (!eos(in)) {
        in >> a;           // sequential stream access
        LUT[a] >> b;       // indexed stream access
        c = foo(a, b);
        out << c;
    }
}
"""


def foo(a, b):
    return (a * 7 + b) & 0xFFFF


def main():
    kernel, streams = compile_kernelc(FIGURE_10, intrinsics={"foo": foo})
    print("compiled kernel:", kernel.name)
    print("streams:", ", ".join(
        f"{name} ({stream.kind.value})" for name, stream in streams.items()
    ))
    schedule = ModuloScheduler().schedule(kernel)
    print(f"modulo schedule: II={schedule.ii}, depth={schedule.depth}, "
          f"stages={schedule.stages}\n")

    config = isrf4_config()
    proc = StreamProcessor(config)
    lanes = config.lanes
    n = 128
    table = [v * v for v in range(64)]
    inputs = [(13 * i) % 64 for i in range(n)]

    in_arr = SrfArray(proc.srf, n, "in")
    out_arr = SrfArray(proc.srf, n, "out")
    lut_arr = SrfArray(proc.srf, len(table) * lanes, "LUT")
    lut_arr.fill_replicated(table)
    src = proc.memory.allocate(n, "src")
    dst = proc.memory.allocate(n, "dst")
    proc.memory.load_region(src, inputs)

    prog = StreamProgram("fig10")
    t_load = prog.add_memory(load_op(in_arr.seq_read(), src))
    t_k = prog.add_kernel(KernelInvocation(kernel, {
        "in": in_arr.seq_read(),
        "LUT": lut_arr.inlane_read(len(table)),
        "out": out_arr.seq_write(),
    }, iterations=n // lanes), deps=[t_load])
    prog.add_memory(store_op(out_arr.seq_write(name="st"), dst),
                    deps=[t_k])
    stats = proc.run_program(prog)

    results = proc.memory.dump_region(dst)
    expected = [foo(v, table[v]) for v in inputs]
    assert results == expected, "functional mismatch!"
    print(f"ran {n} lookups in {stats.total_cycles} cycles on "
          f"{config.name}; all results verified.")


if __name__ == "__main__":
    main()
