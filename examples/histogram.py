#!/usr/bin/env python
"""Scenario: in-SRF histogramming with read-write indexed streams.

Demonstrates the paper's §7 future-work extension, implemented here:
"read-write data structures allow even more flexibility for
application-specific tasks as well as system-level uses such as
spilling local registers to the SRF."

A histogram needs read-modify-write per input element — impossible with
the paper's read-xor-write streams inside one kernel (the Base machine
would need one pass per bin, or sort-based binning through memory).
With an ``idxl_iostream``, each lane increments its private bins in
place; reads and writes share the stream's address FIFO, which is what
makes read-after-write order safe.

Run:  python examples/histogram.py
"""

import random

from repro.config import isrf4_config
from repro.core import SrfArray
from repro.kernel import KernelBuilder
from repro.machine import KernelInvocation, StreamProcessor, StreamProgram
from repro.memory import load_op, store_op


def main():
    bins = 16
    samples_per_lane = 256
    config = isrf4_config()
    proc = StreamProcessor(config)
    lanes = config.lanes

    # Kernel: bins[v] += 1 for each input sample v.
    b = KernelBuilder("histogram")
    in_s = b.istream("in")
    table = b.idxl_iostream("bins")
    value = b.read(in_s)
    count = b.idx_read(table, value)
    b.idx_write(table, value, b.logic(lambda c: c + 1, count))
    kernel = b.build()

    rng = random.Random(42)
    data = [
        [min(bins - 1, int(abs(rng.gauss(bins / 2, bins / 5))))
         for _ in range(samples_per_lane)]
        for _ in range(lanes)
    ]
    in_arr = SrfArray(proc.srf, samples_per_lane * lanes, "in")
    bins_arr = SrfArray(proc.srf, bins * lanes, "bins")
    bins_arr.fill_replicated([0] * bins)
    src = proc.memory.allocate(samples_per_lane * lanes, "src")
    proc.memory.load_region(src, in_arr.stream_image_per_lane(data))

    prog = StreamProgram("histogram")
    t_load = prog.add_memory(load_op(in_arr.seq_read(), src))
    prog.add_kernel(KernelInvocation(kernel, {
        "in": in_arr.seq_read(),
        "bins": bins_arr.inlane_readwrite(bins),
    }, iterations=samples_per_lane), deps=[t_load])
    stats = proc.run_program(prog)

    # Merge per-lane histograms and verify against Python.
    totals = [0] * bins
    for lane in range(lanes):
        for v, count in enumerate(bins_arr.read_per_lane(lane, bins)):
            totals[v] += count
    expected = [0] * bins
    for lane_data in data:
        for v in lane_data:
            expected[v] += 1
    assert totals == expected, "histogram mismatch!"

    run = stats.kernel_runs[0]
    print(f"{lanes * samples_per_lane} samples histogrammed in "
          f"{stats.total_cycles} cycles "
          f"(II={run.ii}, SRF stalls={run.srf_stall_cycles})")
    peak = max(totals)
    for v, count in enumerate(totals):
        bar = "#" * round(40 * count / peak)
        print(f"  bin {v:2d} {count:5d} {bar}")
    print("verified against the Python reference.")


if __name__ == "__main__":
    main()
