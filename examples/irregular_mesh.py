#!/usr/bin/env python
"""Scenario: neighbour interactions on an irregular mesh (IG, Table 4).

A scientific-computing sweep over the paper's four IG dataset
configurations: sparse/dense graphs, memory-/compute-limited kernels,
short/long strips. Shows the two mechanisms behind the indexed SRF's
advantage on irregular data (Figure 5):

* replication elimination — Base gathers one replicated neighbour
  record per edge; ISRF loads each referenced node once and reads it
  via cross-lane indexed accesses;
* strip doubling — the saved space doubles the strip length, amortising
  kernel startup, pipeline fill/drain and inter-lane load imbalance.

Run:  python examples/irregular_mesh.py
"""

from repro.apps import igraph
from repro.config import base_config, isrf4_config


def main():
    nodes = 768
    print(f"Irregular graph, {nodes} nodes, Table 4 dataset sweep\n")
    header = (f"{'dataset':8s} {'flops':>5s} {'deg':>4s} "
              f"{'strip B/I':>10s} {'cyc/edge B':>11s} {'cyc/edge I':>11s} "
              f"{'speedup':>8s} {'traffic':>8s}")
    print(header)
    print("-" * len(header))
    for name, dataset in igraph.TABLE4.items():
        base = igraph.run(base_config(), dataset=name, nodes=nodes,
                          strips_to_run=3).require_verified()
        isrf = igraph.run(isrf4_config(), dataset=name, nodes=nodes,
                          strips_to_run=3).require_verified()
        base_edges = base.details["edges_processed"]
        isrf_edges = isrf.details["edges_processed"]
        cpe_base = base.cycles / base_edges
        cpe_isrf = isrf.cycles / isrf_edges
        traffic = (isrf.offchip_words / isrf_edges) / (
            base.offchip_words / base_edges)
        print(f"{name:8s} {dataset.flops_per_neighbor:5d} "
              f"{dataset.avg_degree:4d} "
              f"{dataset.base_strip_edges:4d}/{dataset.isrf_strip_edges:<4d} "
              f"{cpe_base:11.2f} {cpe_isrf:11.2f} "
              f"{cpe_base / cpe_isrf:7.2f}x {traffic:8.2f}")
    print("\nAll node updates verified against the Python reference "
          "sweep. (Paper: IG speedups range from ~1.03x for the "
          "compute-limited long-strip dataset to >1.5x for the "
          "memory-limited ones.)")


if __name__ == "__main__":
    main()
