#!/usr/bin/env python
"""Scenario: SRF design-space exploration (the architect's view).

Reproduces the hardware-facing studies of the paper:

* area overheads of each indexed-SRF organisation (§4.6), versus the
  cache alternative;
* access energies (§4.4);
* in-lane indexed throughput vs sub-array count and FIFO depth
  (Figure 17) — how much sub-banking is worth buying;
* cross-lane throughput vs network ports per bank (Figure 18) — why
  the paper stops at 1 port per bank.

Run:  python examples/design_space.py
"""

from repro.apps.microbench import (
    crosslane_random_read_throughput,
    inlane_random_read_throughput,
)
from repro.area import DieModel, EnergyModel, SrfAreaModel
from repro.harness import render_grid


def main():
    area = SrfAreaModel()
    die = DieModel(area)
    energy = EnergyModel()

    print("SRF organisation cost (128 KB, 0.13 um):")
    base_mm2 = area.sequential().total_mm2
    print(f"  sequential-only SRF: {base_mm2:.2f} mm^2")
    for entry in die.report():
        print(f"  {entry.variant:16s}: +{entry.srf_overhead * 100:4.1f}% "
              f"SRF area = +{entry.die_overhead * 100:4.2f}% of the die")
    cache = die.cache_overhead()
    print(f"  {'Cache (128 KB)':16s}: +{cache.srf_overhead * 100:4.0f}% "
          f"SRF area = +{cache.die_overhead * 100:4.1f}% of the die")
    print(f"  energy: sequential {energy.sequential_word_nj:.3f} nJ/word, "
          f"indexed {energy.indexed_word_nj:.2f} nJ/word, "
          f"DRAM {energy.dram_word_nj:.1f} nJ/word\n")

    print("How many sub-arrays per bank? (4 random reads/cycle/cluster)")
    values = {}
    subarrays = [1, 2, 4, 8]
    fifos = [1, 4, 8]
    for s in subarrays:
        for f in fifos:
            r = inlane_random_read_throughput(subarrays=s, fifo_entries=f,
                                              cycles=800)
            values[(s, f)] = f"{r.words_per_cycle_per_lane:.2f}"
    print(render_grid("  in-lane words/cycle/lane", "sub-arrays", subarrays,
                      "FIFO", fifos, values))
    print("  -> 4 sub-arrays (ISRF4) is the knee: +18% SRF area buys "
          "~2.6 words/cycle/lane.\n")

    print("How many cross-lane network ports per bank?")
    for ports in (1, 2, 4):
        r = crosslane_random_read_throughput(ports_per_bank=ports,
                                             cycles=800)
        print(f"  {ports} port(s): {r.words_per_cycle_per_lane:.3f} "
              f"words/cycle/lane")
    print("  -> beyond 2 ports the SRF port itself is the bottleneck; "
          "the paper ships 1.")


if __name__ == "__main__":
    main()
