#!/usr/bin/env python
"""Quickstart: the paper's Figure 10 lookup kernel, end to end.

Builds the KernelC example from Section 4.7 —

    kernel lookup(istream<int> in, idxl_istream<int> LUT,
                  ostream<int> out) {
        int a, b, c;
        while (!eos(in)) {
            in >> a;          // sequential stream access
            LUT[a] >> b;      // indexed SRF access
            c = foo(a, b);
            out << c;
        }
    }

— then runs it on a cycle-accurate ISRF4 machine: the lookup table is
replicated into every lane's SRF bank, the input stream is loaded from
(simulated) DRAM, the kernel performs its lookups with in-lane indexed
SRF reads, and the results are stored back to memory.

Run:  python examples/quickstart.py
"""

from repro.config import isrf4_config
from repro.core import SrfArray
from repro.kernel import KernelBuilder
from repro.machine import KernelInvocation, StreamProcessor, StreamProgram
from repro.memory import load_op, store_op


def foo(a, b):
    return a + 2 * b


def main():
    config = isrf4_config()
    proc = StreamProcessor(config)
    lanes = config.lanes

    # --- the kernel (Figure 10) --------------------------------------
    b = KernelBuilder("lookup")
    in_s = b.istream("in")
    lut = b.idxl_istream("LUT")
    out_s = b.ostream("out")
    a = b.read(in_s)
    value = b.idx_read(lut, a)
    c = b.arith(foo, a, value, name="foo")
    b.write(out_s, c)
    kernel = b.build()

    # --- data placement ------------------------------------------------
    n = 256                       # stream length in words
    table = [v * v for v in range(64)]
    in_arr = SrfArray(proc.srf, n, "in")
    out_arr = SrfArray(proc.srf, n, "out")
    lut_arr = SrfArray(proc.srf, len(table) * lanes, "LUT")
    lut_arr.fill_replicated(table)  # one copy per lane (paper §5.2)

    inputs = [i % 64 for i in range(n)]
    src = proc.memory.allocate(n, "src")
    dst = proc.memory.allocate(n, "dst")
    proc.memory.load_region(src, inputs)

    # --- the stream program ---------------------------------------------
    prog = StreamProgram("quickstart")
    t_load = prog.add_memory(load_op(in_arr.seq_read(), src))
    t_kernel = prog.add_kernel(
        KernelInvocation(kernel, {
            "in": in_arr.seq_read(),
            "LUT": lut_arr.inlane_read(len(table)),
            "out": out_arr.seq_write(),
        }, iterations=n // lanes),
        deps=[t_load],
    )
    prog.add_memory(store_op(out_arr.seq_write(name="st"), dst),
                    deps=[t_kernel])

    stats = proc.run_program(prog)

    # --- results -----------------------------------------------------------
    results = proc.memory.dump_region(dst)
    expected = [foo(v, table[v]) for v in inputs]
    assert results == expected, "functional mismatch!"
    run = stats.kernel_runs[0]
    print(f"lookup kernel on {config.name}: {stats.total_cycles} cycles")
    print(f"  II={run.ii}, loop body={run.loop_body_cycles} cycles, "
          f"SRF stalls={run.srf_stall_cycles}, "
          f"overheads={run.overhead_cycles}")
    print(f"  indexed SRF reads: {run.inlane_words} words "
          f"({run.inlane_bandwidth:.2f} words/cycle/lane)")
    print(f"  off-chip traffic: {stats.offchip_words} words "
          f"(the {len(table) * lanes}-word table never left the SRF)")
    print(f"  first results: {results[:8]}  ... all {n} verified")


if __name__ == "__main__":
    main()
