#!/usr/bin/env python
"""Scenario: encrypting independent network streams with AES-128-CBC.

The paper's Rijndael benchmark (§5.2): each of the 8 clusters encrypts
its own data stream in CBC mode, "suitable for encrypting network
traffic or other applications with many independent data streams." The
T-table formulation needs 160 table lookups per 16-byte block.

This example runs the same workload on all four machine configurations
and shows why the indexed SRF wins: on Base/Cache every lookup is a
memory access; on the ISRF machines the tables live in the SRF, cutting
off-chip traffic by ~95% and turning a memory-bound workload into a
compute-bound one. It also translates the traffic difference into an
energy estimate using the Section 4.4 access energies.

Run:  python examples/encrypt_streams.py
"""

from repro.apps import rijndael
from repro.area import EnergyModel
from repro.config import all_configs


def main():
    blocks_per_lane = 8
    energy = EnergyModel()
    results = {}
    print(f"AES-128-CBC, 8 independent streams, {blocks_per_lane} "
          f"blocks/stream/strip, 160 T-table lookups per block\n")
    for name, config in all_configs().items():
        result = rijndael.run(config, blocks_per_lane=blocks_per_lane)
        result.require_verified()
        results[name] = result
    base = results["Base"]
    header = (f"{'config':7s} {'cycles':>8s} {'speedup':>8s} "
              f"{'off-chip words':>15s} {'mem stall':>10s} "
              f"{'SRF stall':>10s}")
    print(header)
    print("-" * len(header))
    for name, result in results.items():
        stats = result.stats
        print(f"{name:7s} {result.cycles:8d} "
              f"{base.cycles / result.cycles:7.2f}x "
              f"{result.offchip_words:15d} "
              f"{stats.memory_stall_cycles:10d} "
              f"{stats.srf_stall_cycles:10d}")

    isrf = results["ISRF4"]
    saved_words = base.offchip_words - isrf.offchip_words
    saved_nj = saved_words * energy.dram_word_nj
    paid_nj = (isrf.stats.kernel_runs[0].inlane_words
               * len(isrf.stats.kernel_runs) * energy.indexed_word_nj)
    print(f"\nTraffic reduction: "
          f"{100 * (1 - isrf.offchip_words / base.offchip_words):.1f}% "
          f"(paper: up to 95%)")
    print(f"Energy: {saved_nj:.0f} nJ of DRAM accesses replaced by "
          f"~{paid_nj:.0f} nJ of indexed SRF accesses "
          f"({energy.indexed_word_nj:.2f} nJ vs "
          f"{energy.dram_word_nj:.1f} nJ per word)")
    print("\nCiphertext verified against the FIPS-197/SP800-38A "
          "reference implementation on every configuration.")


if __name__ == "__main__":
    main()
