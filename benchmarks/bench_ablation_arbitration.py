"""Ablation: SRF arbitration policy (paper §5.4).

"Arbitration among streams for SRF access was performed using a simple
round-robin scheme. Complex arbiters that prioritize streams likely to
cause stalls were found to provide less than 10% improvement in
throughput." This bench reruns the Figure 17 microbenchmark with a
stall-aware arbiter (serve the fullest address FIFOs first) and checks
that its advantage over round-robin is real but under 10% — the design
justification for shipping the simple arbiter.
"""

from repro.apps.microbench import inlane_random_read_throughput
from repro.harness import render_table


def run_ablation(cycles: int = 1500) -> dict:
    rows = []
    data = {}
    for subarrays in (2, 4, 8):
        rr = inlane_random_read_throughput(
            subarrays=subarrays, cycles=cycles, arbitration="round_robin"
        ).words_per_cycle_per_lane
        occ = inlane_random_read_throughput(
            subarrays=subarrays, cycles=cycles, arbitration="occupancy"
        ).words_per_cycle_per_lane
        gain = occ / rr - 1.0
        data[subarrays] = (rr, occ, gain)
        rows.append([subarrays, rr, occ, f"{gain * 100:+.1f}%"])
    text = render_table(
        "Ablation: round-robin vs stall-aware SRF arbitration "
        "(in-lane words/cycle/lane; paper: complex arbiters < +10%)",
        ["sub-arrays", "round-robin", "occupancy", "gain"], rows,
    )
    return {"data": data, "text": text}


def test_complex_arbiter_gains_less_than_10_percent(run_once):
    result = run_once(run_ablation)
    for subarrays, (rr, occ, gain) in result["data"].items():
        assert gain < 0.10, f"s={subarrays}: {gain:.3f}"
    # ...but the stall-aware arbiter is not *worse* where conflicts
    # exist (sub-banked configurations).
    assert result["data"][4][2] > -0.02
    assert result["data"][8][2] > -0.02
