"""Wall-clock measurement of the object vs columnar timing engines.

Each workload runs once per engine under pytest-benchmark; the
committed ``BENCH_BASELINE.json`` pins the *object/columnar wall-clock
speedup* and ``tools/bench_gate.py`` fails if the measured speedup
regresses by more than the configured tolerance. Gating on the ratio
rather than absolute seconds makes the gate machine-independent: a slow
CI runner scales both engines alike, but a change that slows the
columnar engine (or silently disables its drain windows) moves the
ratio.

The workloads exercise the engine's distinct paths on the ISRF4
preset: FFT's cross-lane shuffles (calendar returns + fused cross-lane
arbitration), Filter's dense in-lane indexed traffic (bucketed per-bank
grants + stall windows), and Sort's long sequential phases (quiet
windows + event-horizon jumps).

The honest headline (DESIGN.md §4j): per-cell speedups are modest —
roughly 1.0-1.3x depending on workload — because arbitration and
functional record movement dominate and are inherent to both engines.
The gate exists to keep the columnar engine from *regressing* into a
slowdown, not to certify a large win.
"""

import pytest

from repro.apps import fft, filter2d, sort
from repro.config.presets import isrf4_config

WORKLOADS = {
    "fft32": lambda config: fft.run(config, n=32, repeats=1),
    "filter64": lambda config: filter2d.run(config, height=64, width=64,
                                            repeats=1),
    "sort1k": lambda config: sort.run(config, n=1024, repeats=1),
}

#: Rounds per measurement; the gate uses the minimum, so several rounds
#: shield the ratio from one-off scheduler noise.
ROUNDS = 5


@pytest.mark.parametrize("engine", ["object", "columnar"])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_timing_engine_speed(benchmark, workload, engine):
    config = isrf4_config(timing_engine=engine)
    runner = WORKLOADS[workload]
    result = benchmark.pedantic(
        runner, args=(config,), rounds=ROUNDS, iterations=1,
        warmup_rounds=1,
    )
    result.require_verified()
