"""Figure 11: off-chip memory traffic of ISRF and Cache, normalised to
Base, for all eight benchmarks.

Paper shape: large reductions for FFT 2D (the rotation disappears) and
Rijndael (up to 95%, the table lookups leave memory); moderate
reductions for the IG datasets (replication eliminated; the Cache also
captures inter-strip reuse and beats ISRF there); no reduction for Sort
and Filter (all locality already captured by Base).
"""

def test_figure11_memory_traffic(run_registered):
    result = run_registered("fig11")
    data = result["data"]
    # FFT 2D: the rotation through memory disappears (2x traffic -> 1x).
    assert 0.4 <= data[("FFT 2D", "ISRF")] <= 0.6
    # Rijndael: up to 95% reduction.
    assert data[("Rijndael", "ISRF")] < 0.10
    # Sort captures no additional locality.
    assert data[("Sort", "ISRF")] == 1.0
    assert data[("Sort", "Cache")] == 1.0
    # IG: ISRF removes replication; Cache additionally captures
    # inter-strip reuse and does even better (paper §5.3).
    for dataset in ("IG_SML", "IG_DMS", "IG_DCS", "IG_SCL"):
        assert data[(dataset, "ISRF")] < 0.8
        assert data[(dataset, "Cache")] < data[(dataset, "ISRF")]
    # Filter gains nothing (modulo the banded layout's halo replication).
    assert data[("Filter", "Cache")] == 1.0
    assert data[("Filter", "ISRF")] >= 1.0
