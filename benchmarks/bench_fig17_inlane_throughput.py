"""Figure 17: sustained in-lane indexed throughput vs the number of SRF
sub-arrays per bank and the address-FIFO size, under 4 random reads per
cycle per cluster.

Paper shape: "Throughput increases with FIFO size as more addresses are
issued before stalling on conflicts, and with the number of banks as
the probability of conflicts declines. However, utilization of
available bandwidth decreases as the number of sub-arrays increases due
to head-of-line blocking."
"""

def test_figure17_inlane_throughput(run_registered):
    result = run_registered("fig17")
    data = result["data"]

    # Throughput grows with sub-arrays at a fixed (deep) FIFO.
    series = [data[(s, 8)] for s in (1, 2, 4, 8)]
    assert series[0] < series[1] < series[2] < series[3]
    assert series[0] <= 1.001  # one sub-array: one word/cycle/lane cap

    # ... but utilisation of the peak declines (head-of-line blocking).
    assert data[(2, 8)] / 2 > data[(4, 8)] / 4 > data[(8, 8)] / 8

    # Throughput grows with FIFO size and saturates by ~6-8 entries.
    for s in (2, 4, 8):
        assert data[(s, 1)] < data[(s, 4)] <= data[(s, 8)] * 1.02
        assert data[(s, 8)] - data[(s, 6)] < 0.15
