"""Shared helpers for the per-figure benchmark modules."""

import pytest

from repro.harness.runner import run_experiment


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing and
    print its rendered table (visible with ``-s``; captured otherwise)."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        if isinstance(result, dict) and "text" in result:
            print()
            print(result["text"])
        return result

    return _run


@pytest.fixture
def run_registered(run_once):
    """Run a registry experiment by name through the shared runner, so
    the benchmark exercises exactly what ``python -m repro.harness``
    (and its parallel workers) execute."""

    def _run(name):
        return run_once(run_experiment, name)

    return _run
