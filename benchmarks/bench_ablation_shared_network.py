"""Ablation: dedicated vs shared inter-lane network (paper §4.5).

The paper measured cross-lane throughput with *dedicated* address and
data networks, observed that "the dominant factor in reducing
cross-lane access throughput is contention for SRF access rather than
inter-cluster traffic", and concluded that "multiplexing both types of
inter-lane traffic over a single network instead of two dedicated
networks is the preferred design option, particularly given the high
area cost of the networks."

This bench implements the shared option (comm cycles also block index
injection) and evaluates the conjecture quantitatively:

* at *saturated* cross-lane demand the shared network loses roughly the
  comm occupancy — no slack to recover stolen injection cycles;
* at the *benchmarks'* actual demand (Figure 13: cross-lane kernels
  sustain at most ~0.18 words/cycle/lane) the address FIFOs absorb comm
  bursts and the loss collapses — the regime in which the paper's
  conclusion holds, buying back the dedicated address network's ~4% of
  SRF area.
"""

from repro.apps.microbench import crosslane_random_read_throughput
from repro.area import SrfAreaModel
from repro.harness import render_table

#: Issue probability approximating Figure 13's heaviest cross-lane
#: demand (IG_SML: ~0.18 sustained words/cycle/lane).
BENCHMARK_DEMAND = 0.2


def run_ablation(cycles: int = 1500) -> dict:
    rows = []
    data = {}
    for label, probability in (("saturated", 1.0),
                               ("benchmark-level", BENCHMARK_DEMAND)):
        for occupancy in (0.0, 0.2, 0.4, 0.6):
            dedicated = crosslane_random_read_throughput(
                comm_occupancy=occupancy, cycles=cycles,
                shared_network=False, issue_probability=probability,
            ).words_per_cycle_per_lane
            shared = crosslane_random_read_throughput(
                comm_occupancy=occupancy, cycles=cycles,
                shared_network=True, issue_probability=probability,
            ).words_per_cycle_per_lane
            loss = 1.0 - shared / dedicated
            data[(label, occupancy)] = (dedicated, shared, loss)
            rows.append([label, occupancy, dedicated, shared,
                         f"-{loss * 100:.1f}%"])
    area = SrfAreaModel()
    network_area = area.crosslane().components["address_network"]
    saved = network_area / area.sequential().total_um2
    text = render_table(
        "Ablation: dedicated vs shared inter-lane network "
        f"(cross-lane words/cycle/lane; sharing saves "
        f"~{saved * 100:.1f}% of SRF area)",
        ["demand", "comm occupancy", "dedicated", "shared", "shared loss"],
        rows,
    )
    return {"data": data, "rows": rows, "saved_area": saved, "text": text}


def test_shared_network_preferred_at_benchmark_demand(run_once):
    result = run_once(run_ablation)
    data = result["data"]
    # No comm traffic: identical either way.
    assert data[("saturated", 0.0)][2] == 0.0
    # Saturated demand: the shared network loses roughly the occupancy
    # (no slack to recover) — the regime the paper's conjecture does
    # NOT cover.
    for occupancy in (0.2, 0.4, 0.6):
        loss = data[("saturated", occupancy)][2]
        assert 0.5 * occupancy < loss < 1.4 * occupancy, occupancy
    # Benchmark-level demand (Figure 13): the loss collapses for the
    # comm occupancies the benchmarks actually exhibit (Sort's
    # conditional-stream kernel is the heaviest at ~20%) — the paper's
    # "preferred design option" conclusion holds in that regime.
    assert data[("benchmark-level", 0.2)][2] < 0.05
    assert data[("benchmark-level", 0.4)][2] < 0.15
    # ... and the ablation also finds the conjecture's limit: once comm
    # occupancy starves the residual injection bandwidth below the
    # demand ((1-f) * 0.31 < 0.2 around f ~ 0.36), sharing costs real
    # throughput again.
    assert data[("benchmark-level", 0.6)][2] > 0.25
    # And it saves the dedicated address network's area (~4% of SRF).
    assert 0.02 < result["saved_area"] < 0.06
