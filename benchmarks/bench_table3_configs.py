"""Tables 2 and 3: the four machine configurations and their parameters."""

from repro.config import all_configs
def test_table3_machine_parameters(run_registered):
    result = run_registered("table3")
    configs = all_configs()
    assert list(configs) == ["Base", "ISRF1", "ISRF4", "Cache"]
    for cfg in configs.values():
        assert cfg.lanes == 8
        assert cfg.peak_flops_per_cycle == 32          # 32 GFLOPs @ 1 GHz
        assert cfg.srf_bytes == 128 * 1024             # 128 KB SRF
        assert cfg.peak_sequential_srf_words_per_cycle == 32
        assert abs(cfg.dram_words_per_cycle * 4 - 9.14) < 1e-9  # GB/s
    assert configs["ISRF1"].inlane_indexed_bandwidth == 1
    assert configs["ISRF4"].inlane_indexed_bandwidth == 4
    assert configs["Cache"].cache_bytes == 128 * 1024
    assert configs["Cache"].cache_words_per_cycle == 4.0  # 16 GB/s
