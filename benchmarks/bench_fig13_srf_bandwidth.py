"""Figure 13: sustained SRF bandwidth demands of the benchmark kernels
on ISRF4, split into sequential, in-lane indexed, and cross-lane indexed
words per cycle per cluster.

Paper shape: Filter and Rijndael have the highest in-lane indexed
demand (they are the multi-indexed-stream kernels); the IG kernels are
the only cross-lane consumers; sustained bandwidths are well below the
peaks, but bursty (the stream buffers absorb the bursts).
"""

def test_figure13_srf_bandwidth(run_registered):
    result = run_registered("fig13")
    data = result["data"]

    # Only the IG kernels use cross-lane access (paper §5.2).
    for kernel in ("IG_SML", "IG_SCL", "IG_DMS", "IG_DCS"):
        assert data[kernel]["crosslane"] > 0
        assert data[kernel]["inlane"] == 0
    for kernel in ("FFT 2D", "Rijndael", "Sort1", "Sort2", "Filter"):
        assert data[kernel]["crosslane"] == 0
        assert data[kernel]["inlane"] > 0

    # Filter and Rijndael demand the most in-lane indexed bandwidth.
    heavy = {data["Filter"]["inlane"], data["Rijndael"]["inlane"]}
    others = {data[k]["inlane"] for k in ("Sort1", "Sort2")}
    assert min(heavy) > max(others)

    # Sustained demands stay below the ISRF4 peak of 4 words/cycle/lane.
    for kernel, bw in data.items():
        assert bw["inlane"] <= 4.0
        assert bw["crosslane"] <= 1.0
