"""The sparse & stencil workload suite (ISSUE 10).

Runs the ``sparse`` and ``locality`` registry experiments and asserts
the structural properties the suite exists to exhibit: every cell is a
verified simulation, the Cache machine converts SpMV's column-index
locality into hit rate, and the indexed SRF's ISRF4/Base cycle ratio is
*ordering-sensitive* with power-law-clustered indices as the
bank-conflict worst case.
"""


def test_sparse_suite(run_registered):
    result = run_registered("sparse")
    data = result["data"]

    # Full grid: 4 sparse benchmarks x 4 presets, normalised per unit.
    benchmarks = {name for name, _cfg in data}
    assert benchmarks == {"SpMV_CSR", "SpMV_CSC",
                          "Stencil_STAR", "Stencil_BOX"}
    assert len(data) == 16

    # The cache converts SpMV's gather locality into off-chip savings.
    for fmt in ("SpMV_CSR", "SpMV_CSC"):
        assert (data[(fmt, "Cache")]["offchip_per_unit"]
                < data[(fmt, "Base")]["offchip_per_unit"])

    # The stencils' indirect taps run fastest through the indexed SRF.
    for pattern in ("Stencil_STAR", "Stencil_BOX"):
        assert (data[(pattern, "ISRF4")]["cycles_per_unit"]
                <= data[(pattern, "Base")]["cycles_per_unit"])


def test_locality_sweep(run_registered):
    result = run_registered("locality")
    data = result["data"]

    assert set(data) == {"sorted", "random", "clustered"}
    ratios = {o: entry["isrf_vs_base"] for o, entry in data.items()}

    # The indexed SRF is ordering-sensitive; the baselines are not the
    # bottleneck, so the ratio moves with index locality and peaks on
    # the power-law-clustered (bank-conflict-heavy) ordering.
    assert max(ratios.values()) - min(ratios.values()) > 0.01
    assert max(ratios, key=ratios.get) == "clustered"
