"""Section 4.4: access-energy comparison.

Paper numbers: an indexed single-word SRF access costs ~4x the
per-word energy of a sequential block access (extra column muxing),
about 0.1 nJ at 0.13 um — still an order of magnitude below the ~5 nJ
of an off-chip DRAM access. Moving Rijndael's 160 lookups per block
from DRAM into the SRF is therefore also a large energy win.
"""

import pytest

from repro.area.energy import EnergyModel
def test_energy_model(run_registered):
    result = run_registered("energy")
    model = EnergyModel()
    assert model.indexed_word_nj == pytest.approx(0.1, rel=0.3)
    assert model.indexed_word_nj == pytest.approx(
        4.0 * model.sequential_word_nj
    )
    assert model.dram_word_nj == pytest.approx(5.0)
    assert model.indexed_vs_dram_ratio >= 10  # "order of magnitude"

    # The Rijndael energy argument: 160 lookups/block via indexed SRF
    # vs via DRAM.
    per_block_srf = 160 * model.indexed_word_nj
    per_block_dram = 160 * model.dram_word_nj
    assert per_block_dram / per_block_srf >= 10
