"""Figure 16: execution time of the cross-lane indexed (IGraph) kernels
as the cross-lane address-data separation is swept from 4 to 24 cycles.

Paper shape: "These kernels are able to tolerate long address and data
separations due to their high compute density and lack of loop-carried
dependencies" — time falls as the separation first covers the ~6-cycle
cross-lane latency plus arbitration jitter, then flattens out to 24.
"""

def test_figure16_crosslane_separation(run_registered):
    result = run_registered("fig16")
    data = result["data"]

    for kernel in ("IGraph1", "IGraph2"):
        series = data[kernel]
        # Separation 4 (below the 6-cycle cross-lane latency) stalls.
        assert series[4] > series[8], kernel
        # Long separations are tolerated: the tail is flat (within 5%).
        tail = [series[s] for s in (12, 16, 20, 24)]
        assert max(tail) - min(tail) < 0.05, kernel
        assert max(tail) < series[4], kernel

    # IGraph1 (low compute density) benefits more from hiding the
    # indexed latency than IGraph2 (compute-dense).
    assert data["IGraph1"][20] < data["IGraph2"][20]
