"""Table 4: the IG benchmark's dataset parameters.

Strip sizes (neighbour records per kernel invocation) are paper givens;
the ISRF strips are ~2x the Base strips because eliminating record
replication fits twice the edges in the same SRF footprint. This bench
also validates that the generated graphs hit the target degrees and
that the measured strip partitioning matches the configured sizes.
"""

from repro.apps import igraph
def test_table4_datasets(run_registered):
    result = run_registered("table4")
    rows = {row[0]: row for row in result["rows"]}
    assert rows["IG_SML"][3] == 1163 and rows["IG_SML"][4] == 2316
    assert rows["IG_DMS"][3] == 265 and rows["IG_DMS"][4] == 528
    for row in rows.values():
        assert 1.9 <= row[5] <= 2.1  # ISRF strips ~2x Base strips

    # Generated graphs respect the average-degree targets.
    sparse = igraph.IrregularGraph(3000, avg_degree=4, seed=7)
    dense = igraph.IrregularGraph(1500, avg_degree=16, seed=7)
    assert 3.2 < sparse.edge_count / sparse.nodes < 4.8
    assert 13.0 < dense.edge_count / dense.nodes < 19.0

    # Strip partitioning yields strips near the configured edge counts.
    strips = sparse.strips(1163)
    sizes = [sum(len(sparse.neighbors[v]) for v in s) for s in strips[:-1]]
    assert all(1163 <= size <= 1163 + 40 for size in sizes)
