"""Per-benchmark energy: Base vs ISRF4, from measured access counts.

The paper's §4.4 energy argument applied end-to-end: an indexed SRF
access costs ~4x a sequential SRF word but ~50x less than a DRAM word,
so indexing is a large energy win exactly where it removes off-chip
traffic (Rijndael: ~15x; FFT 2D and IG: ~1.5-2x) — and an energy *cost*
where it does not (Filter pays 25 indexed reads per pixel at 4x the
per-word energy while saving no traffic).
"""

def test_energy_comparison(run_registered):
    result = run_registered("energy_cmp")
    data = result["data"]

    # Traffic-dominated benchmarks save large amounts of energy.
    assert data["Rijndael"][2] < 0.15   # ~15x saving
    assert data["FFT 2D"][2] < 0.7
    for dataset in ("IG_SML", "IG_DMS", "IG_DCS", "IG_SCL"):
        assert data[dataset][2] < 0.8

    # Where indexing saves no traffic, the 4x per-word indexed energy
    # makes it a (bounded) energy cost — the honest flip side the
    # paper's §4.4 numbers imply.
    assert 1.0 <= data["Sort"][2] < 1.5
    assert data["Filter"][2] > 1.0
