"""Ablation: sparse vs full cross-lane address network (paper §7).

"We also intend to evaluate the impact of sparse interconnects for the
address and data networks used for cross-lane accesses." This bench
performs that evaluation: a bidirectional ring (O(N) wiring) replaces
the full address crossbar (O(N^2) wiring) and the Figure 18
microbenchmark is rerun. Under uniform random cross-lane traffic the
ring's link contention costs a modest fraction of throughput — the
quantitative answer to the paper's open question.
"""

from repro.apps.microbench import crosslane_random_read_throughput
from repro.harness import render_table


def run_ablation(cycles: int = 1500) -> dict:
    rows = []
    data = {}
    for ports in (1, 2):
        xbar = crosslane_random_read_throughput(
            ports_per_bank=ports, cycles=cycles, network="crossbar"
        ).words_per_cycle_per_lane
        ring = crosslane_random_read_throughput(
            ports_per_bank=ports, cycles=cycles, network="ring"
        ).words_per_cycle_per_lane
        loss = 1.0 - ring / xbar
        data[ports] = (xbar, ring, loss)
        rows.append([ports, xbar, ring, f"-{loss * 100:.1f}%"])
    text = render_table(
        "Ablation: full crossbar vs bidirectional ring address network "
        "(cross-lane words/cycle/lane)",
        ["ports/bank", "crossbar", "ring", "ring loss"], rows,
    )
    return {"data": data, "text": text}


def test_ring_loses_modestly_under_uniform_traffic(run_once):
    result = run_once(run_ablation)
    for ports, (xbar, ring, loss) in result["data"].items():
        # The ring is slower (link contention is real)...
        assert ring < xbar, ports
        # ... but within a modest factor: the SRF port, not the network,
        # remains the first-order bottleneck (§5.4's conclusion).
        assert loss < 0.40, ports
    # More bank ports recover some of the ring's loss.
    assert result["data"][2][1] > result["data"][1][1]
