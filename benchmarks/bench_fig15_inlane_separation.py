"""Figure 15: execution time of the in-lane indexed kernels as the
address-data separation is swept from 2 to 10 cycles.

Paper shape: "Performance initially improves for all benchmarks with
increasing separation as SRF stalls reduce, and then degrades as
schedule length increases dominate" — a U for the pipelinable kernels,
and early degradation for Sort (whose loop-carried recurrence grows
directly with the separation).
"""

def test_figure15_inlane_separation(run_registered):
    result = run_registered("fig15")
    data = result["data"]

    # Pipelinable kernels: too-small separation costs SRF stalls.
    for kernel in ("FFT2D", "Rijndael", "Filter"):
        series = data[kernel]
        best = min(series.values())
        assert best < series[2], kernel  # sep=2 is never optimal

    # Rijndael/FFT: degradation returns at the largest separations
    # (deeper software pipelining / longer schedules).
    assert data["Rijndael"][10] > min(data["Rijndael"].values())
    assert data["FFT2D"][10] > min(data["FFT2D"].values())

    # Sort: the recurrence includes the separation, so large values
    # strictly hurt.
    assert data["Sort1"][10] > data["Sort1"][2]
    assert data["Sort2"][10] > data["Sort2"][2]
