"""The abstract's headline claims.

"Our simulations show that indexed SRF access provides speedups of
1.03x to 4.1x and memory bandwidth reductions of up to 95% over
sequential SRF access for a set of benchmarks representative of
data-parallel applications with irregular accesses."
"""

def test_headline_claims(run_registered):
    result = run_registered("headline")
    claims = {c.benchmark: c for c in result["claims"]}

    # Every benchmark speeds up; none slows down.
    for claim in claims.values():
        assert claim.speedup >= 1.0, claim.benchmark

    # The span of speedups covers a wide range, topped by Rijndael.
    speedups = [c.speedup for c in claims.values()]
    assert max(speedups) == claims["Rijndael"].speedup
    assert max(speedups) > 2.5  # paper: 4.1x
    assert min(speedups) < 1.3  # paper: 1.03x (IG_SCL-like)

    # Peak traffic reduction: >= 90% (paper: up to 95%).
    assert min(c.traffic_ratio for c in claims.values()) < 0.10
