"""Figure 12: execution-time breakdown of every benchmark on every
machine configuration, normalised to Base.

Paper shape: ISRF4 is fastest everywhere; FFT 2D and Rijndael speed up
by eliminating memory-boundedness; Sort and Filter by shorter kernel
loops; the IG datasets by traffic + longer strips; IG_SCL barely moves
(compute-limited with long strips). ISRF1 trails ISRF4 only on the
multi-indexed-stream benchmarks (Rijndael, Filter). The Cache machine
helps the memory-bound benchmarks but never beats ISRF4.
"""

def test_figure12_execution_breakdown(run_registered):
    result = run_registered("fig12")
    data = result["data"]

    def total(bench, config):
        return data[(bench, config)]["total"]

    # ISRF4 wins on every benchmark (speedups 1.03x-4.1x in the paper).
    # On the IG datasets the Cache also captures inter-strip reuse and
    # comes within noise of ISRF4 at reduced workload scales, so the
    # ISRF4-vs-Cache comparison there carries a small tolerance.
    for bench in ("FFT 2D", "Rijndael", "Sort", "Filter",
                  "IG_SML", "IG_DMS", "IG_DCS", "IG_SCL"):
        assert total(bench, "ISRF4") < 1.0, bench
        tolerance = 1.06 if bench.startswith("IG_") else 1.0
        assert (total(bench, "ISRF4")
                <= total(bench, "Cache") * tolerance + 1e-9), bench

    # Rijndael is the headline: large speedup, memory-bound Base.
    assert total("Rijndael", "ISRF4") < 0.5
    assert data[("Rijndael", "Base")]["mem_stall"] > 0.5

    # ISRF1 == ISRF4 except for the multi-indexed-stream benchmarks.
    for bench in ("Sort", "IG_SML", "IG_DMS", "IG_DCS", "IG_SCL"):
        assert total(bench, "ISRF1") == total(bench, "ISRF4"), bench
    for bench in ("Rijndael", "Filter"):
        assert total(bench, "ISRF1") > total(bench, "ISRF4"), bench

    # Sort/Filter gains come from the kernel loop, not memory.
    assert (data[("Sort", "ISRF4")]["loop"]
            < data[("Sort", "Base")]["loop"])
    assert (data[("Filter", "ISRF4")]["loop"]
            < data[("Filter", "Base")]["loop"])

    # IG_SCL (compute-limited, long strips) benefits the least of the
    # IG datasets.
    ig_speedups = {
        bench: 1.0 / total(bench, "ISRF4")
        for bench in ("IG_SML", "IG_DMS", "IG_DCS", "IG_SCL")
    }
    assert ig_speedups["IG_SCL"] == min(ig_speedups.values())
