"""Figure 14: static schedule (loop) length of the benchmark kernels'
inner loops as the address-data separation grows.

Paper shape: "Rijndael, Sort1, and Sort2 kernels have loop-carried
dependencies that affect index computation, which causes schedule
length to increase rapidly with address and data separation. FFT 2D,
Filter, and the IGraph kernels, in contrast, are able to use software
pipelining to tolerate very long separations with no increase in static
schedule length" (modulo minor scheduler fluctuations, which the paper
also reports).
"""

def test_figure14_schedule_length(run_registered):
    result = run_registered("fig14")
    data = result["data"]

    # Loop-carried index computation: length grows rapidly.
    for kernel in ("Rijndael", "Sort1", "Sort2"):
        series = data[kernel]
        assert series[10] > 1.4 * series[2], kernel
        # Monotone non-decreasing growth.
        seps = sorted(series)
        assert all(series[a] <= series[b] + 1e-9
                   for a, b in zip(seps, seps[1:])), kernel

    # Software-pipelinable kernels stay flat (within scheduler noise).
    for kernel in ("Filter", "IGraph1", "IGraph2"):
        series = data[kernel]
        assert max(series.values()) <= 1.1, kernel
    # FFT 2D: flat within the paper's "minor fluctuations".
    fft = data["FFT2D"]
    assert max(fft.values()) <= 1.3

    # IGraph kernels tolerate cross-lane separations out to 24 cycles.
    assert 24 in data["IGraph1"]
    assert data["IGraph1"][24] <= 1.1
