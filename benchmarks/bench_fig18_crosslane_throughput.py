"""Figure 18: sustained cross-lane indexed throughput vs the number of
network ports per SRF bank and the fraction of cycles carrying
unrelated inter-cluster communication.

Paper shape: "Increasing the number of network ports per SRF bank from
1 to 2 provides a significant improvement in throughput, while
increasing this number beyond 2 provides only marginal improvements";
and "the reduction in cross-lane SRF throughput is 20% or less for a
wide range of inter-cluster communication traffic loads" — SRF-port
contention, not comm traffic, dominates.
"""

def test_figure18_crosslane_throughput(run_registered):
    result = run_registered("fig18")
    data = result["data"]

    # 1 -> 2 ports: significant; 2 -> 4: marginal.
    assert data[(2, 0.0)] > 1.15 * data[(1, 0.0)]
    assert data[(4, 0.0)] < 1.10 * data[(2, 0.0)]

    # Comm traffic degrades throughput mildly over a wide range.
    for ports in (1, 2, 4):
        quiet = data[(ports, 0.0)]
        for occupancy in (0.2, 0.4, 0.6):
            assert data[(ports, occupancy)] > 0.75 * quiet, (
                ports, occupancy)
        # Even at 80% occupancy the loss stays bounded.
        assert data[(ports, 0.8)] > 0.55 * quiet
