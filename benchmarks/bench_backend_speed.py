"""Wall-clock measurement of the scalar vs vector execution backends.

Each workload runs once per backend under pytest-benchmark; the
committed ``BENCH_BASELINE.json`` pins the *vector/scalar wall-clock
ratio* per workload and ``tools/bench_gate.py`` fails if the measured
ratio regresses by more than the configured tolerance. Gating on the
ratio rather than absolute seconds makes the gate machine-independent:
a slow CI runner scales both backends alike, but a change that slows
the vector engine (or breaks its steady-state fast-forward) moves the
ratio.

The workloads are chosen to exercise the engine's distinct paths:
FFT's tagged arithmetic (ufunc batching), Filter's indexed streams
(address batching + steady-state skip), and Rijndael's long carry
cones (the serial per-iteration path).
"""

import pytest

from repro.apps import fft, filter2d, rijndael
from repro.config.presets import isrf4_config

WORKLOADS = {
    "fft32": lambda config: fft.run(config, n=32, repeats=1),
    "filter64": lambda config: filter2d.run(config, height=64, width=64,
                                            repeats=1),
    "rijndael8": lambda config: rijndael.run(config, blocks_per_lane=8,
                                             repeats=1),
}

#: Rounds per measurement; the gate uses the minimum, so several rounds
#: shield the ratio from one-off scheduler noise.
ROUNDS = 5


@pytest.mark.parametrize("backend", ["scalar", "vector"])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_backend_speed(benchmark, workload, backend):
    config = isrf4_config(backend=backend)
    runner = WORKLOADS[workload]
    result = benchmark.pedantic(
        runner, args=(config,), rounds=ROUNDS, iterations=1,
        warmup_rounds=1,
    )
    result.require_verified()
