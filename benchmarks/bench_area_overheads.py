"""Section 4.6: area overheads of the indexed SRF organisations.

Paper numbers: ISRF1 +11%, ISRF4 +18%, cross-lane +22% over a
sequential-only SRF of equal capacity; 1.5%-3% of total die area (from
the Imagine statistics of [13]); versus 100%-150% of SRF area for the
Cache configuration.
"""

def test_area_overheads(run_registered):
    result = run_registered("area")
    overheads = result["overheads"]
    assert 0.09 <= overheads["ISRF1"] <= 0.13            # paper: 11%
    assert 0.15 <= overheads["ISRF4"] <= 0.21            # paper: 18%
    assert 0.19 <= overheads["ISRF4+crosslane"] <= 0.26  # paper: 22%
    assert (overheads["ISRF1"] < overheads["ISRF4"]
            < overheads["ISRF4+crosslane"])

    # Die-level: 1.5%-3% (table rows: [variant, srf%, die%]).
    die_rows = {row[0]: row[2] for row in result["rows"]}
    assert die_rows["ISRF1"].startswith("1.")
    assert die_rows["ISRF4+crosslane"].startswith("3.")
