"""Columnar timing engine: batch-stepped cycle simulation of the SRF.

A second implementation of the cycle-driven timing model
(:attr:`MachineConfig.timing_engine` = ``"columnar"``), bit-identical to
the object engine by construction and enforced by
``tests/machine/test_timing_equivalence.py``. Three ideas:

* **Calendar-column completions.** Pipelined SRF completions (stream
  fills, reorder-buffer fills, write retirements) live in a flat ring of
  per-cycle buckets — one column per future cycle — instead of a heap of
  ``(due, seq, lambda)`` tuples. Dues span at most the largest SRF
  latency, so the ring is tiny, pushes are a list append of a typed
  tuple (no closure allocation), and completing a cycle drains one
  bucket in push order, which equals the object engine's
  ``(due, sequence)`` heap order because every bucket holds a single
  due cycle.

* **Fused per-bank arbitration.** The two-stage indexed arbitration
  (paper §4.4) is flattened into one loop over banks with hoisted
  attribute lookups, a bitmask for sub-array conflicts and the launch
  bookkeeping inlined. Grant-for-grant identical to
  :meth:`StreamRegisterFile._grant_bank` + ``_launch``.

* **Event-horizon drain windows.** The object engine's quiet-window
  fast-forward only skips cycles in which *nothing* can change state.
  The columnar engine generalizes it: when the executor provably only
  counts cycles — startup countdown, quiet software-pipeline gaps, or a
  head data event stalled on reorder-buffer fills whose due cycles are
  all known — the processor ticks just the memory controller and SRF in
  a tight loop and charges the executor in bulk
  (:meth:`ColumnarExecutor.stall_window`,
  ``StreamProcessor._drain_windows``). Steady-state quiet skipping is
  also enabled for the scalar functional backend
  (:attr:`ColumnarExecutor.steady_skippable`), which the object engine
  reserves for vector/replay runs.

Why not NumPy per-cycle state? At the paper's 8 lanes a single NumPy
dispatch (~1µs) costs more than the whole per-bank Python scan it would
replace, and SRF words are arbitrary Python objects (opaque kernel
payloads), so value movement cannot vectorize. Measured head-to-head, a
vectorized per-cycle update *lost* to the object engine; the wins here
come from flat columnar data layout and from stepping fewer Python
frames per simulated cycle. DESIGN.md §4j records the measurements.

Fallback: configurations the engine does not model exactly — fault
injection, the sanitizer, per-event tracing/metrics/profiling, and
``fast_forward=False`` cross-check runs — silently build the object
engine instead (:func:`build_processor`); constructing
:class:`ColumnarProcessor` directly for such a config raises, so a
fallback can never masquerade as a columnar run.
"""

from __future__ import annotations

from bisect import insort

from repro.config.machine import MachineConfig
from repro.core.address_fifo import _STALE
from repro.core.srf import IndexedStream, StreamRegisterFile
from repro.core.stream_buffer import ReorderBuffer
from repro.errors import ConfigurationError
from repro.machine.executor import KernelExecutor, _IdxData
from repro.machine.processor import StreamProcessor

#: Grant order when a bank sees exactly one head: rotation() and the
#: occupancy sort both reduce to serving position 0.
_SINGLE = (0,)

__all__ = [
    "COLUMNAR_MODELED_FIELDS",
    "ColumnarExecutor",
    "ColumnarProcessor",
    "ColumnarSrf",
    "build_processor",
    "columnar_eligible",
    "engine_for",
]

#: Config knobs the object engine consults that the columnar engine
#: models *exactly* — no fallback needed. Every simulation/
#: observability/fault knob the object-engine modules read must appear
#: either here or in a :func:`columnar_eligible` check; the
#: ``repro.selfcheck`` fallback pass (code ``SC501``) enforces that
#: exhaustively, so a new special-cased knob cannot silently produce
#: wrong columnar timings. Each entry carries its justification:
COLUMNAR_MODELED_FIELDS = frozenset({
    # Functional-evaluation backend: both engines drive the identical
    # kernel interpreters; the engine only re-times completion events.
    "backend",
    # Execute-vs-replay only changes where iteration details come
    # from; the equivalence suite runs both engines in both modes.
    "timing_source",
    # The watchdog threshold: ColumnarProcessor inherits the object
    # engine's deadlock accounting unchanged (event-horizon jumps
    # count the skipped cycles).
    "deadlock_cycles",
    # Word protection is timing/data-inert without fault strikes, and
    # any config that can strike (faults_enabled) already falls back.
    "srf_protection", "memory_protection",
})


def columnar_eligible(config: MachineConfig) -> tuple:
    """Whether the columnar engine models ``config`` exactly.

    Returns ``(eligible, reason)`` with ``reason`` naming the first
    blocking feature (empty when eligible). The listed features hook the
    per-cycle object path (fault arming, sanitizer probes, per-cycle
    trace/metrics/profile samples) or explicitly request per-cycle
    stepping, so batch-stepped windows cannot reproduce them.
    """
    if config.faults_enabled:
        return False, "fault injection"
    if config.sanitize:
        return False, "sanitizer"
    if config.trace:
        return False, "per-event tracing"
    if config.metrics_level > 0:
        return False, "metrics collection"
    if config.profile_sample_period > 0:
        return False, "sampling profiler"
    if not config.fast_forward:
        return False, "fast_forward disabled (per-cycle cross-check mode)"
    return True, ""


def engine_for(config: MachineConfig) -> str:
    """The timing engine :func:`build_processor` would select."""
    if config.timing_engine == "columnar" and columnar_eligible(config)[0]:
        return "columnar"
    return "object"


def build_processor(config: MachineConfig) -> StreamProcessor:
    """Build the processor for ``config``'s timing engine.

    ``timing_engine="columnar"`` yields a :class:`ColumnarProcessor`
    when the config is :func:`columnar_eligible`, else the object-engine
    :class:`StreamProcessor` (the documented fallback matrix). The
    chosen engine is readable as ``processor.engine``.
    """
    if engine_for(config) == "columnar":
        return ColumnarProcessor(config)
    return StreamProcessor(config)


class ColumnarReorderBuffer(ReorderBuffer):
    """Reorder buffer that remembers each pending fill's due cycle.

    In-lane indexed fills complete at a deterministic
    ``grant_cycle + inlane_indexed_latency``; recording that due per
    ticket lets :meth:`ColumnarExecutor.stall_window` bound how long a
    stalled data event must keep stalling. Cross-lane fills arrive via
    the return network (slot- and comm-dependent), so they never get a
    due — and their absence blocks the window, never the correctness.
    """

    def __init__(self, capacity_words: int):
        super().__init__(capacity_words)
        self._due = {}  # ticket -> fill due cycle (in-lane grants only)

    def note_due(self, ticket: int, due: int) -> None:
        """Record that ``ticket`` will be filled at SRF tick ``due``."""
        self._due[ticket] = due

    def fill(self, ticket: int, value) -> None:
        self._due.pop(ticket, None)
        super().fill(ticket, value)

    def clear(self) -> None:
        super().clear()
        self._due.clear()

    def unblock_due(self, count: int):
        """Last fill due among the ``count`` oldest slots, if knowable.

        Returns ``None`` when the head record cannot be due-bounded:
        fewer than ``count`` slots reserved, or some unfilled slot has
        no recorded due (not yet granted, or a cross-lane return).
        Returns ``-1`` when all ``count`` head slots are already filled
        (the event can fire now). Relies on the dense-ascending ticket
        invariant: slot ``k`` holds ticket ``_head_ticket + k``.
        """
        slots = self._slots
        if count > len(slots):
            return None
        due = self._due
        head = self._head_ticket
        latest = -1
        for k in range(count):
            if not slots[k].valid:
                d = due.get(head + k)
                if d is None:
                    return None
                if d > latest:
                    latest = d
        return latest


class ColumnarIndexedStream(IndexedStream):
    """Indexed stream whose reorder buffers track fill dues."""

    ROB_CLS = ColumnarReorderBuffer


class ColumnarSrf(StreamRegisterFile):
    """SRF with calendar-column completions and fused arbitration.

    State, stats, and grant decisions are identical to the base class;
    only the *representation* of pending completions (ring of per-cycle
    buckets instead of a heap of closures) and the Python shape of the
    per-bank grant loop differ.
    """

    INDEXED_STREAM_CLS = ColumnarIndexedStream

    # Calendar event kinds (typed tuples, no closures):
    #   (1, rob, ticket, value)                      in-lane read fill
    #   (2, bank, src_lane, ticket, value, sid, rob) cross-lane return
    #   (3, stream)                                  write retirement
    #   (4, action)                                  generic callable
    def __init__(self, config: MachineConfig):
        super().__init__(config)
        # Every due is at most max(latencies) cycles out, so live dues
        # span < size and each bucket holds one due cycle at a time.
        self._cal_size = max(
            config.srf_sequential_latency,
            config.inlane_indexed_latency,
            config.crosslane_indexed_latency,
            1,
        ) + 2
        self._cal = [[] for _ in range(self._cal_size)]
        self._cal_count = 0
        self._cal_floor = 0  # next unprocessed due cycle

    # -- calendar ---------------------------------------------------------
    def _push_in_flight(self, due: int, action) -> None:
        # Inherited callers (sequential-fill scheduling, the faulted
        # fallback path through the base grant code) land here.
        self._cal[due % self._cal_size].append((4, action))
        self._cal_count += 1

    def _complete_due(self, cycle: int) -> None:
        if not self._cal_count:
            self._cal_floor = cycle + 1
            return
        size = self._cal_size
        floor = self._cal_floor
        if cycle - floor >= size:
            # A fast-forward skipped the floor past; the skip contract
            # guarantees no pending due inside the skipped window, so
            # every live due is >= cycle.
            floor = cycle
        cal = self._cal
        enqueue = self.return_network.enqueue
        while floor <= cycle:
            bucket = cal[floor % size]
            if bucket:
                # Completions never push new calendar events, so plain
                # iteration is safe; list order is push order, which
                # matches the object engine's (due, sequence) heap
                # order within a single due cycle.
                for ev in bucket:
                    kind = ev[0]
                    if kind == 1:
                        ev[1].fill(ev[2], ev[3])
                    elif kind == 2:
                        enqueue(ev[1], ev[2], ev[3], ev[4], ev[5], ev[6].fill)
                    elif kind == 3:
                        ev[1].outstanding_writes -= 1
                    else:
                        ev[1]()
                self._cal_count -= len(bucket)
                cal[floor % size] = []
                if not self._cal_count:
                    self._cal_floor = cycle + 1
                    return
            floor += 1
        self._cal_floor = floor

    def next_event_cycle(self, cycle: int) -> "int | None":
        for port in self._seq_ports:
            if port.wants_grant():
                return cycle
        for stream in self._indexed_list:
            if stream.pending_words:
                return cycle
        if self.return_network.pending():
            return cycle
        if self._cal_count:
            cal = self._cal
            size = self._cal_size
            for k in range(size):
                if cal[(cycle + k) % size]:
                    return cycle + k
            return cycle  # unreachable; be conservative, never skip
        return None

    # -- arbitration ------------------------------------------------------
    def _grant_indexed(self, cycle: int) -> None:
        if self._faults_enabled:
            # Fault hooks (read strikes, drop windows) live on the base
            # grant path; completions still flow through the calendar
            # via the _push_in_flight override.
            super()._grant_indexed(cycle)
            return
        stats = self.stats
        stats.indexed_cycles += 1
        self.address_network.begin_cycle()
        lanes = self.geometry.lanes
        bank_cap = self._bank_cap
        multi_cap = bank_cap > 1
        sub_stride = self._subarray_stride
        sub_count = self._subarray_count
        occupancy_policy = self._occupancy_policy
        shared_comm = self._shared_network and self._comm_busy
        return_network = self.return_network
        address_network = self.address_network
        bank_arbiters = self._bank_arbiters
        bank_conflicts = self._bank_conflicts
        storage = self.storage
        cal = self._cal
        size = self._cal_size
        cfg = self.config
        inlane_due = cycle + cfg.inlane_indexed_latency
        crosslane_due = cycle + max(1, cfg.crosslane_indexed_latency - 1)
        # One candidate pass per cycle instead of a full stream x lane
        # re-peek per bank: each live head word is placed in its target
        # bank's bucket once (inlined AddressFifo head-cache read),
        # ordered by (stream position, lane) — the exact order the base
        # engine's per-bank scan produces. This is exact because only
        # advance() moves a head mid-cycle: an in-lane grant at bank b
        # moves lane b's fifo only, which no later bank reads; a
        # cross-lane grant CAN expose a word a later bank must see, so
        # the uncovered head is insort-ed into that bank's bucket at
        # its (stream, lane) position after every cross-lane grant.
        buckets = [[] for _ in range(lanes)]
        si = 0
        for stream in self._indexed_list:
            if not stream.pending_words:
                continue
            crosslane = stream.is_crosslane
            lane = 0
            for fifo in stream.fifos:
                word = fifo._head_cache
                if word is _STALE:
                    word = fifo.peek_word()
                if word is not None:
                    # In-lane heads live at their own bank (the base
                    # engine peeks fifos[bank] without a target check).
                    target = word.target_lane if crosslane else lane
                    buckets[target].append((si, lane, stream, word))
                lane += 1
            si += 1
        granted_total = 0
        blocked_total = 0
        for bank in range(lanes):
            heads = buckets[bank]
            if not heads:
                continue  # base returns before touching the arbiter
            n_heads = len(heads)
            if n_heads == 1:
                order = _SINGLE  # rotation/sort of one head is [0]
            elif occupancy_policy:
                order = sorted(
                    range(n_heads),
                    key=lambda p: -heads[p][2].fifos[heads[p][1]].occupancy,
                )
            else:
                order = bank_arbiters[bank].rotation(n_heads)
            used_subarrays = 0
            granted = 0
            for position in order:
                if granted >= bank_cap:
                    break
                si_h, lane, stream, word = heads[position]
                subarray_bit = 1 << (
                    (word.bank_local_addr // sub_stride) % sub_count
                )
                if multi_cap and used_subarrays & subarray_bit:
                    continue
                crosslane = stream.is_crosslane
                if crosslane:
                    if shared_comm:
                        continue  # the shared network carries the comm
                    if not return_network.bank_has_space(bank):
                        continue
                    if not address_network.try_route(lane, bank):
                        continue
                    return_network.reserve(bank)
                used_subarrays |= subarray_bit
                fifo = stream.fifos[lane]
                fifo.advance()
                stream.pending_words -= 1
                if crosslane:
                    # A later bank's scan in the base engine would see
                    # the word this advance uncovered; file it in that
                    # bank's bucket at its (stream, lane) position.
                    # Earlier (and this) banks are already arbitrated,
                    # so a word targeting them stays out, exactly as
                    # the base engine would miss it this cycle.
                    refreshed = fifo._head_cache
                    if refreshed is _STALE:
                        refreshed = fifo.peek_word()
                    if (refreshed is not None
                            and refreshed.target_lane > bank):
                        insort(
                            buckets[refreshed.target_lane],
                            (si_h, lane, stream, refreshed),
                        )
                # Inlined _launch: same stats/storage/latency effects,
                # calendar tuples instead of heap closures. filter_word
                # is elided because the faulted path branched to the
                # base implementation above.
                if word.is_read:
                    value = storage.read_lane(bank, word.bank_local_addr)
                    rob = stream.robs[word.source_lane]
                    if crosslane:
                        stats.crosslane_grants += 1
                        cal[crosslane_due % size].append(
                            (2, bank, word.source_lane, word.ticket, value,
                             word.stream_id, rob)
                        )
                    else:
                        stats.inlane_grants += 1
                        rob.note_due(word.ticket, inlane_due)
                        cal[inlane_due % size].append(
                            (1, rob, word.ticket, value)
                        )
                else:
                    stats.indexed_write_grants += 1
                    storage.write_lane(bank, word.bank_local_addr, word.value)
                    cal[inlane_due % size].append((3, stream))
                self._cal_count += 1
                granted += 1
            bank_arbiters[bank].advance(n_heads)
            blocked = n_heads - granted
            if bank_conflicts is not None and blocked:
                bank_conflicts[bank].add(blocked)
            granted_total += granted
            blocked_total += blocked
        if granted_total == 0:
            stats.empty_indexed_cycles += 1
        stats.blocked_heads += blocked_total

    # -- forensics / idle -------------------------------------------------
    def _inflight_lines(self) -> list:
        if not self._cal_count:
            return []
        cycle = self._cal_floor
        for k in range(self._cal_size):
            if self._cal[(self._cal_floor + k) % self._cal_size]:
                cycle = self._cal_floor + k
                break
        return [
            f"{self._cal_count} pipelined accesses in flight "
            f"(next due cycle {cycle})"
        ]

    @property
    def idle(self) -> bool:
        if self._cal_count or self.return_network.pending():
            return False
        if any(p.wants_grant() for p in self._seq_ports):
            return False
        return all(s.quiescent for s in self._indexed.values())


class ColumnarExecutor(KernelExecutor):
    """Executor with due-bounded stall windows and universal steady skip."""

    @property
    def steady_skippable(self) -> bool:
        # Quiet-cycle accounting is backend-independent (a quiet step
        # only bumps total_cycles and virtual time), so the columnar
        # engine enables the steady-state skip for scalar runs too.
        return True

    def stall_window(self, cycle: int) -> int:
        """Cycles the head event provably keeps stalling, from ``cycle``.

        Non-zero only when a step right now would do *nothing* but
        charge an SRF stall: the heap head is a due indexed-data event
        that cannot fire, no iteration issue is pending at the frozen
        virtual time, and every unfilled word the event waits for has a
        recorded fill due. A fill at SRF tick ``d`` lands after the
        executor step of cycle ``d``, so the event first fires on cycle
        ``last_due + 1`` and every earlier step stalls.
        """
        heap = self._heap
        if not heap:
            return 0
        vt0, _seq, event = heap[0]
        if vt0 > self._vt:
            return 0  # not due: these are quiet cycles, not stalls
        if type(event) is not _IdxData:
            return 0
        if (
            self._issued < self.invocation.iterations
            and self._issued * self.schedule.ii <= self._vt
        ):
            return 0  # a step would issue an iteration first
        stream = event.stream
        robs = stream.robs
        need = stream.descriptor.record_words
        last_due = -1
        for lane, n in enumerate(event.counts):
            if not n:
                continue
            d = robs[lane].unblock_due(need)
            if d is None:
                return 0  # some word not yet granted / not due-bounded
            if d > last_due:
                last_due = d
        if last_due < 0:
            return 0  # every needed word already landed: event can fire
        return last_due + 1 - cycle

    def fast_forward_stalled(self, cycles: int) -> None:
        """Charge ``cycles`` provably-stalled steps in bulk.

        Each skipped step would have bumped ``total_cycles``, charged
        one SRF stall cycle, and frozen virtual time — nothing else
        (see :meth:`stall_window`).
        """
        self.stats.total_cycles += cycles
        self.stats.srf_stall_cycles += cycles
        if self._stall_counter is not None:  # metrics-off under eligibility
            for _ in range(cycles):
                self._stall_counter.add()


class ColumnarProcessor(StreamProcessor):
    """Stream processor driven by the columnar timing engine."""

    SRF_CLS = ColumnarSrf
    EXECUTOR_CLS = ColumnarExecutor
    engine = "columnar"
    _drain_windows = True

    def __init__(self, config: MachineConfig):
        eligible, reason = columnar_eligible(config)
        if not eligible:
            # Engagement honesty: an ineligible config must fall back
            # via build_processor, never run half-modelled here.
            raise ConfigurationError(
                f"columnar timing engine cannot model this config: {reason}"
            )
        super().__init__(config)
