"""Cycle-accurate execution of a scheduled kernel on the machine.

The executor replays a kernel's modulo schedule against the SRF timing
model. Iterations are evaluated functionally (on real data) the moment
they are *issued* into the software pipeline; their stream accesses then
fire as timed events at ``issue_cycle + slot(op)``. Clusters run in SIMD
lockstep, so any event that cannot complete — an empty stream buffer, a
full address FIFO, indexed data still in flight (Figure 9) — stalls the
whole machine for a cycle and is retried; those cycles are the
"SRF stall" component of Figure 12.

Functional evaluation at issue is exact because kernel streams are
read-only or write-only for the duration of a kernel (paper §7), and
issue order equals program order.
"""

from __future__ import annotations

import heapq
import itertools

from repro.config.machine import MachineConfig
from repro.core.descriptors import IndexSpace, StreamDescriptor
from repro.core.srf import PortDirection, StreamRegisterFile
from repro.errors import ExecutionError, ReplayError
from repro.kernel.interpreter import ExecutionContext, KernelInterpreter
from repro.kernel.ir import KernelStream
from repro.kernel.ops import OpKind
from repro.kernel.schedule import StaticSchedule
from repro.machine.program import KernelInvocation
from repro.machine.replay import REPLAY_DATA_KINDS, copy_detail
from repro.machine.stats import KernelRunStats
from repro.machine.vector import VectorKernelInterpreter, vector_supported

#: Fixed per-invocation cost of loading kernel microcode and priming the
#: stream units (part of Figure 12's "kernel overheads").
KERNEL_STARTUP_CYCLES = 32


class _SrfBackedContext(ExecutionContext):
    """Functional stream data wired straight to SRF storage.

    Sequential writes and indexed writes are *not* performed here — the
    timed events push the real values through the SRF port machinery, so
    the architectural state is only updated by the timing model.
    """

    def __init__(self, executor: "KernelExecutor"):
        self._executor = executor

    def seq_read(self, stream: KernelStream) -> list:
        return self._executor.functional_seq_read(stream)

    def seq_write(self, stream: KernelStream, lane_values) -> None:
        pass  # flows through the timed SeqWrite event

    def idx_read(self, stream: KernelStream, lane: int, record_index: int):
        return self._executor.functional_idx_read(stream, lane, record_index)

    def idx_write(self, stream, lane, record_index, value) -> None:
        # The architectural write flows through the timed IdxWrite event;
        # the overlay keeps later functional reads of a read-write
        # stream coherent with program order.
        self._executor.functional_idx_write(stream, lane, record_index, value)


class _Event:
    """A timed stream access; ``fire`` returns True when it completed."""

    __slots__ = ("vt",)

    def fire(self, executor) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def is_comm(self) -> bool:
        return False


class _SeqRead(_Event):
    __slots__ = ("vt", "port")

    def __init__(self, vt, port):
        self.vt = vt
        self.port = port

    def fire(self, executor) -> bool:
        if not self.port.can_pop():
            return False
        self.port.pop_simd()
        return True


class _SeqWrite(_Event):
    __slots__ = ("vt", "port", "values")

    def __init__(self, vt, port, values):
        self.vt = vt
        self.port = port
        self.values = values

    def fire(self, executor) -> bool:
        if not self.port.can_push():
            return False
        self.port.push_simd(self.values)
        return True


class _IdxIssue(_Event):
    __slots__ = ("vt", "stream", "indices")

    def __init__(self, vt, stream, indices):
        self.vt = vt
        self.stream = stream
        self.indices = indices  # per-lane record index or None

    def fire(self, executor) -> bool:
        stream = self.stream
        indices = self.indices
        for lane, idx in enumerate(indices):
            if idx is not None and not stream.can_issue(lane):
                return False
        for lane, idx in enumerate(indices):
            if idx is not None:
                stream.issue_read(lane, idx)
        return True


class _IdxData(_Event):
    __slots__ = ("vt", "stream", "counts")

    def __init__(self, vt, stream, counts):
        self.vt = vt
        self.stream = stream
        self.counts = counts  # per-lane words expected (0 = predicated off)

    def fire(self, executor) -> bool:
        stream = self.stream
        counts = self.counts
        for lane, n in enumerate(counts):
            if n and not stream.record_ready(lane):
                return False
        for lane, n in enumerate(counts):
            if n:
                stream.pop_record(lane)
        return True


class _IdxWrite(_Event):
    __slots__ = ("vt", "stream", "entries")

    def __init__(self, vt, stream, entries):
        self.vt = vt
        self.stream = stream
        self.entries = entries  # per-lane (index, [words]) or None

    def fire(self, executor) -> bool:
        stream = self.stream
        entries = self.entries
        for lane, entry in enumerate(entries):
            if entry is not None and not stream.can_issue(lane):
                return False
        for lane, entry in enumerate(entries):
            if entry is not None:
                stream.issue_write(lane, entry[0], entry[1])
        return True


class _Comm(_Event):
    __slots__ = ("vt",)

    def __init__(self, vt):
        self.vt = vt

    def fire(self, executor) -> bool:
        return True  # statically scheduled comms always have priority

    @property
    def is_comm(self) -> bool:
        return True


class KernelExecutor:
    """Drives one :class:`KernelInvocation` to completion on the SRF."""

    def __init__(self, config: MachineConfig, srf: StreamRegisterFile,
                 invocation: KernelInvocation, schedule: StaticSchedule,
                 observer=None, record_to=None, replay_from=None):
        self.config = config
        self.srf = srf
        self.invocation = invocation
        self.schedule = schedule
        # Observability (repro.observe); None when disabled.
        self._stall_counter = None
        if observer is not None and observer.metrics is not None:
            metrics = observer.metrics
            self._stall_counter = metrics.counter(
                f"kernel.{invocation.name}.srf_stall_cycles"
            )
            # Static VLIW slot utilisation of the modulo schedule: ops
            # issued per iteration over the ii * ALU slot capacity.
            capacity = schedule.ii * config.alus_per_cluster
            metrics.gauge(
                f"kernel.{invocation.name}.slot_utilization"
            ).set(len(invocation.kernel.ops) / capacity if capacity else 0.0)
        self._geometry = srf.geometry
        self._bind_streams()
        if invocation.on_start is not None:
            invocation.on_start()
        #: Replay integration (repro.machine.replay). ``replay_from``
        #: supplies recorded per-iteration stream details in place of
        #: functional execution; ``record_to`` captures them during a
        #: functional run. Both are :class:`InvocationTrace` objects.
        self._record_rows = None
        self._replay_rows = None
        self._data_ops = None
        #: Whether this invocation is re-timed from a recorded trace
        #: (no interpreter at all; the timing model runs unchanged).
        self.replay_active = replay_from is not None
        #: Whether this invocation runs on the lane-batched vector
        #: engine. Faulted runs and kernels with read-write indexed
        #: streams always fall back to the scalar reference engine.
        self.vector_active = (
            not self.replay_active
            and config.backend == "vector"
            and not config.faults_enabled
            and vector_supported(invocation.kernel)
        )
        if self.replay_active:
            if len(replay_from.rows) != invocation.iterations:
                raise ReplayError(
                    f"{invocation.name}: trace has "
                    f"{len(replay_from.rows)} rows for "
                    f"{invocation.iterations} iterations"
                )
            self._replay_rows = replay_from.rows
            self._data_ops = invocation.kernel.stream_ops(
                *REPLAY_DATA_KINDS
            )
            self._interpreter = None
        elif self.vector_active:
            self._interpreter = VectorKernelInterpreter(
                invocation.kernel, config.lanes, _SrfBackedContext(self),
                invocation.iterations,
            )
        else:
            self._interpreter = KernelInterpreter(
                invocation.kernel, config.lanes, _SrfBackedContext(self)
            )
        if record_to is not None and not self.replay_active:
            self._record_rows = record_to.rows
            self._data_ops = invocation.kernel.stream_ops(
                *REPLAY_DATA_KINDS
            )
        self._timed_ops = schedule.timed_stream_ops()
        self._heap = []
        self._sequence = itertools.count()
        self._vt = 0
        self._issued = 0
        self._startup_remaining = KERNEL_STARTUP_CYCLES
        self._flushed = False
        self.finished = False
        self.stats = KernelRunStats(
            kernel_name=invocation.name,
            ii=schedule.ii,
            depth=schedule.depth,
            iterations=invocation.iterations,
            useful_iterations=invocation.mean_useful_iterations,
            startup_cycles=KERNEL_STARTUP_CYCLES,
            lanes=config.lanes,
        )
        self._seq_cursors = {name: 0 for name in invocation.kernel.streams}
        #: Program-order shadow of indexed writes, so functional reads of
        #: a read-write stream observe writes that the timed SRF path has
        #: not retired yet. The timing path needs no equivalent: reads
        #: and writes of one stream share an address FIFO, which keeps
        #: their SRF-side order equal to program order.
        self._write_overlay = {}

    # ------------------------------------------------------------------
    # Stream binding
    # ------------------------------------------------------------------
    def _bind_streams(self) -> None:
        self._ports = {}  # stream name -> SequentialPort
        self._indexed = {}  # stream name -> IndexedStream
        self._descriptors = {}
        for name, formal in self.invocation.kernel.streams.items():
            descriptor = self.invocation.bindings[name]
            if not isinstance(descriptor, StreamDescriptor):
                raise ExecutionError(
                    f"{self.invocation.name}: binding for {name!r} is not a "
                    "StreamDescriptor"
                )
            if descriptor.kind is not formal.kind:
                raise ExecutionError(
                    f"{self.invocation.name}: stream {name!r} is "
                    f"{formal.kind.value} but bound to a "
                    f"{descriptor.kind.value} descriptor"
                )
            if descriptor.record_words != formal.record_words:
                raise ExecutionError(
                    f"{self.invocation.name}: stream {name!r} has "
                    f"{formal.record_words}-word records but is bound to a "
                    f"descriptor with {descriptor.record_words}-word records"
                )
            self._descriptors[name] = descriptor
            if formal.kind.is_sequential:
                direction = (
                    PortDirection.READ if formal.kind.is_read
                    else PortDirection.WRITE
                )
                self._ports[name] = self.srf.open_sequential(
                    descriptor, direction
                )
            else:
                self._indexed[name] = self.srf.open_indexed(descriptor)

    def _release_streams(self) -> None:
        for port in self._ports.values():
            self.srf.close_sequential(port)
        for stream in self._indexed.values():
            self.srf.close_indexed(stream)

    # ------------------------------------------------------------------
    # Functional data access (used by the interpreter's context)
    # ------------------------------------------------------------------
    def functional_seq_read(self, stream: KernelStream) -> list:
        descriptor = self._descriptors[stream.name]
        geometry = self._geometry
        m = geometry.words_per_lane_access
        cursor = self._seq_cursors[stream.name]
        block_base = descriptor.base + (cursor // m) * geometry.block_words
        offset = cursor % m
        storage = self.srf.storage
        values = [
            storage.read(block_base + lane * m + offset)
            for lane in range(geometry.lanes)
        ]
        self._seq_cursors[stream.name] = cursor + 1
        return values

    def functional_idx_write(self, stream: KernelStream, lane: int,
                             record_index: int, value) -> None:
        self._write_overlay[(stream.name, lane, record_index)] = value

    def functional_idx_read(self, stream: KernelStream, lane: int,
                            record_index: int):
        overlay_key = (stream.name, lane, record_index)
        if overlay_key in self._write_overlay:
            return self._write_overlay[overlay_key]
        descriptor = self._descriptors[stream.name]
        rw = descriptor.record_words
        storage = self.srf.storage
        if descriptor.index_space is IndexSpace.PER_LANE:
            geometry = self._geometry
            local_base = (
                descriptor.base // geometry.block_words
            ) * geometry.words_per_lane_access
            words = [
                storage.read_lane(lane, local_base + record_index * rw + j)
                for j in range(rw)
            ]
        else:
            base = descriptor.base + record_index * rw
            words = [storage.read(base + j) for j in range(rw)]
        return words[0] if rw == 1 else tuple(words)

    # ------------------------------------------------------------------
    # Cycle stepping
    # ------------------------------------------------------------------
    @property
    def startup_remaining(self) -> int:
        """Microcode-load cycles left before the first loop iteration."""
        return self._startup_remaining

    @property
    def steady_skippable(self) -> bool:
        """Whether the processor may bulk-skip this kernel's quiet cycles.

        Quiet-cycle accounting itself is engine-independent (see
        :meth:`next_quiet_cycles`); this flag records which executors
        the steady-state skip has been enabled for. The columnar timing
        engine (:mod:`repro.machine.columnar`) turns it on always.
        """
        return self.vector_active or self.replay_active

    def fast_forward(self, cycles: int) -> None:
        """Consume ``cycles`` of the fixed startup delay in bulk.

        Equivalent to ``cycles`` calls to :meth:`step` while the startup
        countdown is running (each would only bump the cycle counter).
        """
        if cycles > self._startup_remaining:
            raise ExecutionError(
                f"{self.invocation.name}: cannot fast-forward {cycles} "
                f"cycles with {self._startup_remaining} startup cycles left"
            )
        self.stats.total_cycles += cycles
        self._startup_remaining -= cycles

    def next_quiet_cycles(self) -> int:
        """Cycles until this executor next does anything but wait.

        A *quiet* cycle is one where :meth:`step` would issue no
        iteration, fire no event and finish nothing — it only advances
        ``total_cycles`` and virtual time. The next non-quiet cycle is
        the earlier of the next iteration issue (``issued * ii``) and
        the earliest pending event; 0 means the very next step may do
        real work (or the kernel is starting up, draining, or done,
        where per-cycle stepping is required).
        """
        if self.finished or self._startup_remaining > 0:
            return 0
        candidates = []
        if self._issued < self.invocation.iterations:
            candidates.append(self._issued * self.schedule.ii)
        if self._heap:
            candidates.append(self._heap[0][0])
        if not candidates:
            return 0  # draining: flush/quiescence checks run per cycle
        return max(0, min(candidates) - self._vt)

    def fast_forward_steady(self, cycles: int) -> None:
        """Consume ``cycles`` quiet steady-state cycles in bulk.

        Only valid for ``cycles <= next_quiet_cycles()``: each skipped
        step would have bumped ``total_cycles`` and virtual time and
        done nothing else, so this is bit-identical to stepping.
        """
        self.stats.total_cycles += cycles
        self._vt += cycles

    def step(self) -> bool:
        """Advance one machine cycle; returns comm_busy for this cycle.

        Sets :attr:`finished` when the kernel (including output drain)
        has completed.
        """
        if self.finished:
            return False
        self.stats.total_cycles += 1
        if self._startup_remaining > 0:
            self._startup_remaining -= 1
            return False
        self._issue_ready_iterations()
        comm_busy = self._fire_events()
        self._maybe_finish()
        return comm_busy

    def _issue_ready_iterations(self) -> None:
        while (
            self._issued < self.invocation.iterations
            and self._issued * self.schedule.ii <= self._vt
        ):
            details = self._iteration_details()
            base_vt = self._issued * self.schedule.ii
            for op in self._timed_ops:
                vt = base_vt + self.schedule.slots[op.op_id]
                event = self._make_event(op, vt, details)
                heapq.heappush(self._heap, (vt, next(self._sequence), event))
            self._issued += 1

    def _iteration_details(self) -> dict:
        """Stream-access details of the next iteration, by op id.

        Execute mode runs the interpreter on real data (and optionally
        records the data-bearing details); replay mode rehydrates them
        from the recorded trace without touching an interpreter. Details
        are copied at the recording/replaying boundary so SRF-side
        mutation can never corrupt a stored row.
        """
        if self._replay_rows is not None:
            row = self._replay_rows[self._issued]
            if len(row) != len(self._data_ops):
                raise ReplayError(
                    f"{self.invocation.name}: iteration {self._issued} "
                    f"row has {len(row)} details for "
                    f"{len(self._data_ops)} data ops"
                )
            return {
                op.op_id: copy_detail(op.kind, detail)
                for op, detail in zip(self._data_ops, row)
            }
        trace = self._interpreter.run_iteration()
        details = {op.op_id: detail for op, detail in trace.entries}
        if self._record_rows is not None:
            self._record_rows.append([
                copy_detail(op.kind, details[op.op_id])
                for op in self._data_ops
            ])
        return details

    def _make_event(self, op, vt, details) -> _Event:
        kind = op.kind
        if kind is OpKind.SEQ_READ:
            return _SeqRead(vt, self._ports[op.stream.name])
        if kind is OpKind.SEQ_WRITE:
            return _SeqWrite(vt, self._ports[op.stream.name],
                             details[op.op_id])
        if kind is OpKind.IDX_ISSUE:
            return _IdxIssue(vt, self._indexed[op.stream.name],
                             details[op.op_id])
        if kind is OpKind.IDX_DATA:
            return _IdxData(vt, self._indexed[op.stream.name],
                            details[op.op_id])
        if kind is OpKind.IDX_WRITE:
            return _IdxWrite(vt, self._indexed[op.stream.name],
                             details[op.op_id])
        if kind is OpKind.COMM:
            return _Comm(vt)
        raise ExecutionError(f"unexpected timed op {op.name}")

    def _fire_events(self) -> bool:
        """Fire all events due at the current virtual time.

        Returns whether an explicit comm occupied the network this cycle.
        On the first event that cannot fire the machine stalls: virtual
        time freezes and the cycle is charged to SRF stall.
        """
        comm_busy = False
        stalled = False
        while self._heap and self._heap[0][0] <= self._vt:
            _vt, _seq, event = self._heap[0]
            if event.fire(self):
                heapq.heappop(self._heap)
                comm_busy = comm_busy or event.is_comm
            else:
                stalled = True
                break
        if stalled:
            self.stats.srf_stall_cycles += 1
            if self._stall_counter is not None:
                self._stall_counter.add()
        else:
            self._vt += 1
        return comm_busy

    def _maybe_finish(self) -> None:
        if self._issued < self.invocation.iterations or self._heap:
            return
        if not self._flushed:
            for port in self._ports.values():
                if port.direction is PortDirection.WRITE:
                    port.flush()
            self._flushed = True
        write_ports_done = all(
            port.drained for port in self._ports.values()
            if port.direction is PortDirection.WRITE
        )
        indexed_done = all(s.quiescent for s in self._indexed.values())
        if write_ports_done and indexed_done:
            self.finished = True
            self._release_streams()
            if self.invocation.on_finish is not None:
                self.invocation.on_finish()
