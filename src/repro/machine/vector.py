"""Lane-batched (vectorized) functional evaluation of kernels.

:class:`VectorKernelInterpreter` is a drop-in replacement for
:class:`repro.kernel.interpreter.KernelInterpreter`, selected by
``MachineConfig.backend = "vector"``. It produces *bit-identical*
iteration traces and values — same Python types, same object shapes —
but evaluates the kernel graph in blocks of iterations at a time, so a
tagged ALU op (see :data:`repro.kernel.ir.ALGEBRA_UFUNCS`) becomes ONE
NumPy ufunc call over a ``(block, lanes)`` matrix instead of
``block * lanes`` Python-level payload calls, and predication/selects
become boolean masks (``np.where``).

The equivalence argument, enforced empirically by ``tests/fuzz`` and
``tests/machine/test_backend_equivalence.py``:

* functional payloads are pure (a documented interpreter contract), so
  evaluating iteration ``k+1``'s ops before iteration ``k``'s *later*
  ops cannot change any value;
* loop-carried state serializes iterations only through the *carry
  cone* — the transitive ancestors of the carry update ops — which is
  evaluated iteration-by-iteration exactly like the scalar engine; ops
  outside the cone never feed it, so they batch freely;
* sequential-read prefetch consumes the execution context in scalar
  order (iteration-major, program order within an iteration), and
  sequential/indexed *writes* are replayed to the context in the same
  scalar order at block completion;
* NumPy evaluation is used only where it is bit-exact: homogeneous
  ``int``/``float`` columns (never ``bool``), ``int64`` magnitude
  bounds tracked conservatively so arbitrary-precision Python results
  can never differ, ``mod`` restricted to integer columns with
  non-zero divisors, float add/sub/mul relying on IEEE-754 double
  semantics shared by CPython and NumPy. Everything else — opaque
  payloads, divides, mixed-type columns — is evaluated by calling the
  payload, exactly like the scalar engine.

Kernels using in-lane read-write streams interleave functional reads
with program-order writes of the same stream, which block evaluation
would reorder — :func:`vector_supported` reports those kernels (and
nothing else) as unsupported, and the executor silently falls back to
the scalar engine.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.descriptors import StreamKind
from repro.errors import ExecutionError
from repro.kernel.interpreter import ExecutionContext, IterationTrace
from repro.kernel.ir import ALGEBRA_UFUNCS, Kernel
from repro.kernel.ops import OpKind

#: Iterations evaluated per batch. Large enough to amortize NumPy call
#: overhead on 8-lane machines, small enough to keep per-block state
#: (a few columns of ``block x lanes`` values) cache-resident.
BLOCK_ITERATIONS = 64

#: Magnitude ceiling for int64 NumPy evaluation. A column whose result
#: bound reaches this falls back to Python big-int evaluation, so
#: arbitrary-precision results can never be silently truncated. One
#: spare bit below 2**63 keeps every tracked bound itself addable.
_INT64_SAFE_BOUND = 1 << 62

#: Compiled per-kernel plans, shared across invocations of the same
#: kernel object (kernels hash by identity and live as long as their
#: app). Weak keys keep discarded kernels collectable.
_plan_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def vector_supported(kernel: Kernel) -> bool:
    """Whether the vector engine covers ``kernel`` exactly.

    The only exclusion is in-lane read-write streams (paper §7): their
    reads must observe same-stream writes of *earlier* ops in program
    order, which block evaluation would reorder.
    """
    return not any(
        stream.kind is StreamKind.INLANE_INDEXED_READWRITE
        for stream in kernel.streams.values()
    )


class _Plan:
    """Static evaluation plan for one kernel (shared across runs)."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        # Ops whose value can feed a carry update (the "carry cone")
        # must be evaluated iteration-by-iteration; everything else
        # batches. Ancestor closure over operands, seeded with the
        # update ops themselves.
        cone_ids = set()
        worklist = [c.update_op for c in kernel.carries]
        # CARRY reads serialize on per-iteration state even when they do
        # not feed an update, so they (and their closure) join the cone.
        worklist.extend(
            op for op in kernel.ops if op.kind is OpKind.CARRY
        )
        while worklist:
            op = worklist.pop()
            if op.op_id in cone_ids:
                continue
            cone_ids.add(op.op_id)
            worklist.extend(op.operands)
        self.cone_ids = cone_ids
        self.static_ops = [
            op for op in kernel.ops
            if op.kind in (OpKind.CONST, OpKind.LANEID)
        ]
        self.cone_ops = [
            op for op in kernel.ops
            if op.op_id in cone_ids
            and op.kind not in (OpKind.CONST, OpKind.LANEID)
        ]
        self.batch_ops = [
            op for op in kernel.ops
            if op.op_id not in cone_ids
            and op.kind not in (OpKind.CONST, OpKind.LANEID)
        ]
        self.seq_read_ops = kernel.stream_ops(OpKind.SEQ_READ)
        #: Ops that contribute IterationTrace entries, in program order.
        self.trace_ops = kernel.stream_ops(
            OpKind.SEQ_READ, OpKind.SEQ_WRITE, OpKind.IDX_ISSUE,
            OpKind.IDX_DATA, OpKind.IDX_WRITE, OpKind.COMM,
        )
        #: Context writes replayed in scalar order at block completion.
        self.write_ops = kernel.stream_ops(
            OpKind.SEQ_WRITE, OpKind.IDX_WRITE
        )


def _plan_for(kernel: Kernel) -> _Plan:
    plan = _plan_cache.get(kernel)
    if plan is None:
        plan = _Plan(kernel)
        _plan_cache[kernel] = plan
    return plan


class _Column:
    """One op's values over a block: ``rows[k][lane]`` and/or an
    ``(iterations, lanes)`` ndarray, converted lazily and cached.

    The array form exists only for columns that are homogeneous
    ``int``/``float`` (exact type check — ``bool`` stays Python);
    ``bound`` tracks a conservative ``|value|`` ceiling for int64
    columns so overflow can be excluded before every ufunc call.
    """

    __slots__ = ("_rows", "_array", "bound", "_array_known")

    def __init__(self, rows=None, array=None, bound=None):
        self._rows = rows
        self._array = array
        self.bound = bound
        self._array_known = array is not None

    def rows(self) -> list:
        if self._rows is None:
            self._rows = self._array.tolist()
        return self._rows

    def array(self) -> "np.ndarray | None":
        if self._array_known:
            return self._array
        self._array_known = True
        rows = self._rows
        first = rows[0][0] if rows and rows[0] else None
        kind = type(first)
        if kind is int:
            if all(type(v) is int for row in rows for v in row):
                try:
                    self._array = np.array(rows, dtype=np.int64)
                except OverflowError:
                    return None
                self.bound = max(
                    abs(int(self._array.max(initial=0))),
                    abs(int(self._array.min(initial=0))),
                )
        elif kind is float:
            if all(type(v) is float for row in rows for v in row):
                self._array = np.array(rows, dtype=np.float64)
        return self._array


class VectorKernelInterpreter:
    """Evaluates kernel iterations in lane-batched blocks.

    Drop-in for :class:`KernelInterpreter`: :meth:`run_iteration`
    returns the same :class:`IterationTrace` (same entries, details,
    and Python value types) the scalar engine would produce, and
    :meth:`carry_values` reflects the state after the last iteration
    returned so far. Internally, traces are computed
    :data:`BLOCK_ITERATIONS` at a time and handed out one per call.
    """

    def __init__(self, kernel: Kernel, lanes: int,
                 context: ExecutionContext, iterations: int,
                 block: int = BLOCK_ITERATIONS):
        kernel.validate()
        if not vector_supported(kernel):
            raise ExecutionError(
                f"{kernel.name}: read-write streams need the scalar engine"
            )
        self.kernel = kernel
        self.lanes = lanes
        self.context = context
        self.iterations = iterations
        self.iterations_run = 0
        self._block = max(1, block)
        self._plan = _plan_for(kernel)
        self._carry_state = {
            carry.name: [carry.init_value] * lanes
            for carry in kernel.carries
        }
        self._static_values = {}
        for op in self._plan.static_ops:
            if op.kind is OpKind.CONST:
                self._static_values[op.op_id] = [op.value] * lanes
            else:
                self._static_values[op.op_id] = list(range(lanes))
        self._pending = []  # traces computed but not yet handed out
        self._carry_after = []  # post-iteration carry snapshots, aligned

    # ------------------------------------------------------------------
    def carry_values(self, name: str) -> list:
        """Per-lane values of a carry after the last iteration returned."""
        try:
            return list(self._carry_state[name])
        except KeyError:
            raise ExecutionError(f"no carry named {name!r}") from None

    def run_iteration(self) -> IterationTrace:
        """Next iteration's trace, computing a fresh block if needed."""
        if not self._pending:
            if self.iterations_run >= self.iterations:
                raise ExecutionError(
                    f"{self.kernel.name}: all {self.iterations} iterations "
                    "already run"
                )
            self._evaluate_block(
                min(self._block, self.iterations - self.iterations_run)
            )
        trace = self._pending.pop(0)
        if self._carry_after:
            self._carry_state = self._carry_after.pop(0)
        self.iterations_run += 1
        return trace

    def run(self, iterations: int) -> list:
        """Run several iterations; returns their traces."""
        return [self.run_iteration() for _ in range(iterations)]

    # ------------------------------------------------------------------
    # Block evaluation
    # ------------------------------------------------------------------
    def _evaluate_block(self, count: int) -> None:
        plan = self._plan
        lanes = self.lanes
        base_iteration = self.iterations_run

        # 1. Prefetch sequential reads in scalar order (iteration-major,
        # program order within an iteration) so context cursors advance
        # exactly as the scalar engine would advance them.
        prefetched = {op.op_id: [] for op in plan.seq_read_ops}
        for _ in range(count):
            for op in plan.seq_read_ops:
                lane_values = self.context.seq_read(op.stream)
                if len(lane_values) != lanes:
                    raise ExecutionError(
                        f"{op.name}: context returned {len(lane_values)} "
                        f"values for {lanes} lanes"
                    )
                prefetched[op.op_id].append(list(lane_values))

        columns = {
            op_id: _Column(rows=[values] * count)
            for op_id, values in self._static_values.items()
        }
        for op_id, rows in prefetched.items():
            columns[op_id] = _Column(rows=rows)

        # 2. Carry cone, iteration by iteration (scalar semantics).
        carry_rows = {c.name: [] for c in self.kernel.carries}
        if plan.cone_ops or self.kernel.carries:
            self._evaluate_cone(count, columns, carry_rows)

        # 3. Everything else, op-major over the whole block.
        for op in plan.batch_ops:
            columns[op.op_id] = self._evaluate_batch_op(op, count, columns)

        # 4. Replay context writes in scalar order.
        for k in range(count):
            for op in plan.write_ops:
                if op.kind is OpKind.SEQ_WRITE:
                    self.context.seq_write(
                        op.stream, list(columns[op.op_id].rows()[k])
                    )
                else:
                    data = columns[op.operands[1].op_id].rows()[k]
                    for lane, entry in enumerate(
                        columns[op.op_id].rows()[k]
                    ):
                        if entry is not None:
                            self.context.idx_write(
                                op.stream, lane, entry[0], data[lane]
                            )

        # 5. Assemble per-iteration traces in program order.
        for k in range(count):
            trace = IterationTrace(base_iteration + k)
            for op in plan.trace_ops:
                kind = op.kind
                if kind in (OpKind.SEQ_READ, OpKind.COMM):
                    detail = None
                elif kind is OpKind.SEQ_WRITE:
                    detail = list(columns[op.op_id].rows()[k])
                else:  # IDX_ISSUE indices / IDX_DATA counts / IDX_WRITE
                    detail = columns[_detail_key(op)].rows()[k]
                trace.entries.append((op, detail))
            self._pending.append(trace)
        self._carry_after = [
            {name: rows[k] for name, rows in carry_rows.items()}
            for k in range(count)
        ]

    # ------------------------------------------------------------------
    def _evaluate_cone(self, count, columns, carry_rows) -> None:
        """Scalar-order evaluation of the carry cone over the block."""
        plan = self._plan
        lanes = self.lanes
        carry_state = self._carry_state
        cone_columns = {
            op.op_id: [] for op in plan.cone_ops
        }
        for k in range(count):
            values = {}
            for op in plan.cone_ops:
                kind = op.kind
                if kind in (OpKind.ARITH, OpKind.LOGIC, OpKind.MUL,
                            OpKind.DIV):
                    result = self._apply_scalar(op, values, columns, k)
                elif kind is OpKind.CARRY:
                    result = list(carry_state[op.carry.name])
                elif kind is OpKind.SEQ_READ:
                    result = columns[op.op_id].rows()[k]
                elif kind is OpKind.SEQ_WRITE:
                    result = self._operand_row(
                        op.operands[0], values, columns, k
                    )
                elif kind is OpKind.IDX_ISSUE:
                    result = self._issue_indices(op, values, columns, k)
                elif kind is OpKind.IDX_DATA:
                    issue = self._operand_row(
                        op.operands[0], values, columns, k
                    )
                    record_words = op.stream.record_words
                    result, counts = [], []
                    for lane in range(lanes):
                        if issue[lane] is None:
                            result.append(0)
                            counts.append(0)
                        else:
                            result.append(self.context.idx_read(
                                op.stream, lane, issue[lane]))
                            counts.append(record_words)
                    cone_columns.setdefault(
                        (op.op_id, "counts"), []
                    ).append(counts)
                elif kind is OpKind.IDX_WRITE:
                    result = self._idx_write_detail(op, values, columns, k)
                elif kind is OpKind.COMM:
                    payload = self._operand_row(
                        op.operands[0], values, columns, k
                    )
                    sources = self._operand_row(
                        op.operands[1], values, columns, k
                    )
                    result = [
                        payload[int(sources[lane]) % lanes]
                        for lane in range(lanes)
                    ]
                else:  # pragma: no cover - exhaustive over cone kinds
                    raise ExecutionError(f"unhandled cone op kind {kind}")
                values[op.op_id] = result
                cone_columns[op.op_id].append(result)
            carry_state = {
                carry.name: list(values[carry.update_op.op_id])
                for carry in self.kernel.carries
            }
            for name, state in carry_state.items():
                carry_rows[name].append(state)
        for op_id, rows in cone_columns.items():
            columns[op_id] = _Column(rows=rows)

    def _operand_row(self, operand, values, columns, k) -> list:
        if operand.op_id in values:
            return values[operand.op_id]
        return columns[operand.op_id].rows()[k]

    def _apply_scalar(self, op, values, columns, k) -> list:
        """Per-lane payload evaluation, identical to the scalar engine."""
        rows = [
            self._operand_row(operand, values, columns, k)
            for operand in op.operands
        ]
        payload = op.payload
        try:
            if len(rows) == 2:
                return [payload(x, y) for x, y in zip(rows[0], rows[1])]
            if len(rows) == 1:
                return [payload(x) for x in rows[0]]
        except Exception:
            pass
        result = []
        for lane in range(self.lanes):
            try:
                result.append(payload(*[r[lane] for r in rows]))
            except Exception as exc:
                raise ExecutionError(
                    f"{self.kernel.name}: payload of {op.name} failed on "
                    f"lane {lane}: {exc}"
                ) from exc
        return result

    def _issue_indices(self, op, values, columns, k) -> list:
        indices = self._operand_row(op.operands[0], values, columns, k)
        if len(op.operands) > 1:
            predicates = self._operand_row(
                op.operands[1], values, columns, k
            )
        else:
            predicates = None
        return [
            int(indices[lane])
            if predicates is None or predicates[lane] else None
            for lane in range(self.lanes)
        ]

    def _idx_write_detail(self, op, values, columns, k) -> list:
        indices = self._operand_row(op.operands[0], values, columns, k)
        data = self._operand_row(op.operands[1], values, columns, k)
        if len(op.operands) > 2:
            predicates = self._operand_row(
                op.operands[2], values, columns, k
            )
        else:
            predicates = None
        detail = []
        for lane in range(self.lanes):
            if predicates is not None and not predicates[lane]:
                detail.append(None)
                continue
            record_index = int(indices[lane])
            value = data[lane]
            words = list(value) if isinstance(value, tuple) else [value]
            if len(words) != op.stream.record_words:
                raise ExecutionError(
                    f"{op.name}: record needs {op.stream.record_words} words"
                )
            detail.append((record_index, words))
        return detail

    # ------------------------------------------------------------------
    def _evaluate_batch_op(self, op, count, columns) -> _Column:
        kind = op.kind
        if kind in (OpKind.ARITH, OpKind.LOGIC, OpKind.MUL):
            column = self._try_ufunc(op, columns)
            if column is not None:
                return column
            return self._apply_batch(op, count, columns)
        if kind is OpKind.DIV:
            return self._apply_batch(op, count, columns)
        if kind is OpKind.SEQ_READ:
            return columns[op.op_id]  # prefetched
        if kind is OpKind.SEQ_WRITE:
            return _Column(rows=[
                list(columns[op.operands[0].op_id].rows()[k])
                for k in range(count)
            ])
        if kind is OpKind.IDX_ISSUE:
            return self._batch_issue(op, count, columns)
        if kind is OpKind.IDX_DATA:
            return self._batch_idx_data(op, count, columns)
        if kind is OpKind.IDX_WRITE:
            return _Column(rows=[
                self._idx_write_detail(op, {}, columns, k)
                for k in range(count)
            ])
        if kind is OpKind.COMM:
            return self._batch_comm(op, count, columns)
        raise ExecutionError(  # pragma: no cover - exhaustive over kinds
            f"unhandled batch op kind {kind}"
        )

    def _apply_batch(self, op, count, columns) -> _Column:
        rows = [columns[operand.op_id].rows() for operand in op.operands]
        payload = op.payload
        out = []
        try:
            if len(rows) == 2:
                for k in range(count):
                    out.append([
                        payload(x, y)
                        for x, y in zip(rows[0][k], rows[1][k])
                    ])
                return _Column(rows=out)
            if len(rows) == 1:
                for k in range(count):
                    out.append([payload(x) for x in rows[0][k]])
                return _Column(rows=out)
        except Exception:
            pass
        out = []
        for k in range(count):
            lane_values = []
            for lane in range(self.lanes):
                try:
                    lane_values.append(
                        payload(*[r[k][lane] for r in rows])
                    )
                except Exception as exc:
                    raise ExecutionError(
                        f"{self.kernel.name}: payload of {op.name} failed "
                        f"on lane {lane}: {exc}"
                    ) from exc
            out.append(lane_values)
        return _Column(rows=out)

    def _try_ufunc(self, op, columns) -> "_Column | None":
        """NumPy evaluation when (and only when) it is bit-exact."""
        algebra = op.algebra
        if algebra is None:
            return None
        if algebra == "select":
            return self._try_select(op, columns)
        ufunc = ALGEBRA_UFUNCS.get(algebra)
        if ufunc is None or len(op.operands) != 2:
            return None
        a = columns[op.operands[0].op_id].array()
        b = columns[op.operands[1].op_id].array()
        if a is None or b is None:
            return None
        a_int = a.dtype == np.int64
        b_int = b.dtype == np.int64
        if algebra in ("xor", "mod"):
            if not (a_int and b_int):
                return None  # Python semantics for non-int bit ops / mod
            if algebra == "mod":
                if np.any(b == 0):
                    return None  # preserve ZeroDivisionError behaviour
                bound = int(
                    max(abs(int(b.max(initial=0))),
                        abs(int(b.min(initial=0))))
                )
            else:
                bound = 2 * max(columns[op.operands[0].op_id].bound,
                                columns[op.operands[1].op_id].bound) + 1
                if bound >= _INT64_SAFE_BOUND:
                    return None
        elif a_int and b_int:
            ba = columns[op.operands[0].op_id].bound
            bb = columns[op.operands[1].op_id].bound
            bound = ba * bb if algebra == "mul" else ba + bb
            if bound >= _INT64_SAFE_BOUND:
                return None
        else:
            bound = None  # float64 result: IEEE-exact, no overflow
        return _Column(array=ufunc(a, b), bound=bound)

    def _try_select(self, op, columns) -> "_Column | None":
        cond = columns[op.operands[0].op_id].array()
        if_true = columns[op.operands[1].op_id].array()
        if_false = columns[op.operands[2].op_id].array()
        if cond is None or if_true is None or if_false is None:
            return None
        if if_true.dtype != if_false.dtype:
            return None  # scalar select would mix Python types per lane
        bound = None
        if if_true.dtype == np.int64:
            bound = max(columns[op.operands[1].op_id].bound,
                        columns[op.operands[2].op_id].bound)
        return _Column(
            array=np.where(cond.astype(bool), if_true, if_false),
            bound=bound,
        )

    def _batch_issue(self, op, count, columns) -> _Column:
        index_rows = columns[op.operands[0].op_id].rows()
        if len(op.operands) > 1:
            predicate_rows = columns[op.operands[1].op_id].rows()
            rows = [
                [
                    int(index_rows[k][lane])
                    if predicate_rows[k][lane] else None
                    for lane in range(self.lanes)
                ]
                for k in range(count)
            ]
        else:
            rows = [
                [int(v) for v in index_rows[k]] for k in range(count)
            ]
        return _Column(rows=rows)

    def _batch_idx_data(self, op, count, columns) -> _Column:
        """Indexed reads: data column, plus a counts column for the trace.

        The counts column is registered under the synthetic key
        ``(op_id, "counts")`` so trace assembly can find it.
        """
        issue_rows = columns[op.operands[0].op_id].rows()
        record_words = op.stream.record_words
        idx_read = self.context.idx_read
        stream = op.stream
        lanes = self.lanes
        data_rows = []
        count_rows = []
        for k in range(count):
            issue = issue_rows[k]
            data = []
            counts = []
            for lane in range(lanes):
                if issue[lane] is None:
                    data.append(0)
                    counts.append(0)
                else:
                    data.append(idx_read(stream, lane, issue[lane]))
                    counts.append(record_words)
            data_rows.append(data)
            count_rows.append(counts)
        columns[(op.op_id, "counts")] = _Column(rows=count_rows)
        return _Column(rows=data_rows)

    def _batch_comm(self, op, count, columns) -> _Column:
        lanes = self.lanes
        payload_column = columns[op.operands[0].op_id]
        source_column = columns[op.operands[1].op_id]
        sources = source_column.array()
        payload = payload_column.array()
        if sources is not None and sources.dtype == np.int64 \
                and payload is not None:
            gathered = np.take_along_axis(
                payload, np.remainder(sources, lanes), axis=1
            )
            return _Column(array=gathered, bound=payload_column.bound)
        payload_rows = payload_column.rows()
        source_rows = source_column.rows()
        return _Column(rows=[
            [
                payload_rows[k][int(source_rows[k][lane]) % lanes]
                for lane in range(lanes)
            ]
            for k in range(count)
        ])


def _detail_key(op):
    """Column key holding an op's trace detail (IDX_DATA uses counts)."""
    if op.kind is OpKind.IDX_DATA:
        return (op.op_id, "counts")
    return op.op_id
