"""Stream-level programs: the instruction stream of the stream controller.

A benchmark is a partial order of *stream tasks* — whole-stream memory
transfers and kernel invocations (paper Section 2). Dependencies express
data flow (a kernel waits for its input loads; a store waits for the
kernel that produced its data), and everything else overlaps: memory
transfers run concurrently with kernel execution, which is how stream
processors hide memory latency. Kernels serialise on the single
microcontroller.

Applications build a :class:`StreamProgram` per outer-loop iteration
(per strip / per data set); the paper's steady-state software-pipelined
execution is obtained by chaining several program instances with
cross-instance dependencies (see :meth:`StreamProgram.then`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.kernel.ir import Kernel
from repro.memory.ops import StreamMemoryOp

_task_ids = itertools.count()


@dataclass
class KernelInvocation:
    """One kernel run: graph + stream bindings + trip count.

    ``bindings`` maps each formal :class:`~repro.kernel.ir.KernelStream`
    name to a concrete :class:`~repro.core.descriptors.StreamDescriptor`.
    ``iterations`` is the lock-step trip count (the maximum over lanes);
    ``useful_iterations`` optionally gives each lane's useful count so
    load imbalance can be attributed to kernel overhead as in Figure 12.
    """

    kernel: Kernel
    bindings: dict
    iterations: int
    useful_iterations: "list | None" = None
    name: str = ""
    #: Optional hook run when the kernel starts (after stream binding,
    #: before the first iteration). Used by apps to materialise
    #: compile-time-known data layouts (e.g. the constant-geometry pair
    #: ordering of FFT stages) without affecting timing.
    on_start: "object | None" = None
    #: Optional hook run when the kernel finishes (after output drain).
    on_finish: "object | None" = None

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ExecutionError("negative iteration count")
        if not self.name:
            self.name = self.kernel.name
        for stream_name in self.kernel.streams:
            if stream_name not in self.bindings:
                raise ExecutionError(
                    f"{self.name}: stream {stream_name!r} not bound"
                )
        unknown = [b for b in self.bindings if b not in self.kernel.streams]
        if unknown:
            raise ExecutionError(
                f"{self.name}: bindings name streams the kernel does not "
                f"declare: {', '.join(sorted(unknown))}"
            )
        if self.useful_iterations is not None:
            if any(u > self.iterations for u in self.useful_iterations):
                raise ExecutionError(
                    f"{self.name}: useful iterations exceed trip count"
                )

    @property
    def mean_useful_iterations(self) -> float:
        if self.useful_iterations is None:
            return float(self.iterations)
        return sum(self.useful_iterations) / len(self.useful_iterations)


@dataclass
class StreamTask:
    """A node of the stream-level dependence graph."""

    task_id: int
    work: object  # StreamMemoryOp | KernelInvocation
    deps: list = field(default_factory=list)  # of task_id

    @property
    def is_kernel(self) -> bool:
        return isinstance(self.work, KernelInvocation)

    @property
    def name(self) -> str:
        if self.is_kernel:
            return self.work.name
        return self.work.describe()


class StreamProgram:
    """An executable partial order of stream tasks."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.tasks = []
        self._ids = set()

    def add_memory(self, op: StreamMemoryOp, deps=()) -> int:
        """Add a stream memory transfer; returns its task id."""
        return self._add(op, deps)

    def add_kernel(self, invocation: KernelInvocation, deps=()) -> int:
        """Add a kernel invocation; returns its task id."""
        return self._add(invocation, deps)

    def _add(self, work, deps) -> int:
        # Dependencies may reference tasks of an *earlier* program this
        # one will be chained after (cross-strip buffer guards); full
        # checking is deferred to validate() on the combined program.
        task = StreamTask(next(_task_ids), work, list(deps))
        self.tasks.append(task)
        self._ids.add(task.task_id)
        return task.task_id

    def then(self, other: "StreamProgram",
             join_all: bool = False) -> "StreamProgram":
        """Concatenate ``other`` after this program.

        Without ``join_all`` the two programs only serialise through
        shared resources (kernel unit, SRF port, DRAM) — the software-
        pipelined overlap of §5.3. With ``join_all`` every task of
        ``other`` additionally waits for every task of this program (a
        full barrier).
        """
        combined = StreamProgram(f"{self.name}+{other.name}")
        combined.tasks = list(self.tasks)
        combined._ids = set(self._ids)
        barrier = [t.task_id for t in self.tasks] if join_all else []
        for task in other.tasks:
            merged = StreamTask(task.task_id, task.work,
                                list(task.deps) + barrier)
            combined.tasks.append(merged)
            combined._ids.add(task.task_id)
        return combined

    def validate(self) -> None:
        seen = set()
        for task in self.tasks:
            for dep in task.deps:
                if dep not in seen:
                    raise ExecutionError(
                        f"{self.name}: task {task.name} depends on a later "
                        f"or unknown task ({dep})"
                    )
            seen.add(task.task_id)
