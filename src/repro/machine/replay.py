"""Trace-replay timing mode: record kernel data once, re-time it freely.

The paper is evaluated through *config sweeps* — the same benchmarks on
Base/ISRF/Cache machines and across timing parameter studies (address/
data separation, indexed bandwidth, network ports). Functional kernel
execution is identical at every sweep point that shares a *functional*
configuration; only the timing model (SRF arbitration, crossbar, DRAM)
differs. This module records, during one functional run, exactly the
per-iteration stream-access details the timing model consumes, and
replays them on later runs so the kernel interpreter never executes —
while the timing model still runs cycle-for-cycle, keeping replayed
:class:`~repro.machine.stats.ProgramStats` bit-identical to executed
ones.

What is recorded
----------------
:class:`~repro.machine.executor.KernelExecutor` turns each iteration's
:class:`~repro.kernel.interpreter.IterationTrace` into timed SRF events.
Only four op kinds carry data the events need (everything else —
``SEQ_READ`` pops, ``COMM`` slots — is data-free): ``SEQ_WRITE``
(per-lane values), ``IDX_ISSUE`` (per-lane record indices),
``IDX_DATA`` (per-lane word counts) and ``IDX_WRITE`` (per-lane
``(record_index, words)`` entries). A trace row is the tuple of those
details for one iteration, ordered by the ops' *program order* in
``kernel.ops`` — deliberately not by ``op_id`` (a process-global
counter) nor by schedule slot (timing-dependent), so a trace recorded
in one process under one schedule replays under any other.

Identity and invalidation
-------------------------
Traces are stored per ``(code fingerprint, benchmark, functional
config fingerprint, scale, format version)``. The functional
fingerprint (:func:`functional_fingerprint`) is the full
:func:`repro.fingerprint.config_fingerprint` minus an explicit
blacklist of *timing-only* fields (:data:`TIMING_ONLY_FIELDS`):
latencies, bandwidths, separations, network/arbitration policies,
simulation and observability knobs. The blacklist must exactly
complement :data:`repro.fingerprint.FUNCTIONAL_FIELDS` over the config
field set — an unclassified new field raises before any trace is keyed
(and fails ``repro.selfcheck`` statically), so a field can never
silently land on the wrong side of the key. Any simulator source edit
rotates the code fingerprint and orphans every stored trace.

Fault injection changes functional data (bit flips), so faulted
configs never record or replay — the processor falls back to plain
execution, mirroring the vector backend's fallback.

Usage
-----
::

    store = TraceStore(directory)
    config = isrf4_config(timing_source="replay")
    with replay.session(store, "FFT 2D", config, "small"):
        result = fft.run(config, n=16)   # records on miss, replays on hit

The first run under a given functional key records (full functional
execution; stats identical to execute mode) and saves the bundle on
clean, *verified* exit of the ``with`` block; later runs — including
under different timing-only parameters — replay. The harness wires this
up behind ``run_benchmark`` when ``--replay`` / ``REPRO_REPLAY=1`` is
set, sharing traces through the result-cache directory.
"""

from __future__ import annotations

import contextlib
import dataclasses
import gzip
import hashlib
import io
import os
import pickle
from dataclasses import dataclass, field

from repro.errors import ReplayError
from repro.fingerprint import (
    check_field_partition,
    code_fingerprint,
    config_fingerprint,
)
from repro.kernel.ops import OpKind
from repro.store import DurableStore

#: Bump whenever the on-disk layout or row semantics change; bundles
#: with any other version are quarantined, never misread.
TRACE_FORMAT_VERSION = 1

#: Timed op kinds whose events carry functional data (see module doc).
REPLAY_DATA_KINDS = (
    OpKind.SEQ_WRITE, OpKind.IDX_ISSUE, OpKind.IDX_DATA, OpKind.IDX_WRITE,
)

#: MachineConfig fields that can never change functional kernel data —
#: everything else participates in the trace key. Must exactly
#: complement :data:`repro.fingerprint.FUNCTIONAL_FIELDS`: an
#: unclassified new field fails both the runtime partition check in
#: :func:`functional_fingerprint` and the static ``repro.selfcheck``
#: fingerprint pass, so a field can never silently join (or leave)
#: the trace key.
TIMING_ONLY_FIELDS = frozenset({
    # Labels and clocking (config.name only feeds report labels).
    "name", "clock_hz",
    # Cluster resources steer the modulo schedule, not the data; trace
    # rows are keyed by program order, which no schedule can reorder.
    "alus_per_cluster", "dividers_per_cluster",
    # SRF/indexed timing parameters.
    "subarrays_per_bank", "srf_sequential_latency", "stream_buffer_words",
    "address_fifo_words", "inlane_indexed_bandwidth",
    "crosslane_indexed_bandwidth", "inlane_indexed_latency",
    "crosslane_indexed_latency", "crosslane_ports_per_bank",
    "inlane_addr_data_separation", "crosslane_addr_data_separation",
    "crosslane_network", "shared_interlane_network", "indexed_arbitration",
    # Simulation knobs (all proven stats-inert elsewhere).
    "backend", "timing_source", "timing_engine", "deadlock_cycles",
    "fast_forward", "sanitize",
    # Observability (read-only probes by construction).
    "trace", "trace_path", "trace_buffer_events", "metrics_level",
    "profile_sample_period",
    # Word protection is inert without faults, and faulted configs never
    # replay (the fault_* fields themselves stay functional).
    "srf_protection", "memory_protection",
    # Memory-system timing.
    "dram_bandwidth_bytes_per_s", "dram_latency_cycles", "dram_banks",
    "dram_row_words", "dram_row_miss_penalty",
    # Cache timing (has_cache itself is functional: apps branch on it).
    "cache_bytes", "cache_associativity", "cache_banks",
    "cache_bandwidth_bytes_per_s", "cache_line_words", "cache_hit_latency",
})


def functional_fingerprint(config) -> str:
    """Deterministic text form of the *functional* config fields.

    Two configs with equal functional fingerprints produce identical
    kernel data on every benchmark, so they can share one recorded
    trace (e.g. ISRF1 and ISRF4, which differ only in name and indexed
    bandwidths). The blacklist must exactly complement
    :data:`repro.fingerprint.FUNCTIONAL_FIELDS` over the MachineConfig
    field set (:func:`repro.fingerprint.check_field_partition`): a
    stale or unclassified field raises — a renamed field must not
    silently widen the key, and a new field must be classified before
    any trace can be recorded under it.
    """
    problems = check_field_partition(TIMING_ONLY_FIELDS)
    if problems:
        raise ReplayError(
            "MachineConfig field classification broken: "
            + "; ".join(problems)
        )
    fields = dataclasses.asdict(config)
    functional = [
        (name, value) for name, value in fields.items()
        if name not in TIMING_ONLY_FIELDS
    ]
    return repr(sorted(functional))


def copy_detail(kind: OpKind, detail):
    """Deep-copy one recorded detail so SRF machinery cannot alias it.

    Timed events hand detail lists straight to ports and indexed
    streams; without a copy per use, a replayed (or recorded) row could
    be mutated by the first run that consumes it.
    """
    if detail is None:
        return None
    if kind is OpKind.IDX_WRITE:
        return [
            None if entry is None else (entry[0], list(entry[1]))
            for entry in detail
        ]
    return list(detail)


def invocation_signature(invocation) -> tuple:
    """Program-order data-bearing op kinds of an invocation's kernel."""
    return tuple(
        op.kind.value
        for op in invocation.kernel.stream_ops(*REPLAY_DATA_KINDS)
    )


# ----------------------------------------------------------------------
# Trace data model
# ----------------------------------------------------------------------
@dataclass
class InvocationTrace:
    """Recorded stream data of one kernel invocation.

    ``rows[i][j]`` is the detail of the ``j``-th data-bearing op (in
    ``kernel.ops`` program order, kinds in ``op_kinds``) on iteration
    ``i``. ``kernel_name``/``iterations``/``op_kinds`` double as the
    replay-time compatibility check.
    """

    kernel_name: str
    iterations: int
    op_kinds: tuple
    rows: list = field(default_factory=list)


@dataclass
class ProgramTrace:
    """Traces of one :class:`StreamProgram` run, keyed by task index.

    Task *index* (position in ``program.tasks``), not ``task_id``: ids
    come from a process-global counter and differ between the recording
    and the replaying process. Indexing by position is stable because a
    functionally identical run builds an identical task list.
    """

    name: str
    task_count: int
    invocations: dict = field(default_factory=dict)


@dataclass
class TraceBundle:
    """Everything one benchmark run recorded, in ``run_program`` order."""

    version: int
    benchmark: str
    scale: str
    programs: list = field(default_factory=list)


# ----------------------------------------------------------------------
# On-disk store
# ----------------------------------------------------------------------
def default_trace_dir() -> str:
    """``<result cache dir>/traces`` — traces ride along with results."""
    # Imported lazily: the harness is a client of the machine layer
    # everywhere else, and the dependency must not become circular at
    # import time.
    from repro.harness.resultcache import default_cache_dir

    return os.path.join(default_cache_dir(), "traces")


class TraceStore:
    """Gzip-pickle codec over a :class:`~repro.store.DurableStore`.

    Same durability story as the result cache — entries journaled in a
    write-ahead manifest, SHA-256-verified on read, quarantined
    (bounded, ``*.bad``) when torn or undecodable, crash-recovered —
    because it *is* the same code path. Bundles are gzip-compressed:
    trace rows are highly repetitive.
    """

    def __init__(self, directory: "str | None" = None):
        self.directory = directory or default_trace_dir()
        self._store = DurableStore(self.directory, suffix=".trace.gz")

    # ------------------------------------------------------------------
    def key(self, benchmark: str, config, scale: str) -> str:
        """Stable key for one (benchmark, functional config, scale)."""
        payload = "\n".join([
            code_fingerprint(), str(TRACE_FORMAT_VERSION), benchmark,
            functional_fingerprint(config), scale,
        ])
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return self._store.path(key)

    # ------------------------------------------------------------------
    def load(self, benchmark: str, config, scale: str):
        """Stored :class:`TraceBundle`, or None on miss / bad entry."""
        key = self.key(benchmark, config, scale)
        data = self._store.get_bytes(key)
        if data is None:
            return None  # plain miss (or quarantined torn entry)
        try:
            bundle = pickle.loads(gzip.decompress(data))
        except Exception:
            self._store.quarantine(key)
            return None  # undecodable despite valid checksum: re-record
        if (not isinstance(bundle, TraceBundle)
                or bundle.version != TRACE_FORMAT_VERSION):
            self._store.quarantine(key)
            return None  # foreign or stale format: re-record
        return bundle

    def save(self, key: str, bundle: TraceBundle) -> None:
        """Store a bundle; failures to write are non-fatal."""
        try:
            buffer = io.BytesIO()
            with gzip.GzipFile(
                fileobj=buffer, mode="wb", compresslevel=1, mtime=0,
            ) as handle:
                pickle.dump(
                    bundle, handle, protocol=pickle.HIGHEST_PROTOCOL
                )
            data = buffer.getvalue()
        except Exception:
            return
        self._store.put_bytes(key, data)

    def stats(self) -> dict:
        """Entry/quarantine counts (surfaced in harness ``--json``)."""
        return self._store.stats()


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------
class ReplaySession:
    """One benchmark run's recording or replaying context.

    Mode is decided once, at construction: ``"replay"`` when the store
    already holds a bundle for the key, else ``"record"``. The
    processor consults the active session per ``run_program`` call;
    program order is the correlation axis (a functionally identical run
    issues the same programs in the same order).
    """

    def __init__(self, store: TraceStore, benchmark: str, config,
                 scale: str):
        self.store = store
        self.benchmark = benchmark
        self.scale = scale
        self.key = store.key(benchmark, config, scale)
        bundle = store.load(benchmark, config, scale)
        if bundle is not None:
            self.mode = "replay"
            self.bundle = bundle
        else:
            self.mode = "record"
            self.bundle = TraceBundle(
                version=TRACE_FORMAT_VERSION, benchmark=benchmark,
                scale=scale,
            )
        self._cursor = 0

    @property
    def replaying(self) -> bool:
        return self.mode == "replay"

    def begin_program(self, program) -> ProgramTrace:
        """The trace to record into / replay from for one program run."""
        if not self.replaying:
            trace = ProgramTrace(
                name=program.name, task_count=len(program.tasks),
            )
            self.bundle.programs.append(trace)
            return trace
        if self._cursor >= len(self.bundle.programs):
            raise ReplayError(
                f"{self.benchmark}: trace has {len(self.bundle.programs)} "
                f"recorded programs but the run asked for more"
            )
        trace = self.bundle.programs[self._cursor]
        self._cursor += 1
        # Names are not compared: apps embed the config label (a
        # timing-only field) in program names, and sharing one trace
        # across timing variants is the whole point. Shape and the
        # per-invocation kernel/iteration/signature checks guard
        # against genuine misalignment.
        if trace.task_count != len(program.tasks):
            raise ReplayError(
                f"{self.benchmark}: recorded program "
                f"{trace.name!r} has {trace.task_count} tasks; this run's "
                f"{program.name!r} has {len(program.tasks)}"
            )
        return trace

    def save(self) -> None:
        """Persist the recorded bundle (no-op when replaying)."""
        if not self.replaying:
            self.store.save(self.key, self.bundle)


def begin_invocation_record(program_trace: ProgramTrace, task_index: int,
                            invocation) -> InvocationTrace:
    """Open the recording slot for one kernel invocation."""
    trace = InvocationTrace(
        kernel_name=invocation.name,
        iterations=invocation.iterations,
        op_kinds=invocation_signature(invocation),
    )
    program_trace.invocations[task_index] = trace
    return trace


def invocation_replay(program_trace: ProgramTrace, task_index: int,
                      invocation) -> InvocationTrace:
    """The recorded trace for one kernel invocation, fully validated."""
    trace = program_trace.invocations.get(task_index)
    if trace is None:
        raise ReplayError(
            f"{invocation.name}: no recorded trace for task "
            f"{task_index} of program {program_trace.name!r}"
        )
    signature = invocation_signature(invocation)
    if (trace.kernel_name != invocation.name
            or trace.iterations != invocation.iterations
            or tuple(trace.op_kinds) != signature):
        raise ReplayError(
            f"{invocation.name}: recorded trace (kernel "
            f"{trace.kernel_name!r}, {trace.iterations} iterations, "
            f"{len(trace.op_kinds)} data ops) does not match this "
            f"invocation ({invocation.iterations} iterations, "
            f"{len(signature)} data ops)"
        )
    return trace


# ----------------------------------------------------------------------
# Active-session plumbing
# ----------------------------------------------------------------------
_active_session: "ReplaySession | None" = None


def active_session() -> "ReplaySession | None":
    """The session the current benchmark run records into / replays from."""
    return _active_session


@contextlib.contextmanager
def session(store: TraceStore, benchmark: str, config, scale: str):
    """Scope one benchmark run's recording/replaying.

    On a trace miss the body runs in record mode and the bundle is
    saved only when the body exits cleanly — an unverified or crashed
    run never publishes a trace. Sessions do not nest: one session
    covers one benchmark run end to end.
    """
    global _active_session
    if _active_session is not None:
        raise ReplayError("replay sessions do not nest")
    sess = ReplaySession(store, benchmark, config, scale)
    _active_session = sess
    try:
        yield sess
    finally:
        _active_session = None
    sess.save()
