"""The top-level stream processor simulator.

Ties the substrates together exactly as in Figure 2 / Figure 8 of the
paper: N lanes of SRF bank + compute cluster, a stream memory system
sharing the SRF port, optional cache, and a single kernel
microcontroller. :meth:`StreamProcessor.run_program` executes a
stream-level task graph cycle by cycle:

* ready memory transfers are issued immediately and proceed concurrently
  (latency hiding, §2);
* kernels run one at a time on the cluster array via
  :class:`~repro.machine.executor.KernelExecutor`;
* cycles with no kernel running are charged to *memory stall* when
  transfers are in flight (Figure 12's category), else to idle.

The processor is long-lived: benchmarks allocate SRF space and main
memory once, then run per-strip programs back to back, which is how the
paper's "software pipelined loops" steady state is measured.
"""

from __future__ import annotations

from repro.config.machine import MachineConfig
from repro.core.srf import StreamRegisterFile
from repro.errors import DeadlockError
from repro.faults import (
    BitFlipInjector,
    DelaySchedule,
    DropSchedule,
    FaultPlan,
)
from repro.kernel.ir import Kernel
from repro.kernel.resources import ClusterResources
from repro.kernel.schedule import StaticSchedule
from repro.kernel.scheduler import ModuloScheduler
from repro.machine import replay
from repro.machine.diagnostics import build_deadlock_report
from repro.machine.executor import KernelExecutor
from repro.machine.program import StreamProgram
from repro.machine.stats import FaultStats, ProgramStats
from repro.memory.controller import MemoryController
from repro.memory.mainmem import MainMemory
from repro.observe.observer import Observer
from repro.observe.observer import register as _register_observer

#: Abort knob: a program making no forward progress for this many cycles
#: is declared deadlocked (a bug in the program or the model). Used when
#: :attr:`MachineConfig.deadlock_cycles` is None.
DEADLOCK_CYCLES = 200_000


class StreamProcessor:
    """A complete simulated machine built from a :class:`MachineConfig`."""

    #: Component class hooks: the columnar timing engine
    #: (:mod:`repro.machine.columnar`) substitutes calendar-queue /
    #: batch-stepping variants without re-wiring the machine.
    SRF_CLS = StreamRegisterFile
    EXECUTOR_CLS = KernelExecutor
    #: Which timing engine this processor class implements
    #: (:attr:`MachineConfig.timing_engine`).
    engine = "object"
    #: Whether :meth:`run_program` batch-steps drain windows (stretches
    #: where only the memory controller and SRF need real per-cycle
    #: ticks while the executor provably just counts cycles).
    _drain_windows = False

    def __init__(self, config: MachineConfig):
        config.validate()
        self.config = config
        self.srf = self.SRF_CLS(config)
        self.memory = MainMemory(row_words=config.dram_row_words)
        self.controller = MemoryController(config, self.srf, self.memory)
        self.scheduler = ModuloScheduler(ClusterResources.from_config(config))
        self.cycle = 0
        self._schedule_cache = {}
        #: Machine-lifetime fault counters; per-program deltas land in
        #: each run's ``ProgramStats.faults``.
        self.fault_stats = FaultStats()
        self._install_faults(config)
        self._install_observer(config)
        self._install_sanitizer(config)

    def _install_sanitizer(self, config: MachineConfig) -> None:
        """Attach the debug invariant checker (usually None).

        Like the fault and observability layers, a machine built with
        ``sanitize=False`` carries no sanitizer state at all, and a
        sanitized run's stats are bit-identical to an unsanitized one —
        every check is a read-only probe.
        """
        self._sanitizer = None
        if config.sanitize:
            # Imported lazily: repro.analyze is a client of the machine
            # layer everywhere else, and the dependency must not become
            # circular at import time.
            from repro.analyze.sanitize import MachineSanitizer

            self._sanitizer = MachineSanitizer(self.srf)

    def _install_observer(self, config: MachineConfig) -> None:
        """Wire the configured observability bundle in (usually None).

        Observation never changes simulated behaviour: every hook is a
        read-only probe, and with the knobs at their defaults the
        machine carries no observability state at all.
        """
        self.observer = Observer.from_config(config)
        self._tracer = None
        self._profiler = None
        if self.observer is None:
            return
        _register_observer(self.observer)
        self._tracer = self.observer.tracer
        self._profiler = self.observer.profiler
        self.srf.install_observer(self.observer)
        self.srf.address_network.install_observer(self.observer)
        self.srf.return_network.install_observer(self.observer)
        self.controller.install_observer(self.observer)

    def _install_faults(self, config: MachineConfig) -> None:
        """Wire the configured fault plan into the components (if any)."""
        plan = FaultPlan.from_config(config)
        self._faults_enabled = plan is not None
        if plan is None:
            return
        stats = self.fault_stats
        self.srf.install_faults(
            injector=(
                BitFlipInjector(plan.srf_flips, config.srf_protection, stats)
                if plan.srf_flips else None
            ),
            drop_schedule=(
                DropSchedule(plan.crossbar_drops)
                if plan.crossbar_drops else None
            ),
        )
        self.controller.install_faults(
            injector=(
                BitFlipInjector(
                    plan.dram_flips, config.memory_protection, stats
                )
                if plan.dram_flips else None
            ),
            delay_schedule=(
                DelaySchedule(plan.memory_delays, stats)
                if plan.memory_delays else None
            ),
        )

    # ------------------------------------------------------------------
    def schedule_kernel(self, kernel: Kernel) -> StaticSchedule:
        """Schedule (and cache) a kernel with this machine's separations.

        The cache keys on the kernel object itself (kernels hash by
        identity), keeping a strong reference for the processor's
        lifetime. Keying on ``id(kernel)`` would silently hand a new
        kernel that reuses a collected kernel's address the *wrong*
        cached schedule.
        """
        key = (
            kernel,
            self.config.inlane_addr_data_separation,
            self.config.crosslane_addr_data_separation,
        )
        if key not in self._schedule_cache:
            self._schedule_cache[key] = self.scheduler.schedule(
                kernel,
                inlane_separation=self.config.inlane_addr_data_separation,
                crosslane_separation=self.config.crosslane_addr_data_separation,
                stream_capacity_words=self.config.stream_buffer_words,
            )
        return self._schedule_cache[key]

    @property
    def deadlock_limit(self) -> int:
        """Effective no-progress abort threshold for this machine."""
        if self.config.deadlock_cycles is not None:
            return self.config.deadlock_cycles
        return DEADLOCK_CYCLES

    # ------------------------------------------------------------------
    def run_program(self, program: StreamProgram) -> ProgramStats:
        """Execute a stream program to completion; returns its stats.

        The loop is event-aware: task scans rerun only when a completion
        can have changed readiness, and stretches of cycles in which no
        component can change state (DRAM latency windows, bandwidth
        credit refills, kernel startup with quiescent stream units) are
        skipped in bulk via the components' ``next_event_cycle`` /
        ``fast_forward`` protocol. Stats are bit-identical to per-cycle
        stepping (``MachineConfig.fast_forward=False``).
        """
        program.validate()
        # Trace-replay wiring (repro.machine.replay): when the config
        # selects replay timing and a session is active, this program
        # either records each kernel's stream data or is re-timed from
        # the recorded trace. Faulted runs always execute (bit flips
        # change functional data). Invocations correlate by task
        # *index* — task ids are process-global and unstable.
        replay_session = None
        program_trace = None
        task_index = {}
        if (self.config.timing_source == "replay"
                and not self.config.faults_enabled):
            replay_session = replay.active_session()
        if replay_session is not None:
            program_trace = replay_session.begin_program(program)
            task_index = {
                t.task_id: i for i, t in enumerate(program.tasks)
            }
        stats = ProgramStats(name=program.name)
        start_cycle = self.cycle
        start_traffic = self.controller.offchip_traffic_words
        fault_snapshot = self.fault_stats.snapshot()
        drop_snapshot = self.srf.address_network.stats.dropped_routes
        limit = self.deadlock_limit
        use_fast_forward = self.config.fast_forward
        tracer = self._tracer
        profiler = self._profiler
        if tracer is not None:
            tracer.begin(
                "processor", f"program:{program.name}", self.cycle,
                tasks=len(program.tasks),
            )

        completed = set()
        running = None  # (task, executor, srf-stat snapshot)
        mem_waiting = [t for t in program.tasks if not t.is_kernel]
        kernel_waiting = [t for t in program.tasks if t.is_kernel]
        mem_inflight = []  # issued memory tasks not yet complete
        remaining_count = len(program.tasks)
        retired_ops = self.controller.completed_ops
        scan_needed = True
        last_progress_cycle = self.cycle

        while remaining_count:
            progressed = False

            # Readiness only changes when `completed` grows (or at the
            # start), so the dependence scans are event-driven.
            if scan_needed:
                # Issue every ready memory transfer, in program order.
                if mem_waiting:
                    held_back = []
                    for task in mem_waiting:
                        if all(dep in completed for dep in task.deps):
                            self.controller.issue(task.work, self.cycle)
                            mem_inflight.append(task)
                            progressed = True
                        else:
                            held_back.append(task)
                    mem_waiting = held_back
                # Start the next ready kernel (one at a time).
                if running is None:
                    for position, task in enumerate(kernel_waiting):
                        if all(dep in completed for dep in task.deps):
                            schedule = self.schedule_kernel(task.work.kernel)
                            record_to = replay_from = None
                            if program_trace is not None:
                                index = task_index[task.task_id]
                                if replay_session.replaying:
                                    replay_from = replay.invocation_replay(
                                        program_trace, index, task.work
                                    )
                                else:
                                    record_to = (
                                        replay.begin_invocation_record(
                                            program_trace, index, task.work
                                        )
                                    )
                            executor = self.EXECUTOR_CLS(
                                self.config, self.srf, task.work, schedule,
                                observer=self.observer,
                                record_to=record_to,
                                replay_from=replay_from,
                            )
                            if tracer is not None:
                                tracer.begin(
                                    "processor", f"kernel:{task.work.name}",
                                    self.cycle, ii=schedule.ii,
                                    iterations=task.work.iterations,
                                )
                            running = (task, executor, self._srf_snapshot())
                            del kernel_waiting[position]
                            progressed = True
                            break
                scan_needed = False

            # Fast-forward across provably inert cycles.
            if use_fast_forward and (
                running is None or running[1].startup_remaining > 0
            ):
                skip = self._fast_forward_window(
                    running, progressed, last_progress_cycle, limit
                )
                if skip > 0:
                    self.controller.fast_forward(skip)
                    self.srf.fast_forward(skip)
                    if running is None:
                        if self.controller.busy:
                            stats.memory_stall_cycles += skip
                            if profiler is not None:
                                profiler.sample_window(
                                    self.cycle, skip, "memory_stall"
                                )
                        else:
                            stats.idle_cycles += skip
                            if profiler is not None:
                                profiler.sample_window(
                                    self.cycle, skip, "idle"
                                )
                    else:
                        running[1].fast_forward(skip)
                        if profiler is not None:
                            profiler.sample_window(
                                self.cycle, skip, "kernel_startup"
                            )
                    if progressed:
                        last_progress_cycle = self.cycle + 1
                    self.cycle += skip
                    if self.cycle - last_progress_cycle > limit:
                        raise self._deadlock(
                            program, limit, remaining_count,
                            mem_waiting, kernel_waiting, running, completed,
                        )
                    continue
            elif (
                use_fast_forward and running is not None
                and not self._drain_windows
                and running[1].steady_skippable
            ):
                # (Drain-window engines fold this skip into the drain
                # block below — its event-horizon jump covers exactly
                # these cycles without re-deriving the quiet window.)
                # Steady-state skip inside a running kernel (vector
                # backend or trace replay): stretches where the executor
                # provably just counts cycles between software-pipeline
                # events and no other component can change state.
                skip = self._steady_forward_window(
                    running[1], progressed, last_progress_cycle, limit
                )
                if skip > 0:
                    self.controller.fast_forward(skip)
                    self.srf.fast_forward(skip)
                    running[1].fast_forward_steady(skip)
                    if profiler is not None:
                        profiler.sample_window(self.cycle, skip, "kernel")
                    if progressed:
                        last_progress_cycle = self.cycle + 1
                    self.cycle += skip
                    if self.cycle - last_progress_cycle > limit:
                        raise self._deadlock(
                            program, limit, remaining_count,
                            mem_waiting, kernel_waiting, running, completed,
                        )
                    continue

            # Drain window (columnar engine): a stretch of cycles where
            # the executor provably only counts — startup countdown,
            # quiet software-pipeline gaps, or a head event stalled on
            # fills with known due cycles — while the memory controller
            # and SRF still need real ticks. Tick those two in a tight
            # loop and charge the executor in bulk; bit-identical to
            # per-cycle stepping because a skipped executor step could
            # neither fire events, issue iterations, carry a comm, nor
            # finish the kernel. The loop breaks the moment a memory op
            # completes so dependent tasks issue on the same cycle as
            # per-cycle stepping would.
            if (
                self._drain_windows and use_fast_forward
                and running is not None
            ):
                executor = running[1]
                startup = executor.startup_remaining
                if startup > 0:
                    window = startup
                    mode = 0
                else:
                    quiet = executor.next_quiet_cycles()
                    if quiet > 0:
                        window = quiet
                        mode = 1
                    else:
                        window = executor.stall_window(self.cycle)
                        mode = 2
                effective = (
                    self.cycle + 1 if progressed else last_progress_cycle
                )
                window = min(window, effective + limit + 1 - self.cycle)
                if window > 1:
                    controller = self.controller
                    srf = self.srf
                    base_ops = controller.completed_ops
                    cycle0 = self.cycle
                    bound = cycle0 + window
                    stepped = 0
                    while stepped < window:
                        c = cycle0 + stepped
                        # Event-horizon jump: when neither the SRF nor
                        # the memory controller can change state before
                        # some future cycle (their documented
                        # next_event_cycle / fast_forward contract),
                        # skip straight to the earlier of that event
                        # and the window end instead of ticking inert
                        # cycles one by one. In-flight SRF completions
                        # keep `srf.idle` False, so the steady branch
                        # above can never capture these stretches.
                        srf_next = srf.next_event_cycle(c)
                        if srf_next is None or srf_next > c:
                            mem_next = controller.next_event_cycle(c)
                            if mem_next is None or mem_next > c:
                                nxt = bound
                                if srf_next is not None and srf_next < nxt:
                                    nxt = srf_next
                                if mem_next is not None and mem_next < nxt:
                                    nxt = mem_next
                                if nxt > c:
                                    skip = nxt - c
                                    controller.fast_forward(skip)
                                    srf.fast_forward(skip)
                                    stepped += skip
                                    continue
                        controller.tick(c)
                        srf.tick(c, False)
                        stepped += 1
                        if controller.completed_ops != base_ops:
                            break
                    if mode == 0:
                        executor.fast_forward(stepped)
                    elif mode == 1:
                        executor.fast_forward_steady(stepped)
                    else:
                        executor.fast_forward_stalled(stepped)
                    if progressed:
                        last_progress_cycle = cycle0 + 1
                    self.cycle = cycle0 + stepped
                    if controller.completed_ops != base_ops:
                        # Retire completed memory ops (mirrors the
                        # per-cycle retirement block below).
                        retired_ops = controller.completed_ops
                        still_inflight = []
                        for task in mem_inflight:
                            if controller.is_complete(task.work.op_id):
                                completed.add(task.task_id)
                                remaining_count -= 1
                                scan_needed = True
                            else:
                                still_inflight.append(task)
                        mem_inflight = still_inflight
                        last_progress_cycle = self.cycle
                    elif self.cycle - last_progress_cycle > limit:
                        raise self._deadlock(
                            program, limit, remaining_count,
                            mem_waiting, kernel_waiting, running, completed,
                        )
                    continue

            # One machine cycle.
            if profiler is not None:
                if running is not None:
                    profiler.sample(
                        self.cycle,
                        "kernel_startup"
                        if running[1].startup_remaining > 0 else "kernel",
                    )
                elif self.controller.busy:
                    profiler.sample(self.cycle, "memory_stall")
                else:
                    profiler.sample(self.cycle, "idle")
            self.controller.tick(self.cycle)
            comm_busy = False
            if running is not None:
                comm_busy = running[1].step()
            self.srf.tick(self.cycle, comm_busy)
            if self._sanitizer is not None:
                self._sanitizer.check(self.cycle)

            if running is None:
                if self.controller.busy:
                    stats.memory_stall_cycles += 1
                else:
                    stats.idle_cycles += 1

            # Retire finished work.
            if running is not None and running[1].finished:
                task, executor, snapshot = running
                self._finish_kernel(executor, snapshot)
                stats.kernel_runs.append(executor.stats)
                if tracer is not None:
                    tracer.end(
                        "processor", f"kernel:{task.work.name}",
                        self.cycle + 1,
                        srf_stall_cycles=executor.stats.srf_stall_cycles,
                    )
                completed.add(task.task_id)
                remaining_count -= 1
                running = None
                progressed = True
                scan_needed = True
            if mem_inflight and self.controller.completed_ops != retired_ops:
                retired_ops = self.controller.completed_ops
                still_inflight = []
                for task in mem_inflight:
                    if self.controller.is_complete(task.work.op_id):
                        completed.add(task.task_id)
                        remaining_count -= 1
                        progressed = True
                        scan_needed = True
                    else:
                        still_inflight.append(task)
                mem_inflight = still_inflight

            self.cycle += 1
            if progressed:
                last_progress_cycle = self.cycle
            elif self.cycle - last_progress_cycle > limit:
                raise self._deadlock(
                    program, limit, remaining_count,
                    mem_waiting, kernel_waiting, running, completed,
                )

        stats.total_cycles = self.cycle - start_cycle
        stats.offchip_words = (
            self.controller.offchip_traffic_words - start_traffic
        )
        if self._faults_enabled:
            stats.faults = self.fault_stats.delta(fault_snapshot)
            stats.faults.dropped_grants = (
                self.srf.address_network.stats.dropped_routes - drop_snapshot
            )
        if tracer is not None:
            tracer.end(
                "processor", f"program:{program.name}", self.cycle,
                total_cycles=stats.total_cycles,
            )
        if self.observer is not None and self.observer.metrics is not None:
            stats.metrics = self.observer.metrics.collect()
        return stats

    def _deadlock(self, program: StreamProgram, limit: int,
                  remaining_count: int, mem_waiting, kernel_waiting,
                  running, completed) -> DeadlockError:
        """Build the watchdog exception, with waiting-on forensics."""
        report = build_deadlock_report(
            program.name, self.cycle,
            mem_waiting=mem_waiting, kernel_waiting=kernel_waiting,
            running=running, completed=completed,
            controller=self.controller, srf=self.srf,
        )
        return DeadlockError(
            f"{program.name}: no progress for {limit} "
            f"cycles ({remaining_count} tasks left)",
            report=report,
        )

    def _fast_forward_window(self, running, progressed: bool,
                             last_progress_cycle: int, limit: int) -> int:
        """Cycles safely skippable from ``self.cycle``, possibly 0.

        A cycle is skippable when neither the memory controller nor the
        SRF can change state during it and any running kernel is still
        in its fixed startup countdown — ticking it would only bump
        counters, which the caller charges in bulk. The window is capped
        at the deadlock horizon so a stuck program aborts on exactly the
        same cycle as per-cycle stepping.
        """
        cycle = self.cycle
        mem_next = self.controller.next_event_cycle(cycle)
        if mem_next == cycle:
            return 0
        srf_next = self.srf.next_event_cycle(cycle)
        if srf_next is not None and srf_next <= cycle:
            return 0
        effective_progress = cycle + 1 if progressed else last_progress_cycle
        horizon = effective_progress + limit  # last no-progress tick
        candidates = [horizon + 1]
        if mem_next is not None:
            candidates.append(mem_next)
        if srf_next is not None:
            candidates.append(srf_next)
        if running is not None:
            candidates.append(cycle + running[1].startup_remaining)
        return max(0, min(candidates) - cycle)

    def _steady_forward_window(self, executor, progressed: bool,
                               last_progress_cycle: int, limit: int) -> int:
        """Cycles skippable inside a running kernel's steady state.

        A cycle qualifies when the executor's next step would be *quiet*
        (no issue, no due event — see
        :meth:`KernelExecutor.next_quiet_cycles`) and neither the memory
        controller nor the SRF can change state, so every skipped cycle
        would only have bumped counters. Capped at the deadlock horizon
        so a stuck program aborts on exactly the same cycle as per-cycle
        stepping.
        """
        quiet = executor.next_quiet_cycles()
        if quiet <= 0:
            return 0
        cycle = self.cycle
        mem_next = self.controller.next_event_cycle(cycle)
        if mem_next == cycle:
            return 0
        srf_next = self.srf.next_event_cycle(cycle)
        if srf_next is not None and srf_next <= cycle:
            return 0
        effective_progress = cycle + 1 if progressed else last_progress_cycle
        horizon = effective_progress + limit  # last no-progress tick
        candidates = [horizon + 1, cycle + quiet]
        if mem_next is not None:
            candidates.append(mem_next)
        if srf_next is not None:
            candidates.append(srf_next)
        return max(0, min(candidates) - cycle)

    def run_programs(self, programs) -> list:
        """Run several programs back to back; returns their stats."""
        return [self.run_program(program) for program in programs]

    # ------------------------------------------------------------------
    def _srf_snapshot(self) -> tuple:
        s = self.srf.stats
        return (
            s.sequential_words, s.inlane_grants, s.crosslane_grants,
            s.indexed_write_grants,
        )

    def _finish_kernel(self, executor: KernelExecutor, snapshot) -> None:
        s = self.srf.stats
        executor.stats.sequential_words = s.sequential_words - snapshot[0]
        executor.stats.inlane_words = s.inlane_grants - snapshot[1]
        executor.stats.crosslane_words = s.crosslane_grants - snapshot[2]
        executor.stats.indexed_write_words = (
            s.indexed_write_grants - snapshot[3]
        )
