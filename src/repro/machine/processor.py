"""The top-level stream processor simulator.

Ties the substrates together exactly as in Figure 2 / Figure 8 of the
paper: N lanes of SRF bank + compute cluster, a stream memory system
sharing the SRF port, optional cache, and a single kernel
microcontroller. :meth:`StreamProcessor.run_program` executes a
stream-level task graph cycle by cycle:

* ready memory transfers are issued immediately and proceed concurrently
  (latency hiding, §2);
* kernels run one at a time on the cluster array via
  :class:`~repro.machine.executor.KernelExecutor`;
* cycles with no kernel running are charged to *memory stall* when
  transfers are in flight (Figure 12's category), else to idle.

The processor is long-lived: benchmarks allocate SRF space and main
memory once, then run per-strip programs back to back, which is how the
paper's "software pipelined loops" steady state is measured.
"""

from __future__ import annotations

from repro.config.machine import MachineConfig
from repro.core.srf import StreamRegisterFile
from repro.errors import ExecutionError
from repro.kernel.ir import Kernel
from repro.kernel.resources import ClusterResources
from repro.kernel.schedule import StaticSchedule
from repro.kernel.scheduler import ModuloScheduler
from repro.machine.executor import KernelExecutor
from repro.machine.program import StreamProgram
from repro.machine.stats import ProgramStats
from repro.memory.controller import MemoryController
from repro.memory.mainmem import MainMemory

#: Abort knob: a program making no forward progress for this many cycles
#: is declared deadlocked (a bug in the program or the model).
DEADLOCK_CYCLES = 200_000


class StreamProcessor:
    """A complete simulated machine built from a :class:`MachineConfig`."""

    def __init__(self, config: MachineConfig):
        config.validate()
        self.config = config
        self.srf = StreamRegisterFile(config)
        self.memory = MainMemory(row_words=config.dram_row_words)
        self.controller = MemoryController(config, self.srf, self.memory)
        self.scheduler = ModuloScheduler(ClusterResources.from_config(config))
        self.cycle = 0
        self._schedule_cache = {}

    # ------------------------------------------------------------------
    def schedule_kernel(self, kernel: Kernel) -> StaticSchedule:
        """Schedule (and cache) a kernel with this machine's separations."""
        key = (
            id(kernel),
            self.config.inlane_addr_data_separation,
            self.config.crosslane_addr_data_separation,
        )
        if key not in self._schedule_cache:
            self._schedule_cache[key] = self.scheduler.schedule(
                kernel,
                inlane_separation=self.config.inlane_addr_data_separation,
                crosslane_separation=self.config.crosslane_addr_data_separation,
                stream_capacity_words=self.config.stream_buffer_words,
            )
        return self._schedule_cache[key]

    # ------------------------------------------------------------------
    def run_program(self, program: StreamProgram) -> ProgramStats:
        """Execute a stream program to completion; returns its stats."""
        program.validate()
        stats = ProgramStats(name=program.name)
        start_cycle = self.cycle
        start_traffic = self.controller.offchip_traffic_words

        completed = set()
        issued_memory = set()
        running = None  # (task, executor, srf-stat snapshot)
        remaining = list(program.tasks)
        last_progress_cycle = self.cycle

        while remaining or running is not None:
            progressed = False

            # Issue every ready memory transfer.
            for task in remaining:
                if task.is_kernel or task.task_id in issued_memory:
                    continue
                if all(dep in completed for dep in task.deps):
                    self.controller.issue(task.work, self.cycle)
                    issued_memory.add(task.task_id)
                    progressed = True

            # Start the next ready kernel (one at a time).
            if running is None:
                for task in remaining:
                    if not task.is_kernel:
                        continue
                    if all(dep in completed for dep in task.deps):
                        schedule = self.schedule_kernel(task.work.kernel)
                        executor = KernelExecutor(
                            self.config, self.srf, task.work, schedule
                        )
                        running = (task, executor, self._srf_snapshot())
                        progressed = True
                        break

            # One machine cycle.
            self.controller.tick(self.cycle)
            comm_busy = False
            if running is not None:
                comm_busy = running[1].step()
            self.srf.tick(self.cycle, comm_busy)

            if running is None:
                if self.controller.busy:
                    stats.memory_stall_cycles += 1
                elif remaining:
                    stats.idle_cycles += 1

            # Retire finished work.
            if running is not None and running[1].finished:
                task, executor, snapshot = running
                self._finish_kernel(executor, snapshot)
                stats.kernel_runs.append(executor.stats)
                completed.add(task.task_id)
                remaining.remove(task)
                running = None
                progressed = True
            for task in list(remaining):
                if not task.is_kernel and self.controller.is_complete(
                    task.work.op_id
                ):
                    completed.add(task.task_id)
                    remaining.remove(task)
                    progressed = True

            self.cycle += 1
            if progressed:
                last_progress_cycle = self.cycle
            elif self.cycle - last_progress_cycle > DEADLOCK_CYCLES:
                raise ExecutionError(
                    f"{program.name}: no progress for {DEADLOCK_CYCLES} "
                    f"cycles ({len(remaining)} tasks left)"
                )

        stats.total_cycles = self.cycle - start_cycle
        stats.offchip_words = (
            self.controller.offchip_traffic_words - start_traffic
        )
        return stats

    def run_programs(self, programs) -> list:
        """Run several programs back to back; returns their stats."""
        return [self.run_program(program) for program in programs]

    # ------------------------------------------------------------------
    def _srf_snapshot(self) -> tuple:
        s = self.srf.stats
        return (
            s.sequential_words, s.inlane_grants, s.crosslane_grants,
            s.indexed_write_grants,
        )

    def _finish_kernel(self, executor: KernelExecutor, snapshot) -> None:
        s = self.srf.stats
        executor.stats.sequential_words = s.sequential_words - snapshot[0]
        executor.stats.inlane_words = s.inlane_grants - snapshot[1]
        executor.stats.crosslane_words = s.crosslane_grants - snapshot[2]
        executor.stats.indexed_write_words = (
            s.indexed_write_grants - snapshot[3]
        )
