"""Execution statistics in the paper's reporting categories.

Figure 12 breaks benchmark execution time into four components:

* **Kernel loop body** — time in the main (software pipelined) loops;
* **SRF stall** — time stalled waiting for SRF accesses;
* **Memory stall** — time waiting for memory or cache transfers;
* **Kernel overheads** — pre/post-loop code, software-pipeline
  fill/drain, and inter-lane load imbalance.

Figure 13 reports sustained SRF bandwidth per kernel split into
sequential, in-lane indexed, and cross-lane indexed words per cycle per
cluster; Figure 11 reports off-chip traffic. The classes here hold all
of those, per kernel run and per program.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FaultStats:
    """Fault-injection and protection counters (repro.faults).

    All zero — and absent from any figure — when fault injection is
    disabled.
    """

    #: Bit-flip strikes that landed on an accessed word.
    injected: int = 0
    #: Strikes corrected in place by SEC-DED.
    corrected: int = 0
    #: Strikes detected (parity or SEC-DED double-bit).
    detected: int = 0
    #: Strikes delivered as corrupted data (silent or detected-only).
    uncorrected: int = 0
    #: Parity-triggered refetches of a struck word.
    retries: int = 0
    #: Cross-lane grants refused by a faulted network.
    dropped_grants: int = 0
    #: Memory operations whose response was delayed, and by how much.
    delayed_ops: int = 0
    delay_cycles: int = 0

    def merge(self, other: "FaultStats") -> None:
        self.injected += other.injected
        self.corrected += other.corrected
        self.detected += other.detected
        self.uncorrected += other.uncorrected
        self.retries += other.retries
        self.dropped_grants += other.dropped_grants
        self.delayed_ops += other.delayed_ops
        self.delay_cycles += other.delay_cycles

    def delta(self, since: "FaultStats") -> "FaultStats":
        """Counters accumulated since the ``since`` snapshot."""
        return FaultStats(
            injected=self.injected - since.injected,
            corrected=self.corrected - since.corrected,
            detected=self.detected - since.detected,
            uncorrected=self.uncorrected - since.uncorrected,
            retries=self.retries - since.retries,
            dropped_grants=self.dropped_grants - since.dropped_grants,
            delayed_ops=self.delayed_ops - since.delayed_ops,
            delay_cycles=self.delay_cycles - since.delay_cycles,
        )

    def snapshot(self) -> "FaultStats":
        return self.delta(FaultStats())

    @property
    def any(self) -> bool:
        return bool(
            self.injected or self.dropped_grants or self.delayed_ops
        )


@dataclass
class KernelRunStats:
    """Timing and SRF-traffic breakdown of one kernel invocation."""

    kernel_name: str
    ii: int = 0
    depth: int = 0
    iterations: int = 0
    #: Average useful iterations per lane (== iterations when balanced).
    useful_iterations: float = 0.0
    total_cycles: int = 0
    srf_stall_cycles: int = 0
    startup_cycles: int = 0
    # SRF words moved while this kernel ran (includes concurrent memory
    # stream traffic through the shared SRF port).
    sequential_words: int = 0
    inlane_words: int = 0
    crosslane_words: int = 0
    indexed_write_words: int = 0
    lanes: int = 8

    @property
    def loop_body_cycles(self) -> int:
        """Main-loop time for the *useful* work (Figure 12 category)."""
        return round(self.ii * self.useful_iterations)

    @property
    def imbalance_cycles(self) -> int:
        """Loop cycles spent keeping idle lanes in lockstep."""
        return self.ii * self.iterations - self.loop_body_cycles

    @property
    def overhead_cycles(self) -> int:
        """Everything that is neither loop body nor SRF stall."""
        return max(
            0, self.total_cycles - self.loop_body_cycles - self.srf_stall_cycles
        )

    # -- Figure 13 quantities -------------------------------------------
    def _per_cycle_per_lane(self, words: int) -> float:
        if self.total_cycles == 0:
            return 0.0
        return words / self.total_cycles / self.lanes

    @property
    def sequential_bandwidth(self) -> float:
        return self._per_cycle_per_lane(self.sequential_words)

    @property
    def inlane_bandwidth(self) -> float:
        return self._per_cycle_per_lane(self.inlane_words)

    @property
    def crosslane_bandwidth(self) -> float:
        return self._per_cycle_per_lane(self.crosslane_words)


@dataclass
class ProgramStats:
    """Whole-program (benchmark) statistics."""

    name: str = ""
    total_cycles: int = 0
    #: Cycles with no kernel running, waiting on memory/cache transfers.
    memory_stall_cycles: int = 0
    #: Cycles with no kernel running and no memory transfer in flight
    #: (dependency bubbles; normally ~0).
    idle_cycles: int = 0
    offchip_words: int = 0
    kernel_runs: list = field(default_factory=list)
    #: Fault-injection/protection counters for this run (all zero when
    #: fault injection is disabled).
    faults: FaultStats = field(default_factory=FaultStats)
    #: Observability snapshot (repro.observe): metric name ->
    #: ``{"kind": ..., "value"/...}``. Empty when ``metrics_level`` is 0,
    #: so default-config stats stay bit-identical to the seed.
    metrics: dict = field(default_factory=dict)

    @property
    def kernel_loop_body_cycles(self) -> int:
        return sum(run.loop_body_cycles for run in self.kernel_runs)

    @property
    def srf_stall_cycles(self) -> int:
        return sum(run.srf_stall_cycles for run in self.kernel_runs)

    @property
    def kernel_overhead_cycles(self) -> int:
        return sum(run.overhead_cycles for run in self.kernel_runs)

    def breakdown(self) -> dict:
        """Figure 12's four categories plus idle, in cycles."""
        return {
            "kernel_loop_body": self.kernel_loop_body_cycles,
            "srf_stall": self.srf_stall_cycles,
            "memory_stall": self.memory_stall_cycles,
            "kernel_overheads": self.kernel_overhead_cycles,
            "idle": self.idle_cycles,
        }

    def merge(self, other: "ProgramStats") -> None:
        """Accumulate another program run into this one."""
        self.total_cycles += other.total_cycles
        self.memory_stall_cycles += other.memory_stall_cycles
        self.idle_cycles += other.idle_cycles
        self.offchip_words += other.offchip_words
        self.kernel_runs.extend(other.kernel_runs)
        self.faults.merge(other.faults)
        if other.metrics:
            # Registry snapshots are cumulative per machine, so the
            # latest merged run carries the most complete view.
            self.metrics = other.metrics
