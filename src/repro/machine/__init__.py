"""Machine-level simulation: processor, kernel executor, stream programs."""

from repro.machine.diagnostics import (
    KernelBounds,
    analyze_schedule,
    diagnose_kernel_run,
    diagnose_program,
)
from repro.machine.executor import KERNEL_STARTUP_CYCLES, KernelExecutor
from repro.machine.processor import StreamProcessor
from repro.machine.columnar import (
    ColumnarProcessor,
    build_processor,
    columnar_eligible,
    engine_for,
)
from repro.machine.program import KernelInvocation, StreamProgram, StreamTask
from repro.machine.stats import KernelRunStats, ProgramStats

__all__ = [
    "KERNEL_STARTUP_CYCLES",
    "KernelBounds",
    "analyze_schedule",
    "build_processor",
    "columnar_eligible",
    "ColumnarProcessor",
    "diagnose_kernel_run",
    "diagnose_program",
    "engine_for",
    "KernelExecutor",
    "KernelInvocation",
    "KernelRunStats",
    "ProgramStats",
    "StreamProcessor",
    "StreamProgram",
    "StreamTask",
]
