"""Performance and failure diagnostics.

The paper reasons about its results in terms of *bounds* — memory-bound
Base configurations, SRF-bandwidth-bound ISRF1 kernels, recurrence-bound
sort loops, compute-bound IG datasets. This module makes the same
analysis available programmatically: given a schedule, a kernel run, or
a whole program's statistics, it reports which resource sets the pace
and by how much.

It also renders *failure* forensics: when the deadlock watchdog in
:mod:`repro.machine.processor` fires, :func:`build_deadlock_report`
captures what every stuck task is waiting on — unmet dependencies,
in-flight memory operations, SRF occupancy — so the resulting
:class:`repro.errors.DeadlockError` explains itself instead of printing
a bare cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.machine import MachineConfig
from repro.kernel.ops import ResourceClass
from repro.kernel.resources import ClusterResources, resource_usage
from repro.kernel.schedule import StaticSchedule
from repro.kernel.scheduler import min_ii_recurrence
from repro.machine.stats import KernelRunStats, ProgramStats


@dataclass
class BlockedTask:
    """One stream task that cannot proceed, and why."""

    task_id: int
    name: str
    kind: str  # "kernel" | "memory"
    #: Dependency task ids not yet completed.
    missing_deps: list = field(default_factory=list)

    def describe(self) -> str:
        deps = (
            ", ".join(str(d) for d in self.missing_deps)
            if self.missing_deps else "nothing (ready but never started)"
        )
        return f"{self.kind} task {self.task_id} '{self.name}' waiting on: {deps}"


@dataclass
class DeadlockReport:
    """Waiting-on dump attached to a :class:`repro.errors.DeadlockError`."""

    program: str
    cycle: int
    blocked: list = field(default_factory=list)  # of BlockedTask
    #: Description of the kernel on the cluster array, if one is stuck.
    running_kernel: "str | None" = None
    #: Per-op descriptions from MemoryController.inflight_report().
    inflight_memory: list = field(default_factory=list)
    #: Lines from StreamRegisterFile.occupancy_report().
    srf_occupancy: list = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"deadlock forensics for '{self.program}' at cycle {self.cycle}:"]
        if self.running_kernel:
            lines.append(f"  running kernel: {self.running_kernel}")
        if self.blocked:
            lines.append("  blocked tasks:")
            lines.extend(f"    {task.describe()}" for task in self.blocked)
        else:
            lines.append("  blocked tasks: none")
        if self.inflight_memory:
            lines.append("  in-flight memory ops:")
            lines.extend(f"    {entry}" for entry in self.inflight_memory)
        else:
            lines.append("  in-flight memory ops: none")
        if self.srf_occupancy:
            lines.append("  SRF occupancy:")
            lines.extend(f"    {entry}" for entry in self.srf_occupancy)
        return "\n".join(lines)


def build_deadlock_report(program_name: str, cycle: int, *,
                          mem_waiting=(), kernel_waiting=(), running=None,
                          completed=frozenset(), controller=None,
                          srf=None) -> DeadlockReport:
    """Assemble the waiting-on dump for a watchdog abort.

    ``mem_waiting``/``kernel_waiting`` are the processor's unissued task
    lists, ``running`` the (task, executor, snapshot) triple of an active
    kernel, ``completed`` the retired task-id set.

    Every listing is sorted (blocked tasks by task id, dependencies
    numerically, in-flight/occupancy lines lexicographically) so the
    rendered forensics are deterministic and can be golden-tested.
    """
    report = DeadlockReport(program=program_name, cycle=cycle)
    for kind, tasks in (("memory", mem_waiting), ("kernel", kernel_waiting)):
        for task in tasks:
            report.blocked.append(BlockedTask(
                task_id=task.task_id,
                name=task.name,
                kind=kind,
                missing_deps=sorted(
                    d for d in task.deps if d not in completed
                ),
            ))
    report.blocked.sort(key=lambda task: task.task_id)
    if running is not None:
        task, executor, _snapshot = running
        report.running_kernel = (
            f"task {task.task_id} '{task.name}' "
            f"(startup remaining {executor.startup_remaining})"
        )
    if controller is not None:
        report.inflight_memory = sorted(controller.inflight_report())
    if srf is not None:
        report.srf_occupancy = sorted(srf.occupancy_report())
    return report


@dataclass
class KernelBounds:
    """Lower bounds on a kernel's II, by cause."""

    kernel_name: str
    ii: int
    alu_bound: int = 0
    divider_bound: int = 0
    stream_port_bound: int = 0
    #: Per-indexed-stream address-port bound (one access/cycle/stream).
    index_port_bounds: dict = field(default_factory=dict)
    recurrence_bound: int = 0

    @property
    def index_port_bound(self) -> int:
        return max(self.index_port_bounds.values(), default=0)

    @property
    def binding_constraint(self) -> str:
        """The constraint that sets (or comes closest to) the II."""
        candidates = {
            "ALU issue": self.alu_bound,
            "divider": self.divider_bound,
            "stream-buffer ports": self.stream_port_bound,
            "indexed-stream port": self.index_port_bound,
            "loop-carried recurrence": self.recurrence_bound,
        }
        return max(candidates, key=candidates.get)

    def describe(self) -> str:
        lines = [
            f"kernel {self.kernel_name}: II={self.ii}, bound by "
            f"{self.binding_constraint}",
            f"  ALU issue        : {self.alu_bound}",
            f"  divider          : {self.divider_bound}",
            f"  stream ports     : {self.stream_port_bound}",
            f"  index ports      : {self.index_port_bound} "
            f"({', '.join(f'{k}={v}' for k, v in self.index_port_bounds.items()) or '-'})",
            f"  recurrence       : {self.recurrence_bound}",
        ]
        return "\n".join(lines)


def analyze_schedule(schedule: StaticSchedule,
                     resources: "ClusterResources | None" = None
                     ) -> KernelBounds:
    """Decompose a schedule's II into its contributing lower bounds."""
    resources = resources or ClusterResources()
    kernel = schedule.kernel
    bounds = KernelBounds(kernel_name=kernel.name, ii=schedule.ii)
    for key, used in resource_usage(kernel).items():
        if isinstance(key, tuple):
            bound = -(-used // 1)
            bounds.index_port_bounds[key[1]] = bound
            continue
        bound = -(-used // resources.count(key))
        if key is ResourceClass.ALU:
            bounds.alu_bound = bound
        elif key is ResourceClass.DIVIDER:
            bounds.divider_bound = bound
        elif key is ResourceClass.STREAM_PORT:
            bounds.stream_port_bound = bound
    bounds.recurrence_bound = min_ii_recurrence(
        kernel, schedule.inlane_separation, schedule.crosslane_separation
    )
    return bounds


@dataclass
class KernelDiagnosis:
    """One kernel run's behaviour classified."""

    stats: KernelRunStats
    classification: str
    stall_fraction: float
    overhead_fraction: float

    def describe(self) -> str:
        return (
            f"{self.stats.kernel_name}: {self.classification} "
            f"(II={self.stats.ii}, stalls {self.stall_fraction:.0%}, "
            f"overheads {self.overhead_fraction:.0%})"
        )


def diagnose_kernel_run(run: KernelRunStats,
                        stall_threshold: float = 0.10,
                        overhead_threshold: float = 0.25) -> KernelDiagnosis:
    """Classify a kernel run: loop-bound, SRF-stall-bound, or
    overhead-bound (short strips / deep pipelines)."""
    total = max(1, run.total_cycles)
    stall_fraction = run.srf_stall_cycles / total
    overhead_fraction = run.overhead_cycles / total
    if stall_fraction >= stall_threshold:
        classification = "SRF-bandwidth bound"
    elif overhead_fraction >= overhead_threshold:
        classification = "overhead bound (short strips or deep pipeline)"
    else:
        classification = "loop bound"
    return KernelDiagnosis(run, classification, stall_fraction,
                           overhead_fraction)


@dataclass
class ProgramDiagnosis:
    """A whole benchmark run's behaviour classified."""

    classification: str
    memory_fraction: float
    kernel_fraction: float
    dram_utilization: float
    kernel_diagnoses: list

    def describe(self) -> str:
        lines = [
            f"program: {self.classification} "
            f"(memory stalls {self.memory_fraction:.0%}, kernels "
            f"{self.kernel_fraction:.0%}, DRAM utilisation "
            f"{self.dram_utilization:.0%})"
        ]
        lines.extend("  " + d.describe() for d in self.kernel_diagnoses)
        return "\n".join(lines)


def diagnose_program(stats: ProgramStats, config: MachineConfig,
                     memory_threshold: float = 0.35) -> ProgramDiagnosis:
    """Classify a benchmark run as memory-bound or kernel-bound.

    ``dram_utilization`` compares moved words against the configuration's
    peak DRAM bandwidth over the run — near 1.0 means the paper's
    "constrained by memory bandwidth".
    """
    total = max(1, stats.total_cycles)
    memory_fraction = stats.memory_stall_cycles / total
    kernel_fraction = (
        stats.kernel_loop_body_cycles + stats.srf_stall_cycles
        + stats.kernel_overhead_cycles
    ) / total
    dram_utilization = stats.offchip_words / (
        config.dram_words_per_cycle * total
    )
    if memory_fraction >= memory_threshold:
        classification = "memory-bandwidth bound"
    else:
        classification = "kernel (compute/SRF) bound"
    return ProgramDiagnosis(
        classification=classification,
        memory_fraction=memory_fraction,
        kernel_fraction=kernel_fraction,
        dram_utilization=dram_utilization,
        kernel_diagnoses=[
            diagnose_kernel_run(run) for run in stats.kernel_runs
        ],
    )
