"""High-level application constructs (paper §7 future work).

"We believe that in addition to the low-level API described in section
4.7, exporting application constructs that benefit from SRF indexing
via high-level APIs within the context of sequential streaming is also
an attractive approach. This allows the programmer interface to
maintain the abstraction of linear streams while enabling the
compilation tools to automatically identify opportunities for SRF
indexing."

:class:`LookupTable` is that idea for the most common construct, the
data-dependent table lookup (§3.2): the *same* kernel code lowers to

* **in-lane indexed SRF reads** on ISRF machines — the table is
  replicated into every lane's bank once and lookups never leave the
  chip; or
* **memory gathers feeding a sequential stream** on Base/Cache
  machines — the classic reorder-through-memory fallback (cacheable on
  the Cache machine), with the gather addresses produced by a
  functional pre-pass exactly as the Rijndael baseline does.

The caller writes one kernel and one program; the lowering is picked by
the machine's capabilities.
"""

from __future__ import annotations

from repro.core.arrays import SrfArray
from repro.errors import ExecutionError
from repro.kernel.builder import KernelBuilder
from repro.kernel.ir import KernelStream, Op
from repro.machine.processor import StreamProcessor
from repro.machine.program import StreamProgram
from repro.memory.ops import gather_op


class LookupTable:
    """A lookup table that auto-selects indexed-SRF or gather lowering.

    Usage::

        table = LookupTable(proc, values, "LUT")
        b = KernelBuilder("k")
        stream = table.declare(b)            # idxl_istream OR istream
        v = table.lookup(b, stream, idx_op)  # idx_read OR seq read
        ...
        bindings, deps = table.prepare(prog, per_lane_indices, rep)

    On sequential machines the per-iteration lookup *indices* must be
    supplied to :meth:`prepare` (the gather needs its addresses up
    front); indexed machines ignore them. ``lookup`` consumes exactly
    one table access per kernel iteration in program order, so the
    gathered stream and the indexed stream see identical sequences.
    """

    def __init__(self, processor: StreamProcessor, values, name: str = "lut"):
        self.processor = processor
        self.values = list(values)
        self.name = name
        self.indexed = processor.config.supports_indexing
        lanes = processor.config.lanes
        if self.indexed:
            self.array = SrfArray(
                processor.srf, len(self.values) * lanes, name
            )
            self.array.fill_replicated(self.values)
            self.region = None
            self._gather_buffers = None
        else:
            self.array = None
            self.region = processor.memory.allocate(
                len(self.values), f"mem_{name}"
            )
            processor.memory.load_region(self.region, self.values)
            self._gather_buffers = {}

    # -- kernel side ------------------------------------------------------
    def declare(self, builder: KernelBuilder) -> KernelStream:
        """Declare this table's stream on a kernel builder."""
        if self.indexed:
            return builder.idxl_istream(self.name)
        return builder.istream(self.name)

    def lookup(self, builder: KernelBuilder, stream: KernelStream,
               index: Op, name: str = "") -> Op:
        """One table access per iteration: ``table[index]``."""
        if self.indexed:
            return builder.idx_read(stream, index, name=name)
        # Sequential lowering: the gather already fetched table[index]
        # into the stream, in iteration order.
        return builder.read(stream, name=name)

    # -- program side -----------------------------------------------------
    def prepare(self, program: StreamProgram, rep: int,
                per_lane_indices: "list | None" = None,
                deps=()) -> tuple:
        """Stage this strip's table data; returns (binding, dep_tasks).

        ``per_lane_indices`` lists, per lane, the lookup indices the
        kernel will issue this strip (one per iteration, in order) —
        required on sequential machines, ignored on indexed ones.
        """
        if self.indexed:
            return self.array.inlane_read(len(self.values)), []
        if per_lane_indices is None:
            raise ExecutionError(
                f"{self.name}: sequential machines need the lookup index "
                "trace to build the gather"
            )
        lanes = self.processor.config.lanes
        if len(per_lane_indices) != lanes:
            raise ExecutionError(
                f"{self.name}: need an index list per lane"
            )
        width = max(len(lst) for lst in per_lane_indices)
        m = self.processor.srf.geometry.words_per_lane_access
        width = -(-width // m) * m
        padded = [
            list(lst) + [0] * (width - len(lst))
            for lst in per_lane_indices
        ]
        buf = rep % 2
        key = (buf, width)
        if key not in self._gather_buffers:
            self._gather_buffers[key] = SrfArray(
                self.processor.srf, width * lanes,
                f"{self.name}_g{buf}_{width}",
            )
        array = self._gather_buffers[key]
        offsets = array.stream_image_per_lane(padded)
        task = program.add_memory(gather_op(
            array.seq_read(width * lanes), self.region, offsets,
            cacheable=self.processor.config.has_cache,
            name=f"gather_{self.name}_{rep}",
        ), deps=list(deps))
        return array.seq_read(width * lanes), [task]
