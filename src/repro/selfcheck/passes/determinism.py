"""Determinism pass: no ambient entropy inside the simulated machine.

The simulator's core promise is bit-identical replay: the same config
and kernel must produce the same cycle counts, fingerprints, and fault
sites on every run. That promise dies the moment simulation code reads
a wall clock, an unseeded RNG, or iterates a set in hash order. This
pass forbids those inside the *simulated-machine* packages
(``core/``, ``machine/``, ``kernel/``, ``memory/``,
``interconnect/``); the harness, store, and observability layers may
legitimately read clocks (wall-time provenance stamps) and are out of
scope.

Codes:

* ``SC301`` — wall-clock reads (``time.time``, ``datetime.now`` …);
* ``SC302`` — unseeded or process-global RNG (``random.random``,
  ``random.Random()`` with no seed, ``numpy.random.rand`` …);
* ``SC303`` — OS entropy (``os.urandom``, ``uuid.uuid4``,
  ``secrets.*``);
* ``SC304`` — iteration over a set literal/comprehension or
  ``set()``/``frozenset()`` call result, whose order is
  hash-randomized across processes.

Seeded constructions (``random.Random(seed)``,
``numpy.random.default_rng(seed)``) are allowed — determinism comes
from the seed being config-carried, which is exactly how
``repro.faults`` works.
"""

from __future__ import annotations

import ast

from repro.selfcheck.core import LintContext, SourceFile, resolve_call_target

NAME = "determinism"

CODES = {
    "SC301": "wall-clock read inside simulated-machine code",
    "SC302": "unseeded or process-global RNG inside simulated-machine "
             "code",
    "SC303": "OS entropy source inside simulated-machine code",
    "SC304": "iteration over hash-ordered set inside simulated-machine "
             "code",
}

#: Subtrees that must stay deterministic (prefix match on rel path).
SCOPES = ("core/", "machine/", "kernel/", "memory/", "interconnect/")

#: Call targets that read the wall clock.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
}

#: Module-level RNG functions on Python's global (process-seeded) state.
_GLOBAL_RANDOM = {
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.uniform", "random.gauss", "random.betavariate",
    "random.expovariate", "random.getrandbits", "random.seed",
}

#: numpy's legacy global-state functions (np.random.rand etc.).
_NUMPY_GLOBAL_PREFIX = "numpy.random."

#: numpy.random constructions that are fine when given an explicit seed.
_NUMPY_SEEDED_OK = {
    "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator", "numpy.random.SeedSequence",
}

#: OS / cryptographic entropy.
_OS_ENTROPY_EXACT = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}
_OS_ENTROPY_PREFIX = "secrets."

#: Constructs whose argument's iteration order we inspect.
_ITER_WRAPPERS = {"list", "tuple", "sorted", "enumerate", "iter",
                  "reversed", "max", "min", "sum"}


def _is_set_expr(node: ast.expr) -> bool:
    """True for expressions that evaluate to a set with hash order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp) \
            and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub,
                                     ast.BitXor)):
        # set algebra (a | b, a - b) yields a set when either side does.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _ordered_set_iterations(sf: SourceFile) -> "list[int]":
    """Lines where a set's hash order leaks into program order."""
    if sf.tree is None:
        return []
    lines: "list[int]" = []
    for node in ast.walk(sf.tree):
        target: "ast.expr | None" = None
        if isinstance(node, (ast.For, ast.AsyncFor)):
            target = node.iter
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            target = node.generators[0].iter
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) \
                    and func.id in _ITER_WRAPPERS and node.args:
                if func.id == "sorted":
                    continue  # sorted() erases hash order — that's the fix
                target = node.args[0]
            elif isinstance(func, ast.Attribute) and func.attr == "join" \
                    and node.args:
                target = node.args[0]
        if target is not None and _is_set_expr(target):
            lines.append(target.lineno)
    return lines


def _unseeded_random_construction(node: ast.Call, origin: str) -> bool:
    """``random.Random()`` / ``default_rng()`` with no seed argument."""
    if origin == "random.Random" or origin in _NUMPY_SEEDED_OK:
        return not node.args and not node.keywords
    return False


def run(ctx: LintContext) -> None:
    for sf in ctx.tree.files:
        if not sf.rel.startswith(SCOPES) or sf.tree is None:
            continue
        imports = sf.import_map()
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_target(node.func, imports)
            if origin is None:
                continue
            if origin in _WALL_CLOCK:
                ctx.emit(
                    "SC301",
                    f"wall-clock read ({origin}) — simulated time must "
                    f"come from the machine's cycle counter, not the "
                    f"host clock",
                    sf=sf, line=node.lineno,
                )
            elif origin in _GLOBAL_RANDOM or (
                origin.startswith(_NUMPY_GLOBAL_PREFIX)
                and origin not in _NUMPY_SEEDED_OK
            ):
                ctx.emit(
                    "SC302",
                    f"process-global RNG ({origin}) — construct a seeded "
                    f"random.Random(seed) carried by the config, as "
                    f"repro.faults does",
                    sf=sf, line=node.lineno,
                )
            elif _unseeded_random_construction(node, origin):
                ctx.emit(
                    "SC302",
                    f"unseeded RNG construction ({origin}()) — pass an "
                    f"explicit config-carried seed",
                    sf=sf, line=node.lineno,
                )
            elif origin in _OS_ENTROPY_EXACT \
                    or origin.startswith(_OS_ENTROPY_PREFIX):
                ctx.emit(
                    "SC303",
                    f"OS entropy source ({origin}) — nothing inside the "
                    f"simulated machine may consume non-reproducible "
                    f"randomness",
                    sf=sf, line=node.lineno,
                )
        for line in _ordered_set_iterations(sf):
            ctx.emit(
                "SC304",
                "iteration order of a set is hash-randomized across "
                "processes — iterate sorted(...) or use a list/dict "
                "to make the order part of the program",
                sf=sf, line=line,
            )
