"""Overlay-registry pass: every ``REPRO_*`` env read is registered.

Environment overlays are how CLI flags reach forked workers and how
operators steer sweeps; an undocumented one is a reproducibility hole
(two "identical" runs differing through a variable nobody recorded).
This pass statically resolves every ``os.environ`` / ``os.getenv`` /
``environ.get`` access in the tree and requires:

* every resolved ``REPRO_*`` name appears in the central registry
  (``config/overlays.py``) — ``SC201``;
* every access's variable *name* is statically resolvable at all —
  a literal, a module-level constant, a loop over a constant tuple, or
  a value imported from the registry itself — ``SC202`` otherwise;
* every ``src``-scoped registry entry is actually read, and read by
  its declared owner module — ``SC203``;
* the committed ``ENV.md`` matches what the registry renders —
  ``SC204`` (the golden-fixture pattern: regenerate with
  ``python -m repro.selfcheck --write-env-md``).

The registry is parsed from the *scanned* tree (so mutation fixtures
work), but rendered through the installed
:func:`repro.config.overlays.render_env_md`, keeping exactly one
template.
"""

from __future__ import annotations

import ast
import os
import re

from repro.config.overlays import EnvOverlay, render_env_md
from repro.selfcheck.core import LintContext, SourceFile, literal_strings

NAME = "overlays"

CODES = {
    "SC201": "REPRO_* environment read of an unregistered variable",
    "SC202": "environment read with statically unresolvable name",
    "SC203": "stale overlay-registry entry (never read, or not read by "
             "its owner)",
    "SC204": "ENV.md drifted from the overlay registry",
    "SC205": "overlay registry is malformed (non-constant entry)",
}

REGISTRY_FILE = "config/overlays.py"

_REPRO_NAME = re.compile(r"^REPRO_[A-Z0-9_]+$")

#: Names importable from the registry module; a read whose variable
#: name comes from one of these is registered by construction.
_REGISTRY_EXPORTS = ("OVERLAYS", "REGISTERED", "RESULT_AFFECTING")

#: Sentinel resolution for registry-derived names.
_FROM_REGISTRY = object()


def parse_registry(sf: SourceFile,
                   ctx: LintContext) -> "list[EnvOverlay] | None":
    """The ``OVERLAYS`` tuple of the scanned registry, or None."""
    if sf.tree is None:
        return None
    for node in sf.tree.body:
        targets: "list[ast.expr]" = []
        value: "ast.expr | None" = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not any(
            isinstance(target, ast.Name) and target.id == "OVERLAYS"
            for target in targets
        ):
            continue
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        entries: "list[EnvOverlay]" = []
        for element in value.elts:
            if not isinstance(element, ast.Call) or element.args:
                ctx.emit(
                    "SC205",
                    "registry entries must be keyword-only EnvOverlay "
                    "calls with constant values",
                    sf=sf, line=element.lineno,
                )
                return None
            kwargs: "dict[str, object]" = {}
            ok = True
            for keyword in element.keywords:
                if keyword.arg is None \
                        or not isinstance(keyword.value, ast.Constant):
                    ctx.emit(
                        "SC205",
                        "registry entry has a non-constant or starred "
                        "argument — the selfcheck pass (and ENV.md) "
                        "cannot evaluate it",
                        sf=sf, line=element.lineno,
                    )
                    ok = False
                    break
                kwargs[keyword.arg] = keyword.value.value
            if not ok:
                return None
            try:
                entries.append(EnvOverlay(**kwargs))  # type: ignore[arg-type]
            except TypeError:
                ctx.emit(
                    "SC205",
                    "registry entry does not match the EnvOverlay schema",
                    sf=sf, line=element.lineno,
                )
                return None
        return entries
    return None


def _is_environ_base(node: ast.expr) -> bool:
    """True for ``os.environ`` or a bare name ``environ``."""
    if isinstance(node, ast.Attribute) and node.attr == "environ" \
            and isinstance(node.value, ast.Name) and node.value.id == "os":
        return True
    return isinstance(node, ast.Name) and node.id == "environ"


def _loop_iter(sf: SourceFile, name: str) -> "ast.expr | None":
    """The iterable expression of a for loop whose target is ``name``."""
    if sf.tree is None:
        return None
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.For) and isinstance(node.target, ast.Name) \
                and node.target.id == name:
            return node.iter
    return None


def _resolve_constant(name: str,
                      constants: "dict[str, object]") -> "object | None":
    seen = set()
    while name not in seen:
        seen.add(name)
        value = constants.get(name)
        if isinstance(value, tuple) and len(value) == 2 \
                and value[0] == "alias":
            name = value[1]  # type: ignore[assignment]
            continue
        return value
    return None


def env_accesses(
    sf: SourceFile,
    lookup: "object | None" = None,
) -> "list[tuple[int, object]]":
    """Every environment access in ``sf`` with its resolved name(s).

    Returns ``(line, resolution)`` where resolution is a tuple of
    variable names, the ``_FROM_REGISTRY`` sentinel, or None when the
    name cannot be statically determined. ``lookup`` is an optional
    ``(module, name) -> value`` callable resolving constants imported
    from other files in the scanned tree (``from repro.config.presets
    import BACKEND_ENV``).
    """
    if sf.tree is None:
        return []
    constants = sf.module_constants()
    imports = sf.import_map()
    registry_names = {
        local for local, origin in imports.items()
        if origin.startswith("repro.config.overlays.")
        and origin.rsplit(".", 1)[-1] in _REGISTRY_EXPORTS
    }
    # A module-level rebinding of a registry import (RESULT_ENV_VARS =
    # RESULT_AFFECTING) keeps the registered-by-construction property.
    for const_name, value in constants.items():
        if isinstance(value, tuple) and len(value) == 2 \
                and value[0] == "alias" and value[1] in registry_names:
            registry_names.add(const_name)

    def resolve_name(name: str) -> "object":
        if name in registry_names:
            return _FROM_REGISTRY
        value = _resolve_constant(name, constants)
        if value is None and lookup is not None and name in imports:
            origin = imports[name]
            if "." in origin:
                module, attr = origin.rsplit(".", 1)
                value = lookup(module, attr)  # type: ignore[operator]
        if isinstance(value, str):
            return (value,)
        if isinstance(value, tuple) \
                and all(isinstance(item, str) for item in value):
            return value
        return None

    def resolve(expr: ast.expr) -> "object":
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return (expr.value,)
        if not isinstance(expr, ast.Name):
            return None
        direct = resolve_name(expr.id)
        if direct is not None:
            return direct
        # A loop variable: resolve what it iterates over.
        iterable = _loop_iter(sf, expr.id)
        if isinstance(iterable, ast.Name):
            return resolve_name(iterable.id)
        if isinstance(iterable, (ast.Tuple, ast.List)):
            values = literal_strings(iterable)
            if isinstance(values, tuple):
                return values
        return None

    accesses: "list[tuple[int, object]]" = []
    for node in ast.walk(sf.tree):
        key: "ast.expr | None" = None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in ("get", "pop", "setdefault") \
                    and _is_environ_base(func.value) and node.args:
                key = node.args[0]
            elif isinstance(func, ast.Attribute) and func.attr == "getenv" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "os" and node.args:
                key = node.args[0]
        elif isinstance(node, ast.Subscript) \
                and _is_environ_base(node.value):
            key = node.slice if isinstance(node.slice, ast.expr) else None
        if key is None:
            continue
        accesses.append((node.lineno, resolve(key)))
    return accesses


def _loop_iter_registry(sf: SourceFile, resolution: object) -> bool:
    return resolution is _FROM_REGISTRY


def run(ctx: LintContext) -> None:
    registry_sf = ctx.tree.file(REGISTRY_FILE)
    if registry_sf is None:
        return
    entries = parse_registry(registry_sf, ctx)
    if entries is None:
        ctx.emit(
            "SC205",
            "OVERLAYS tuple literal not found in the registry",
            sf=registry_sf,
        )
        return
    registered = {entry.name for entry in entries}

    def lookup(module: str, name: str) -> "object | None":
        """Constant ``name`` defined in ``module`` within the tree."""
        if module == "repro":
            rel = "__init__.py"
        elif module.startswith("repro."):
            rel = module[len("repro."):].replace(".", "/") + ".py"
        else:
            return None
        other = ctx.tree.file(rel)
        if other is None:
            other = ctx.tree.file(rel[:-len(".py")] + "/__init__.py")
        if other is None:
            return None
        value = other.module_constants().get(name)
        if isinstance(value, (str, tuple)) and not (
            isinstance(value, tuple) and len(value) == 2
            and value[0] == "alias"
        ):
            return value
        return None

    #: name -> set of rel paths that read it (resolved accesses only).
    readers: "dict[str, set[str]]" = {}
    for sf in ctx.tree.files:
        for line, resolution in env_accesses(sf, lookup):
            if resolution is None:
                ctx.emit(
                    "SC202",
                    "environment access whose variable name cannot be "
                    "statically resolved — use a string literal or a "
                    "module-level constant so the overlay registry can "
                    "be enforced",
                    sf=sf, line=line,
                )
                continue
            if _loop_iter_registry(sf, resolution):
                continue  # names drawn from the registry itself
            assert isinstance(resolution, tuple)
            for name in resolution:
                if not _REPRO_NAME.match(name):
                    continue
                readers.setdefault(name, set()).add(sf.rel)
                if name not in registered:
                    ctx.emit(
                        "SC201",
                        f"read of unregistered environment variable "
                        f"{name!r} — add an EnvOverlay entry to "
                        f"repro/config/overlays.py (and regenerate "
                        f"ENV.md)",
                        sf=sf, line=line,
                    )

    for entry in entries:
        if entry.scope != "src":
            continue
        owner_rel = entry.owner
        if owner_rel.startswith("repro."):
            owner_rel = owner_rel[len("repro."):]
        owner_rel = owner_rel.replace(".", "/") + ".py"
        if entry.name not in readers:
            ctx.emit(
                "SC203",
                f"registry entry {entry.name!r} is never read anywhere "
                f"in the tree — delete it (and regenerate ENV.md) or "
                f"wire it up",
                sf=registry_sf,
            )
        elif owner_rel not in readers[entry.name] \
                and ctx.tree.file(owner_rel) is not None:
            ctx.emit(
                "SC203",
                f"registry entry {entry.name!r} declares owner "
                f"{entry.owner!r} but that module never reads it "
                f"(read by: {', '.join(sorted(readers[entry.name]))})",
                sf=registry_sf,
            )

    _check_env_md(ctx, entries)


def _check_env_md(ctx: LintContext, entries: "list[EnvOverlay]") -> None:
    if ctx.env_md_path is None or not os.path.exists(ctx.env_md_path):
        return
    with open(ctx.env_md_path, encoding="utf-8") as handle:
        committed = handle.read()
    expected = render_env_md(tuple(entries))
    if committed != expected:
        ctx.emit(
            "SC204",
            "ENV.md drifted from the overlay registry — regenerate with "
            "`python -m repro.selfcheck --write-env-md`",
            path=os.path.basename(ctx.env_md_path), context="<env-md>",
        )
