"""Fingerprint-coverage pass: every config field classified, no drift.

Cross-checks three anchors *statically* (on the scanned tree's source,
never the imported package, so mutation fixtures exercise the real
logic):

* ``config/machine.py`` — the :class:`MachineConfig` dataclass fields;
* ``fingerprint.py`` — ``FUNCTIONAL_FIELDS`` and the
  ``config_fingerprint`` implementation;
* ``machine/replay.py`` — ``TIMING_ONLY_FIELDS``.

The contract: ``FUNCTIONAL_FIELDS`` and ``TIMING_ONLY_FIELDS`` exactly
partition the field set (every field in exactly one), and
``config_fingerprint`` enumerates fields through :mod:`dataclasses`
(``asdict``/``fields``) so the result-cache key can never silently drop
a field. The same partition is enforced at runtime by
:func:`repro.fingerprint.check_field_partition`; this pass catches the
break at lint time, before any cache or trace is keyed.
"""

from __future__ import annotations

import ast

from repro.selfcheck.core import LintContext, SourceFile, literal_strings

NAME = "fingerprint"

CODES = {
    "SC101": "MachineConfig field classified neither functional nor "
             "timing-only",
    "SC102": "stale TIMING_ONLY_FIELDS entry (not a MachineConfig field)",
    "SC103": "stale FUNCTIONAL_FIELDS entry (not a MachineConfig field)",
    "SC104": "MachineConfig field classified both functional and "
             "timing-only",
    "SC105": "fingerprint anchor (dataclass or field set) not found",
    "SC106": "config_fingerprint no longer enumerates fields via "
             "dataclasses",
}

MACHINE_FILE = "config/machine.py"
FINGERPRINT_FILE = "fingerprint.py"
REPLAY_FILE = "machine/replay.py"


def dataclass_fields(sf: SourceFile,
                     class_name: str) -> "dict[str, int] | None":
    """Annotated field name -> line for one dataclass, None if absent."""
    if sf.tree is None:
        return None
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                stmt.target.id: stmt.lineno
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
    return None


def string_set(sf: SourceFile,
               name: str) -> "tuple[set[str], int] | None":
    """A module-level frozenset/set-of-strings literal and its line."""
    if sf.tree is None:
        return None
    for node in sf.tree.body:
        targets: "list[ast.expr]" = []
        value: "ast.expr | None" = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not any(
            isinstance(target, ast.Name) and target.id == name
            for target in targets
        ):
            continue
        literal = value
        if isinstance(literal, ast.Call) and literal.args \
                and isinstance(literal.func, ast.Name) \
                and literal.func.id in ("frozenset", "set"):
            literal = literal.args[0]
        if isinstance(literal, ast.Set):
            strings = literal_strings(
                ast.Tuple(elts=literal.elts, ctx=ast.Load())
            )
        else:
            strings = literal_strings(literal)
        if isinstance(strings, tuple):
            return set(strings), node.lineno
        return None
    return None


def run(ctx: LintContext) -> None:
    machine = ctx.tree.file(MACHINE_FILE)
    fingerprint = ctx.tree.file(FINGERPRINT_FILE)
    replay = ctx.tree.file(REPLAY_FILE)
    if machine is None or fingerprint is None or replay is None:
        # Partial tree (e.g. a targeted scan of one subpackage): the
        # cross-file contract cannot be evaluated, so stay silent
        # rather than erroring on files the user did not ask about.
        return

    fields = dataclass_fields(machine, "MachineConfig")
    if fields is None:
        ctx.emit("SC105", "MachineConfig dataclass not found", sf=machine)
        return
    functional = string_set(fingerprint, "FUNCTIONAL_FIELDS")
    if functional is None:
        ctx.emit(
            "SC105",
            "FUNCTIONAL_FIELDS string-set literal not found",
            sf=fingerprint,
        )
        return
    timing_only = string_set(replay, "TIMING_ONLY_FIELDS")
    if timing_only is None:
        ctx.emit(
            "SC105",
            "TIMING_ONLY_FIELDS string-set literal not found",
            sf=replay,
        )
        return
    functional_set, functional_line = functional
    timing_set, timing_line = timing_only

    for name in sorted(set(fields) - functional_set - timing_set):
        ctx.emit(
            "SC101",
            f"config field {name!r} is in neither FUNCTIONAL_FIELDS nor "
            f"TIMING_ONLY_FIELDS — classify it before it can key a cache "
            f"or trace",
            sf=machine, line=fields[name],
        )
    for name in sorted(timing_set - set(fields)):
        ctx.emit(
            "SC102",
            f"TIMING_ONLY_FIELDS entry {name!r} is not a MachineConfig "
            f"field (renamed or deleted?)",
            sf=replay, line=timing_line,
        )
    for name in sorted(functional_set - set(fields)):
        ctx.emit(
            "SC103",
            f"FUNCTIONAL_FIELDS entry {name!r} is not a MachineConfig "
            f"field (renamed or deleted?)",
            sf=fingerprint, line=functional_line,
        )
    for name in sorted(functional_set & timing_set):
        ctx.emit(
            "SC104",
            f"config field {name!r} is classified both functional and "
            f"timing-only",
            sf=fingerprint, line=functional_line,
        )

    _check_config_fingerprint(ctx, fingerprint)


def _check_config_fingerprint(ctx: LintContext, sf: SourceFile) -> None:
    """SC106: config_fingerprint must enumerate fields automatically."""
    assert sf.tree is not None
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.FunctionDef) \
                and node.name == "config_fingerprint":
            for child in ast.walk(node):
                if isinstance(child, ast.Attribute) \
                        and child.attr in ("asdict", "fields"):
                    return
                if isinstance(child, ast.Name) \
                        and child.id in ("asdict", "fields"):
                    return
            ctx.emit(
                "SC106",
                "config_fingerprint does not call dataclasses.asdict/"
                "fields — a hand-enumerated field list will silently "
                "omit new fields from every cache key",
                sf=sf, line=node.lineno,
            )
            return
    ctx.emit("SC105", "config_fingerprint function not found", sf=sf)
