"""Write-discipline pass: durable writes go through ``repro.store``.

The crash-consistency work (PR 7) proved that a bare
``open(path, "w")`` — or a write-then-rename without an fsync — can
surface as an empty or truncated file after power loss, silently
corrupting sweep results. The durable-write recipe (staging file →
flush → fsync → ``os.replace`` → directory fsync) lives in
``repro.store`` (``atomic_write_text`` / ``atomic_write_bytes`` and the
journal/segment primitives); everything else in the package must call
those rather than re-deriving the recipe badly.

Codes (all scoped to files *outside* ``store/``):

* ``SC401`` — ``os.rename`` / ``os.replace`` / ``shutil.move``: a
  rename outside the store is almost always the second half of a
  hand-rolled atomic write, missing the fsync;
* ``SC402`` — opening a file for writing (``open(..., "w")``,
  ``Path.write_text`` …): route through the store primitives;
* ``SC403`` — a bare ``os.fsync``: if you need durability semantics,
  you need the whole recipe, not one syscall of it.

Read-mode opens are untouched. Code with a genuine reason (e.g. a
debug dump that may be torn) suppresses the line with
``# selfcheck: disable=SC402`` and says why.
"""

from __future__ import annotations

import ast

from repro.selfcheck.core import LintContext, resolve_call_target

NAME = "writes"

CODES = {
    "SC401": "rename/replace outside repro.store (hand-rolled atomic "
             "write?)",
    "SC402": "file opened for writing outside repro.store primitives",
    "SC403": "bare os.fsync outside repro.store",
}

#: The package that owns the durable-write recipe.
STORE_PREFIX = "store/"

_RENAMES = {"os.rename", "os.replace", "shutil.move"}

_OPENERS = {"open", "io.open", "gzip.open", "bz2.open", "lzma.open",
            "os.fdopen"}

_PATH_WRITERS = {"write_text", "write_bytes"}

_WRITE_MODE_CHARS = set("wax+")


def _mode_argument(node: ast.Call) -> "ast.expr | None":
    if len(node.args) >= 2:
        return node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    return None


def _is_write_mode(node: ast.Call) -> "bool | None":
    """True/False when the open mode is statically known, else None."""
    mode = _mode_argument(node)
    if mode is None:
        return False  # default mode "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return bool(_WRITE_MODE_CHARS & set(mode.value))
    return None


def run(ctx: LintContext) -> None:
    for sf in ctx.tree.files:
        if sf.rel.startswith(STORE_PREFIX) or sf.tree is None:
            continue
        imports = sf.import_map()
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = resolve_call_target(node.func, imports)
            if origin in _RENAMES:
                ctx.emit(
                    "SC401",
                    f"{origin} outside repro.store — a rename is the "
                    f"unsafe half of an atomic write; use "
                    f"repro.store.atomic_write_text/bytes, which fsyncs "
                    f"before and after the replace",
                    sf=sf, line=node.lineno,
                )
            elif origin == "os.fsync":
                ctx.emit(
                    "SC403",
                    "bare os.fsync outside repro.store — durability "
                    "needs the whole staging/fsync/replace recipe; call "
                    "the store primitives",
                    sf=sf, line=node.lineno,
                )
            elif origin in _OPENERS:
                write = _is_write_mode(node)
                if write or write is None:
                    ctx.emit(
                        "SC402",
                        "file opened for writing outside repro.store — "
                        "a bare write can be torn by a crash; use "
                        "repro.store.atomic_write_text/bytes (or "
                        "suppress with a reason if tearing is "
                        "acceptable)"
                        if write else
                        "file opened with a non-constant mode — make "
                        "the mode a literal so the write-discipline "
                        "pass can classify it",
                        sf=sf, line=node.lineno,
                    )
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _PATH_WRITERS:
                ctx.emit(
                    "SC402",
                    f".{node.func.attr}() writes without the durable-"
                    f"write recipe — use repro.store.atomic_write_text/"
                    f"bytes",
                    sf=sf, line=node.lineno,
                )
