"""Fallback-matrix pass: the columnar engine declines what it can't model.

The columnar timing engine (PR 8) is only allowed to run when it is
bit-identical to the object engine; ``columnar_eligible`` in
``machine/columnar.py`` is the gate that falls back to the object
engine for configurations it does not model. The failure mode this
pass exists for: someone adds a simulation knob, wires it into the
object engine, and forgets the gate — the columnar engine then runs
for configs it silently mis-models, and the bit-identical proof rots.

The contract, checked statically:

    every *knob* consulted by object-engine code must be either
    (a) checked by ``columnar_eligible`` (it declines), or
    (b) listed in ``COLUMNAR_MODELED_FIELDS`` (it models it exactly,
        with a justification comment).

*Knobs* are the MachineConfig fields under the ``Simulation knobs``,
``Observability``, and ``Fault injection`` section headers — machine
*parameters* (lane counts, latencies) are both engines' shared input
and are out of scope. Reads through MachineConfig ``@property``
wrappers (``faults_enabled``) are expanded to the fields the property
reads.

Codes:

* ``SC501`` — a knob the object engine consults is neither checked by
  ``columnar_eligible`` nor declared modeled;
* ``SC502`` — a ``COLUMNAR_MODELED_FIELDS`` entry that is stale (not a
  knob the object engine consults — the declaration outlived the code);
* ``SC505`` — an anchor is missing (gate function, modeled set, or the
  knob sections parsed to nothing).
"""

from __future__ import annotations

import ast
import re

from repro.selfcheck.core import LintContext, SourceFile
from repro.selfcheck.passes.fingerprint import dataclass_fields, string_set

NAME = "fallback"

CODES = {
    "SC501": "object-engine knob not covered by columnar_eligible or "
             "COLUMNAR_MODELED_FIELDS",
    "SC502": "stale COLUMNAR_MODELED_FIELDS entry",
    "SC505": "fallback-matrix anchor (gate, modeled set, or knob "
             "sections) not found",
}

MACHINE_FILE = "config/machine.py"
COLUMNAR_FILE = "machine/columnar.py"

#: Files that implement the object (reference) engine.
OBJECT_ENGINE_FILES = ("machine/processor.py", "machine/executor.py")
OBJECT_ENGINE_PREFIXES = ("core/", "memory/", "interconnect/")

#: MachineConfig section headers whose fields count as knobs.
_KNOB_SECTIONS = ("Simulation knobs", "Observability", "Fault injection")

_SECTION_RE = re.compile(r"^\s*#\s*---\s*(.+?)\s*-+\s*$")

#: Names an expression must have to count as "the config object".
_CONFIG_NAMES = ("config", "cfg", "_config", "machine_config")


def knob_fields(machine: SourceFile) -> "set[str]":
    """MachineConfig fields under the knob section headers."""
    fields = dataclass_fields(machine, "MachineConfig")
    if fields is None:
        return set()
    #: line -> section title, from the comment headers.
    sections: "list[tuple[int, str]]" = []
    for number, line in enumerate(machine.lines, 1):
        match = _SECTION_RE.match(line)
        if match:
            sections.append((number, match.group(1)))
    knobs: "set[str]" = set()
    for name, line in fields.items():
        title = ""
        for header_line, header_title in sections:
            if header_line < line:
                title = header_title
        if title.startswith(_KNOB_SECTIONS):
            knobs.add(name)
    return knobs


def property_map(machine: SourceFile) -> "dict[str, set[str]]":
    """MachineConfig property name -> config fields it reads."""
    properties: "dict[str, set[str]]" = {}
    if machine.tree is None:
        return properties
    for node in ast.walk(machine.tree):
        if not (isinstance(node, ast.ClassDef)
                and node.name == "MachineConfig"):
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.FunctionDef):
                continue
            if not any(
                isinstance(decorator, ast.Name)
                and decorator.id == "property"
                for decorator in stmt.decorator_list
            ):
                continue
            reads: "set[str]" = set()
            for child in ast.walk(stmt):
                if isinstance(child, ast.Attribute) \
                        and isinstance(child.value, ast.Name) \
                        and child.value.id == "self":
                    reads.add(child.attr)
            properties[stmt.name] = reads
    return properties


def _is_config_expr(node: ast.expr) -> bool:
    """True for ``config`` / ``cfg`` / ``self.config`` / ``self._config``."""
    if isinstance(node, ast.Name):
        return node.id in _CONFIG_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _CONFIG_NAMES \
            and isinstance(node.value, ast.Name) \
            and node.value.id == "self"
    return False


def config_reads(sf: SourceFile) -> "dict[str, int]":
    """Attribute names read off a config object -> first line seen."""
    reads: "dict[str, int]" = {}
    if sf.tree is None:
        return reads
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Attribute) and _is_config_expr(node.value):
            reads.setdefault(node.attr, node.lineno)
    return reads


def _expand(names: "set[str]", knobs: "set[str]",
            properties: "dict[str, set[str]]") -> "set[str]":
    """Restrict to knobs, expanding property reads to their fields."""
    expanded: "set[str]" = set()
    for name in names:
        if name in properties:
            expanded |= properties[name] & knobs
        elif name in knobs:
            expanded.add(name)
    return expanded


def eligibility_checked(columnar: SourceFile) -> "set[str] | None":
    """Config attributes consulted by ``columnar_eligible``, or None."""
    if columnar.tree is None:
        return None
    for node in ast.walk(columnar.tree):
        if isinstance(node, ast.FunctionDef) \
                and node.name == "columnar_eligible":
            names: "set[str]" = set()
            for child in ast.walk(node):
                if isinstance(child, ast.Attribute):
                    names.add(child.attr)
            return names
    return None


def run(ctx: LintContext) -> None:
    machine = ctx.tree.file(MACHINE_FILE)
    columnar = ctx.tree.file(COLUMNAR_FILE)
    if machine is None or columnar is None:
        return  # partial tree: contract not evaluable
    knobs = knob_fields(machine)
    if not knobs:
        ctx.emit(
            "SC505",
            "no knob fields found under the MachineConfig section "
            "headers — the fallback matrix has nothing to check against",
            sf=machine,
        )
        return
    properties = property_map(machine)
    checked = eligibility_checked(columnar)
    if checked is None:
        ctx.emit("SC505", "columnar_eligible function not found",
                 sf=columnar)
        return
    modeled = string_set(columnar, "COLUMNAR_MODELED_FIELDS")
    if modeled is None:
        ctx.emit(
            "SC505",
            "COLUMNAR_MODELED_FIELDS string-set literal not found",
            sf=columnar,
        )
        return
    modeled_set, modeled_line = modeled
    covered = _expand(checked, knobs, properties) | modeled_set

    consulted: "dict[str, tuple[str, int]]" = {}
    for sf in ctx.tree.files:
        if sf.rel not in OBJECT_ENGINE_FILES \
                and not sf.rel.startswith(OBJECT_ENGINE_PREFIXES):
            continue
        for name, line in config_reads(sf).items():
            for field in _expand({name}, knobs, properties):
                consulted.setdefault(field, (sf.rel, line))

    for field in sorted(set(consulted) - covered):
        rel, line = consulted[field]
        sf = ctx.tree.file(rel)
        ctx.emit(
            "SC501",
            f"object-engine code consults knob {field!r} but "
            f"columnar_eligible never checks it and it is not declared "
            f"in COLUMNAR_MODELED_FIELDS — the columnar engine will run "
            f"configs it does not model",
            sf=sf, line=line,
        )
    for field in sorted(modeled_set - set(consulted)):
        ctx.emit(
            "SC502",
            f"COLUMNAR_MODELED_FIELDS entry {field!r} is stale: no "
            f"object-engine code consults it (renamed, or no longer a "
            f"knob) — delete the entry",
            sf=columnar, line=modeled_line,
        )
