"""The selfcheck pass registry.

Each pass module exposes ``NAME`` (short slug), ``CODES`` (stable code
-> one-line description — the mutation corpus and the docs key on
these), and ``run(ctx)``. Order matters only for output stability.
"""

from repro.selfcheck.passes import (
    determinism,
    fallback,
    fingerprint,
    overlays,
    writes,
)

#: Every registered pass module, in reporting order.
ALL_PASSES = (fingerprint, overlays, determinism, writes, fallback)

#: Every pass-declared code, for suppression validation and docs.
PASS_CODES = {
    code: description
    for pass_module in ALL_PASSES
    for code, description in pass_module.CODES.items()
}

__all__ = ["ALL_PASSES", "PASS_CODES"]
