"""Codebase-invariant linter for the simulator's own source.

``repro.selfcheck`` statically enforces the cross-cutting contracts the
test suite can only probe pointwise: every :class:`MachineConfig` field
classified functional vs timing-only, every ``REPRO_*`` environment
overlay registered and documented, no ambient entropy inside the
simulated machine, durable writes routed through :mod:`repro.store`,
and the columnar engine's fallback matrix kept complete. Run it with
``python -m repro.selfcheck``; see DESIGN.md §4k for the pass
architecture and the full code table.
"""

from repro.selfcheck.core import Finding, LintContext, SourceFile, SourceTree
from repro.selfcheck.driver import ALL_CODES, SelfcheckReport, run_selfcheck

__all__ = [
    "ALL_CODES",
    "Finding",
    "LintContext",
    "SelfcheckReport",
    "SourceFile",
    "SourceTree",
    "run_selfcheck",
]
