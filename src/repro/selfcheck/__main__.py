"""CLI for the selfcheck linter: ``python -m repro.selfcheck [ROOT]``.

Exit codes follow the shared convention in :mod:`repro.exitcodes`:
``0`` clean (no active findings), ``1`` active findings, ``2`` usage or
input error (bad flags, unreadable baseline).

The tool scans the installed package root by default, and discovers the
ratchet baseline (``selfcheck-baseline.json``) and generated overlay
reference (``ENV.md``) at the repository root (two levels above
``src/repro``), falling back to the current directory. ``--write-*``
flags regenerate those artifacts through the same durable-write
primitives the tool itself enforces.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import repro
from repro.config.overlays import OVERLAYS, render_env_md
from repro.exitcodes import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE
from repro.selfcheck.baseline import BaselineError, render_baseline
from repro.selfcheck.driver import run_selfcheck
from repro.store.atomic import atomic_write_text

BASELINE_NAME = "selfcheck-baseline.json"
ENV_MD_NAME = "ENV.md"


def _default_root() -> str:
    return os.path.dirname(os.path.abspath(repro.__file__))


def _discover(root: str, filename: str) -> "str | None":
    """Find a repository-level artifact next to the scanned tree."""
    candidates = [
        os.path.abspath(os.path.join(root, os.pardir, os.pardir, filename)),
        os.path.abspath(filename),
    ]
    for candidate in candidates:
        if os.path.exists(candidate):
            return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.selfcheck",
        description="Lint the simulator source for cross-cutting "
                    "contract violations.",
    )
    parser.add_argument(
        "root", nargs="?", default=None,
        help="package root to scan (default: the installed repro package)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write the full report as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="ratchet baseline file (default: auto-discovered "
             f"{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to grandfather every current finding",
    )
    parser.add_argument(
        "--env-md", metavar="PATH",
        help=f"generated overlay reference to check (default: "
             f"auto-discovered {ENV_MD_NAME})",
    )
    parser.add_argument(
        "--write-env-md", action="store_true",
        help="regenerate ENV.md from the overlay registry and exit",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list grandfathered (baselined) findings",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    root = options.root or _default_root()
    if not os.path.isdir(root):
        print(f"{parser.prog}: error: not a directory: {root}",
              file=sys.stderr)
        return EXIT_USAGE

    env_md = options.env_md or _discover(root, ENV_MD_NAME)
    if options.write_env_md:
        target = env_md or os.path.abspath(
            os.path.join(root, os.pardir, os.pardir, ENV_MD_NAME)
        )
        atomic_write_text(target, render_env_md(OVERLAYS))
        print(f"wrote {target}")
        return EXIT_CLEAN

    baseline = options.baseline or _discover(root, BASELINE_NAME)
    try:
        report = run_selfcheck(
            root,
            baseline_path=None if options.write_baseline else baseline,
            env_md_path=env_md,
        )
    except BaselineError as error:
        print(f"{parser.prog}: error: {error}", file=sys.stderr)
        return EXIT_USAGE

    if options.write_baseline:
        target = baseline or os.path.abspath(
            os.path.join(root, os.pardir, os.pardir, BASELINE_NAME)
        )
        atomic_write_text(target, render_baseline(report.active))
        print(f"wrote {target} ({len(report.active)} grandfathered "
              f"finding(s))")
        return EXIT_CLEAN

    if options.json:
        payload = json.dumps(report.to_payload(), indent=2) + "\n"
        if options.json == "-":
            sys.stdout.write(payload)
        else:
            atomic_write_text(options.json, payload)

    for finding in report.active:
        print(finding.describe())
    if options.verbose:
        for finding in report.grandfathered:
            print(f"{finding.describe()} (baselined)")

    scanned = len(report.scanned)
    if report.ok:
        grandfathered = len(report.grandfathered)
        suffix = (
            f", {grandfathered} baselined" if grandfathered else ""
        )
        print(f"selfcheck: {scanned} file(s) clean{suffix}")
        return EXIT_CLEAN
    print(
        f"selfcheck: {len(report.active)} active finding(s) across "
        f"{scanned} file(s)",
        file=sys.stderr,
    )
    return EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
