"""Ratchet baseline: grandfathered findings that may only shrink.

A checked-in JSON file (``selfcheck-baseline.json`` at the repository
root) lists findings that predate a pass and are consciously tolerated.
Baselined findings are still reported, but do not fail the run. The
ratchet is one-directional by construction:

* A finding **not** covered by the baseline fails the run — the
  baseline cannot absorb new debt unless someone edits the checked-in
  file (which is what code review is for, and CI separately asserts
  the shipped baseline stays empty).
* A baseline entry whose finding no longer fires is itself an error
  (``SC004``): once debt is paid, the entry must be deleted (run
  ``python -m repro.selfcheck --write-baseline``), so the file always
  reflects reality and can never hide a regression behind a stale
  allowance.

Entries key on ``(code, path, context)`` with a count — line numbers
would churn on every unrelated edit above the finding.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass

from repro.selfcheck.core import Finding

#: Bump when the baseline schema changes; mismatched files are rejected.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is unreadable or structurally invalid."""


@dataclass
class BaselineMatch:
    """Result of applying a baseline to a finding list."""

    #: Findings still failing the run (not absorbed by the baseline).
    active: "list[Finding]"
    #: Findings absorbed by baseline entries (reported, non-fatal).
    grandfathered: "list[Finding]"
    #: ``(code, path, context, unused_count)`` for stale entries.
    stale: "list[tuple[str, str, str, int]]"


def load_baseline(path: str) -> "Counter[tuple[str, str, str]]":
    """Load a baseline file into a key -> allowed-count counter."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise BaselineError(f"{path}: unreadable: {error}") from None
    except json.JSONDecodeError as error:
        raise BaselineError(f"{path}: not valid JSON: {error}") from None
    if not isinstance(payload, dict) \
            or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: expected a version-{BASELINE_VERSION} baseline object"
        )
    allowed: "Counter[tuple[str, str, str]]" = Counter()
    for entry in payload.get("findings", ()):
        if not isinstance(entry, dict) or not entry.get("code") \
                or "path" not in entry or "context" not in entry:
            raise BaselineError(f"{path}: malformed entry {entry!r}")
        key = (str(entry["code"]), str(entry["path"]),
               str(entry["context"]))
        count = entry.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise BaselineError(f"{path}: bad count in entry {entry!r}")
        allowed[key] += count
    return allowed


def apply_baseline(findings: "list[Finding]",
                   allowed: "Counter[tuple[str, str, str]]") -> BaselineMatch:
    """Split ``findings`` into active vs grandfathered; report stale."""
    remaining = Counter(allowed)
    active: "list[Finding]" = []
    grandfathered: "list[Finding]" = []
    for finding in findings:
        if remaining.get(finding.key, 0) > 0:
            remaining[finding.key] -= 1
            grandfathered.append(finding)
        else:
            active.append(finding)
    stale = [
        (code, path, context, count)
        for (code, path, context), count in sorted(remaining.items())
        if count > 0
    ]
    return BaselineMatch(active=active, grandfathered=grandfathered,
                         stale=stale)


def render_baseline(findings: "list[Finding]") -> str:
    """Serialize ``findings`` as a baseline file (deterministic JSON)."""
    counts: "Counter[tuple[str, str, str]]" = Counter(
        finding.key for finding in findings
    )
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"code": code, "path": path, "context": context, "count": count}
            for (code, path, context), count in sorted(counts.items())
        ],
    }
    return json.dumps(payload, indent=2) + "\n"
