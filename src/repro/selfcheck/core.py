"""Lint framework for the simulator's own source: tree, files, findings.

``repro.selfcheck`` is to the *simulator source* what ``repro.analyze``
is to stream programs: a set of passes over a parsed representation,
producing findings with stable machine-readable codes that a mutation
corpus pins. The representation here is the Python AST of every file
under one package root (:class:`SourceTree` / :class:`SourceFile`);
findings reuse the :class:`~repro.analyze.diagnostics.Diagnostic`
severity model, extended with file/line/context provenance
(:class:`Finding`).

Suppression: a finding is silenced by a ``# selfcheck: disable=SC301``
comment on the reported line (comma-separated codes). Suppressions are
themselves checked — an unused one is an error (``SC002``), as is one
naming an unknown code (``SC003``) — so stale escapes cannot linger.

Contexts: each finding carries the qualified name of the enclosing
function/class (``ColumnarSrf.step`` or ``<module>``). The ratchet
baseline (:mod:`repro.selfcheck.baseline`) keys on
``(code, path, context)`` rather than line numbers, so unrelated edits
above a grandfathered finding do not churn the baseline.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass

from repro.analyze.diagnostics import Diagnostic, Severity

#: Framework-level codes (passes declare their own SC1xx–SC5xx).
FRAMEWORK_CODES = {
    "SC001": "source file does not parse",
    "SC002": "unused selfcheck suppression comment",
    "SC003": "suppression names an unknown selfcheck code",
    "SC004": "stale ratchet-baseline entry (finding no longer fires)",
}

_SUPPRESS_RE = re.compile(r"#\s*selfcheck:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding(Diagnostic):
    """One selfcheck finding: a Diagnostic anchored to source."""

    #: Path relative to the scanned tree root (POSIX separators), or a
    #: repository-level artifact name (``ENV.md``) for tree-external
    #: findings.
    path: str = ""
    #: 1-based line, 0 for file- or tree-level findings.
    line: int = 0
    #: Qualified name of the enclosing def/class, ``<module>`` at top
    #: level, empty for tree-level findings. Baseline entries key on it.
    context: str = ""

    @property
    def key(self) -> "tuple[str, str, str]":
        return (self.code, self.path, self.context)

    def describe(self) -> str:
        where = f"{self.path}:{self.line}" if self.path else "<tree>"
        suffix = f" [{self.context}]" if self.context else ""
        return (
            f"{where}: [{self.severity.value}] {self.code}: "
            f"{self.message}{suffix}"
        )


class SourceFile:
    """One parsed source file plus its suppression and scope tables."""

    def __init__(self, root: str, rel: str) -> None:
        self.rel = rel
        self.path = os.path.join(root, rel.replace("/", os.sep))
        with open(self.path, encoding="utf-8") as handle:
            self.text = handle.read()
        self.lines = self.text.splitlines()
        self.parse_error: "SyntaxError | None" = None
        try:
            self.tree: "ast.Module | None" = ast.parse(self.text)
        except SyntaxError as error:
            self.tree = None
            self.parse_error = error
        #: line -> set of codes disabled on that line. Built from real
        #: COMMENT tokens, so the disable syntax can be *mentioned* in
        #: strings and docstrings (as this file does) without effect.
        self.suppressions: "dict[int, set[str]]" = {}
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.text).readline
            ))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match:
                codes = {
                    code.strip() for code in match.group(1).split(",")
                    if code.strip()
                }
                if codes:
                    self.suppressions[token.start[0]] = codes
        #: (line, code) suppressions that absorbed a finding.
        self.used_suppressions: "set[tuple[int, str]]" = set()
        self._scopes: "list[tuple[int, int, str]] | None" = None

    # -- scopes ---------------------------------------------------------
    def _build_scopes(self) -> "list[tuple[int, int, str]]":
        scopes: "list[tuple[int, int, str]]" = []

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    qualname = f"{prefix}{child.name}"
                    end = getattr(child, "end_lineno", child.lineno)
                    scopes.append((child.lineno, end or child.lineno,
                                   qualname))
                    visit(child, f"{qualname}.")
                else:
                    visit(child, prefix)

        if self.tree is not None:
            visit(self.tree, "")
        return scopes

    def context_at(self, line: int) -> str:
        """Qualified name of the innermost def/class enclosing ``line``."""
        if self._scopes is None:
            self._scopes = self._build_scopes()
        best = "<module>"
        best_span = None
        for start, end, qualname in self._scopes:
            if start <= line <= end:
                span = end - start
                if best_span is None or span <= best_span:
                    best, best_span = qualname, span
        return best

    # -- constants ------------------------------------------------------
    def module_constants(self) -> "dict[str, object]":
        """Module-level string / string-tuple constants and aliases.

        Maps name -> ``str`` (string constant), ``tuple[str, ...]``
        (tuple/list of string constants), or ``("alias", name)`` for a
        plain ``X = Y`` rebinding. Used by passes to resolve, e.g.,
        ``os.environ.get(BACKEND_ENV)``.
        """
        constants: "dict[str, object]" = {}
        if self.tree is None:
            return constants
        for node in self.tree.body:
            targets: "list[ast.expr]" = []
            value: "ast.expr | None" = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            resolved = literal_strings(value)
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if resolved is not None:
                    constants[target.id] = resolved
                elif isinstance(value, ast.Name):
                    constants[target.id] = ("alias", value.id)
        return constants

    def import_map(self) -> "dict[str, str]":
        """Local name -> dotted origin for imports in this file.

        ``import numpy as np`` yields ``{"np": "numpy"}``;
        ``from os import environ`` yields ``{"environ": "os.environ"}``.
        """
        imports: "dict[str, str]" = {}
        if self.tree is None:
            return imports
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else
                        alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return imports


def literal_strings(value: ast.expr) -> "object | None":
    """``value`` as a string or tuple-of-strings literal, else None."""
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value
    if isinstance(value, (ast.Tuple, ast.List)):
        items = []
        for element in value.elts:
            if (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                items.append(element.value)
            else:
                return None
        return tuple(items)
    return None


class SourceTree:
    """Every ``*.py`` file under one package root, parsed once."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        rels: "list[str]" = []
        for directory, subdirs, files in os.walk(self.root):
            # In-place pruning only works on a live walk iterator —
            # wrapping os.walk in sorted() would exhaust it first.
            subdirs[:] = sorted(
                name for name in subdirs if name != "__pycache__"
            )
            for filename in sorted(files):
                if filename.endswith(".py"):
                    full = os.path.join(directory, filename)
                    rels.append(
                        os.path.relpath(full, self.root).replace(os.sep, "/")
                    )
        self.files = [SourceFile(self.root, rel) for rel in sorted(rels)]
        self._by_rel = {sf.rel: sf for sf in self.files}

    def file(self, rel: str) -> "SourceFile | None":
        return self._by_rel.get(rel)


class LintContext:
    """Shared state for one selfcheck run: the tree plus the findings.

    Passes report through :meth:`emit`, which applies per-line
    suppressions; the driver turns leftover (unused) suppressions into
    ``SC002`` findings afterwards.
    """

    def __init__(self, tree: SourceTree,
                 env_md_path: "str | None" = None) -> None:
        self.tree = tree
        self.env_md_path = env_md_path
        self.findings: "list[Finding]" = []

    def emit(self, code: str, message: str,
             sf: "SourceFile | None" = None, line: int = 0,
             severity: Severity = Severity.ERROR,
             path: "str | None" = None, context: "str | None" = None) -> None:
        if sf is not None:
            disabled = sf.suppressions.get(line, set())
            if code in disabled or "all" in disabled:
                sf.used_suppressions.add(
                    (line, code if code in disabled else "all")
                )
                return
        self.findings.append(Finding(
            severity=severity, code=code, message=message,
            path=(sf.rel if sf is not None else (path or "")),
            line=line,
            context=(
                context if context is not None
                else (sf.context_at(line) if sf is not None and line else "")
            ),
        ))


def resolve_call_target(func: ast.expr,
                        imports: "dict[str, str]") -> "str | None":
    """Dotted origin of a call's callee, e.g. ``os.replace``.

    Resolves through the file's import aliases: with ``import numpy as
    np``, ``np.random.rand`` resolves to ``numpy.random.rand``; with
    ``from time import time as now``, ``now`` resolves to
    ``time.time``. Bare builtins resolve to their own name (``open``).
    Returns None for callees that are not name/attribute chains
    (lambdas, subscripts, call results).
    """
    parts: "list[str]" = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    head, rest = parts[0], parts[1:]
    origin = imports.get(head, head)
    return ".".join([origin] + rest)
