"""Selfcheck driver: parse the tree, run every pass, apply the ratchet."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analyze.diagnostics import Severity
from repro.selfcheck.baseline import apply_baseline, load_baseline
from repro.selfcheck.core import (
    FRAMEWORK_CODES,
    Finding,
    LintContext,
    SourceTree,
)
from repro.selfcheck.passes import ALL_PASSES, PASS_CODES

#: Every code the tool can emit, for suppression validation and docs.
ALL_CODES = {**FRAMEWORK_CODES, **PASS_CODES}


@dataclass
class SelfcheckReport:
    """Outcome of one selfcheck run over one source tree."""

    root: str
    #: Files scanned (rel paths).
    scanned: "list[str]" = field(default_factory=list)
    #: Findings that fail the run (not absorbed by the baseline).
    active: "list[Finding]" = field(default_factory=list)
    #: Findings absorbed by the ratchet baseline (reported, non-fatal).
    grandfathered: "list[Finding]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.active

    def to_payload(self) -> "dict[str, object]":
        def rows(findings: "list[Finding]") -> "list[dict[str, object]]":
            return [
                {
                    "severity": finding.severity.value,
                    "code": finding.code,
                    "path": finding.path,
                    "line": finding.line,
                    "context": finding.context,
                    "message": finding.message,
                }
                for finding in findings
            ]

        return {
            "root": self.root,
            "scanned": len(self.scanned),
            "ok": self.ok,
            "active": rows(self.active),
            "grandfathered": rows(self.grandfathered),
        }


def _finding_order(finding: Finding) -> "tuple[str, int, str, str]":
    return (finding.path, finding.line, finding.code, finding.message)


def run_selfcheck(root: str, baseline_path: "str | None" = None,
                  env_md_path: "str | None" = None) -> SelfcheckReport:
    """Scan ``root``, run every pass, and apply the baseline ratchet."""
    tree = SourceTree(root)
    ctx = LintContext(tree, env_md_path=env_md_path)

    for sf in tree.files:
        if sf.parse_error is not None:
            ctx.emit(
                "SC001",
                f"file does not parse: {sf.parse_error.msg}",
                path=sf.rel, line=sf.parse_error.lineno or 0,
                context="<module>",
            )
    for pass_module in ALL_PASSES:
        pass_module.run(ctx)

    # Suppression hygiene: every suppression comment must have absorbed
    # a finding (SC002) and name a code the tool can emit (SC003).
    for sf in tree.files:
        for line, codes in sorted(sf.suppressions.items()):
            for code in sorted(codes):
                if code != "all" and code not in ALL_CODES:
                    ctx.emit(
                        "SC003",
                        f"suppression names unknown code {code!r}",
                        path=sf.rel, line=line,
                        context=sf.context_at(line),
                    )
                elif (line, code) not in sf.used_suppressions:
                    ctx.emit(
                        "SC002",
                        f"suppression of {code} absorbed no finding — "
                        f"delete the stale comment",
                        path=sf.rel, line=line,
                        context=sf.context_at(line),
                    )

    findings = sorted(ctx.findings, key=_finding_order)

    allowed: "Counter[tuple[str, str, str]]" = Counter()
    if baseline_path is not None:
        allowed = load_baseline(baseline_path)
    match = apply_baseline(findings, allowed)
    active = list(match.active)
    for code, path, context, count in match.stale:
        active.append(Finding(
            severity=Severity.ERROR, code="SC004",
            message=(
                f"baseline entry ({code}, {path!r}, {context!r}) is "
                f"stale — the finding fires {count} fewer time(s) than "
                f"allowed; shrink the baseline "
                f"(python -m repro.selfcheck --write-baseline)"
            ),
            path=path, context=context,
        ))

    return SelfcheckReport(
        root=tree.root,
        scanned=[sf.rel for sf in tree.files],
        active=sorted(active, key=_finding_order),
        grandfathered=list(match.grandfathered),
    )
