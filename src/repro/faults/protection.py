"""Protection semantics and the runtime fault schedules.

Protection is modelled at the word level, the way the hardware would
bolt it onto an SRF bank or a memory interface:

* **parity** — one check bit per 32-bit word. Detects any odd number of
  flipped bits; a detection triggers a refetch/retry that restores the
  word (counted, not timed — see DESIGN.md). Even-bit upsets slip
  through as silent corruption.
* **secded** — a (39,32) single-error-correct / double-error-detect
  Hamming code. Single-bit upsets are corrected in place with zero
  timing impact; double-bit upsets are detected but delivered corrupt
  (counted as both detected and uncorrected).
* **none** — every strike is silent corruption: the corrupted value
  propagates into the computation and, usually, into a failed
  end-to-end functional verification.

The schedules (:class:`BitFlipInjector`, :class:`DropSchedule`,
:class:`DelaySchedule`) translate a :class:`~repro.faults.plan.
FaultPlan`'s absolute event cycles into the component hooks the machine
calls while ticking. All of them are safe under cycle fast-forwarding:
they key decisions off absolute cycle numbers, and strikes only take
effect on accesses — which occur on exactly the same cycles whether or
not quiescent windows are skipped.
"""

from __future__ import annotations

import struct
from collections import deque

#: Check bits added per 32-bit word by each protection scheme.
PROTECTION_CHECK_BITS = {"none": 0, "parity": 1, "secded": 7}


def corrupt_word(value, bit: int):
    """The corrupted form of ``value`` after a strike on ``bit``.

    Integers get the bit XOR-flipped in their 32-bit image; floats get a
    bit of their IEEE-754 *single* image flipped (the machine stores
    32-bit words), falling back to the double image for values outside
    single range; anything else (packed record tuples and other opaque
    payloads) is wrapped in a visibly poisoned marker so the corruption
    cannot pass for real data.
    """
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ (1 << (bit % 32))
    if isinstance(value, float):
        try:
            (image,) = struct.unpack("<I", struct.pack("<f", value))
            image ^= 1 << (bit % 32)
            (flipped,) = struct.unpack("<f", struct.pack("<I", image))
            return flipped
        except (OverflowError, struct.error):
            (image,) = struct.unpack("<Q", struct.pack("<d", value))
            image ^= 1 << (32 + bit % 32)
            (flipped,) = struct.unpack("<d", struct.pack("<Q", image))
            return flipped
    return ("<corrupt>", value)


class WordProtection:
    """Outcome of one protection scheme on a struck word."""

    def __init__(self, kind: str):
        if kind not in PROTECTION_CHECK_BITS:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"unknown protection {kind!r} "
                f"(known: {', '.join(PROTECTION_CHECK_BITS)})"
            )
        self.kind = kind
        self.check_bits = PROTECTION_CHECK_BITS[kind]

    def deliver(self, value, event, stats):
        """Value delivered to the consumer after ``event`` strikes it.

        Updates the detected/corrected/uncorrected counters on
        ``stats`` (a :class:`~repro.machine.stats.FaultStats`).
        """
        stats.injected += 1
        flips = max(1, event.bits)
        if self.kind == "secded":
            if flips == 1:
                stats.corrected += 1
                return value
            stats.detected += 1
            stats.uncorrected += 1
            return self._corrupt(value, event, flips)
        if self.kind == "parity":
            if flips % 2 == 1:
                # Detected: the word is refetched/retried and the good
                # value delivered (retry cost is counted, not timed).
                stats.detected += 1
                stats.retries += 1
                return value
            stats.uncorrected += 1
            return self._corrupt(value, event, flips)
        stats.uncorrected += 1
        return self._corrupt(value, event, flips)

    @staticmethod
    def _corrupt(value, event, flips: int):
        for offset in range(flips):
            value = corrupt_word(value, event.bit + offset)
        return value


class BitFlipInjector:
    """Turns cycle-scheduled strikes into corrupted (or protected) reads.

    :meth:`advance` arms every event whose cycle has been reached;
    :meth:`filter` applies one armed strike to the word being read.
    ``armed`` is the cheap guard the hot read paths check before paying
    for a call.
    """

    def __init__(self, events, protection: str, stats):
        self._pending = deque(sorted(events, key=lambda e: e.cycle))
        self._armed = deque()
        self.protection = WordProtection(protection)
        self.stats = stats

    @property
    def armed(self) -> bool:
        return bool(self._armed)

    @property
    def exhausted(self) -> bool:
        return not self._pending and not self._armed

    def advance(self, cycle: int) -> None:
        """Arm every strike due at or before ``cycle``."""
        pending = self._pending
        while pending and pending[0].cycle <= cycle:
            self._armed.append(pending.popleft())

    def filter(self, value):
        """Apply the oldest armed strike to ``value`` (if any)."""
        if not self._armed:
            return value
        return self.protection.deliver(
            value, self._armed.popleft(), self.stats
        )


class DropSchedule:
    """Cycle windows during which the cross-lane network drops grants."""

    def __init__(self, events):
        self._windows = deque(sorted(
            (e.cycle, e.cycle + max(1, e.duration)) for e in events
        ))
        self._current_end = -1

    def active(self, cycle: int) -> bool:
        """Whether a drop window covers ``cycle``.

        Keyed off absolute cycles so skipped (quiescent) cycles cannot
        shift a window.
        """
        windows = self._windows
        while windows and windows[0][0] <= cycle:
            _start, end = windows.popleft()
            if end > self._current_end:
                self._current_end = end
        return cycle < self._current_end


class DelaySchedule:
    """Extra response latency charged to memory ops issued after events."""

    def __init__(self, events, stats):
        self._pending = deque(sorted(events, key=lambda e: e.cycle))
        self.stats = stats

    def extra_latency(self, cycle: int) -> int:
        """Extra cycles for an op issued at ``cycle`` (consumes events)."""
        extra = 0
        pending = self._pending
        while pending and pending[0].cycle <= cycle:
            extra += max(1, pending.popleft().duration)
        if extra:
            self.stats.delayed_ops += 1
            self.stats.delay_cycles += extra
        return extra
