"""Seeded, deterministic fault schedules.

A :class:`FaultPlan` is a fixed list of :class:`FaultEvent` objects per
fault domain, generated once from a seed. Determinism is the design
constraint that everything else follows from: the same seed and machine
configuration must produce the same injected faults — and therefore the
same statistics — on every run, in every worker process, with
fast-forward on or off.

Bit flips are modelled as *read strikes*: an event due at cycle ``c``
corrupts the word involved in the first access at or after ``c`` (a
particle strike hitting the row being sensed). This keeps injection
meaningful — every strike lands on a word the machine actually touches —
while remaining anchored to chosen cycles.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Fault-domain kinds.
SRF_FLIP = "srf_flip"
DRAM_FLIP = "dram_flip"
XBAR_DROP = "xbar_drop"
MEM_DELAY = "mem_delay"

#: Environment variable carrying fault overrides for the harness presets,
#: e.g. ``REPRO_FAULTS="seed=7,srf=24,dram=24,protection=secded"``.
FAULTS_ENV = "REPRO_FAULTS"

#: REPRO_FAULTS key -> MachineConfig field(s).
_ENV_KEYS = {
    "seed": ("fault_seed",),
    "srf": ("fault_srf_flips",),
    "dram": ("fault_dram_flips",),
    "xbar": ("fault_crossbar_drops",),
    "delay": ("fault_memory_delays",),
    "horizon": ("fault_horizon",),
    "srf_protection": ("srf_protection",),
    "memory_protection": ("memory_protection",),
    "protection": ("srf_protection", "memory_protection"),
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``bit`` selects which bit a flip strikes; ``bits`` how many adjacent
    bits flip (1 = the classic single-event upset, 2 = a double-bit
    upset that defeats SEC correction); ``duration`` how many cycles a
    crossbar drop lasts or how many extra cycles a delayed memory
    response adds.
    """

    cycle: int
    kind: str
    bit: int = 0
    bits: int = 1
    duration: int = 0


class FaultPlan:
    """A deterministic schedule of fault events, split by domain."""

    def __init__(self, events=()):
        events = sorted(events, key=lambda e: (e.cycle, e.kind, e.bit))
        self.srf_flips = [e for e in events if e.kind == SRF_FLIP]
        self.dram_flips = [e for e in events if e.kind == DRAM_FLIP]
        self.crossbar_drops = [e for e in events if e.kind == XBAR_DROP]
        self.memory_delays = [e for e in events if e.kind == MEM_DELAY]
        unknown = [e for e in events if e.kind not in
                   (SRF_FLIP, DRAM_FLIP, XBAR_DROP, MEM_DELAY)]
        if unknown:
            raise ConfigurationError(
                f"unknown fault kind {unknown[0].kind!r}"
            )

    def __len__(self) -> int:
        return (
            len(self.srf_flips) + len(self.dram_flips)
            + len(self.crossbar_drops) + len(self.memory_delays)
        )

    # ------------------------------------------------------------------
    @classmethod
    def seeded(cls, seed: int, *, srf_flips: int = 0, dram_flips: int = 0,
               crossbar_drops: int = 0, memory_delays: int = 0,
               horizon: int = 50_000, double_flip_fraction: float = 0.0,
               max_drop_cycles: int = 8,
               max_delay_cycles: int = 200) -> "FaultPlan":
        """Generate a plan from a seed.

        Event cycles are drawn uniformly from ``[0, horizon)``; the draw
        order is fixed (SRF flips, DRAM flips, drops, delays) so a given
        ``(seed, counts, horizon)`` tuple always yields the same plan.
        ``double_flip_fraction`` turns that fraction of flips into
        double-bit upsets (SEC-DED detects but cannot correct them).
        """
        if horizon <= 0:
            raise ConfigurationError("fault horizon must be positive")
        rng = random.Random(seed)
        events = []

        def flip_bits() -> int:
            if double_flip_fraction and rng.random() < double_flip_fraction:
                return 2
            return 1

        for _ in range(srf_flips):
            events.append(FaultEvent(
                cycle=rng.randrange(horizon), kind=SRF_FLIP,
                bit=rng.randrange(32), bits=flip_bits(),
            ))
        for _ in range(dram_flips):
            events.append(FaultEvent(
                cycle=rng.randrange(horizon), kind=DRAM_FLIP,
                bit=rng.randrange(32), bits=flip_bits(),
            ))
        for _ in range(crossbar_drops):
            events.append(FaultEvent(
                cycle=rng.randrange(horizon), kind=XBAR_DROP,
                duration=1 + rng.randrange(max(1, max_drop_cycles)),
            ))
        for _ in range(memory_delays):
            events.append(FaultEvent(
                cycle=rng.randrange(horizon), kind=MEM_DELAY,
                duration=1 + rng.randrange(max(1, max_delay_cycles)),
            ))
        return cls(events)

    @classmethod
    def from_config(cls, config) -> "FaultPlan | None":
        """Build the plan a :class:`MachineConfig` asks for, or None.

        Returns None when every fault count is zero, so the machine
        carries no fault state at all in the default configuration.
        """
        counts = (
            config.fault_srf_flips, config.fault_dram_flips,
            config.fault_crossbar_drops, config.fault_memory_delays,
        )
        if not any(counts):
            return None
        return cls.seeded(
            config.fault_seed,
            srf_flips=config.fault_srf_flips,
            dram_flips=config.fault_dram_flips,
            crossbar_drops=config.fault_crossbar_drops,
            memory_delays=config.fault_memory_delays,
            horizon=config.fault_horizon,
        )


# ----------------------------------------------------------------------
def fault_overrides_from_env(environ=None) -> dict:
    """Parse ``REPRO_FAULTS`` into :class:`MachineConfig` overrides.

    The variable is a comma-separated ``key=value`` list; keys are
    ``seed``, ``srf``, ``dram``, ``xbar``, ``delay``, ``horizon``,
    ``protection`` (sets both domains), ``srf_protection`` and
    ``memory_protection``. An empty or unset variable yields ``{}`` so
    the presets are untouched by default.
    """
    environ = os.environ if environ is None else environ
    spec = environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return {}
    overrides = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or key not in _ENV_KEYS or not value:
            raise ConfigurationError(
                f"bad {FAULTS_ENV} entry {item!r} "
                f"(known keys: {', '.join(_ENV_KEYS)})"
            )
        for field in _ENV_KEYS[key]:
            if field.endswith("protection"):
                overrides[field] = value
            else:
                try:
                    overrides[field] = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"{FAULTS_ENV}: {key} needs an integer, got "
                        f"{value!r}"
                    ) from None
    return overrides
