"""Deterministic fault injection and protection modelling.

The successor machines of the paper's lineage (Merrimac-class stream
supercomputers) run stream register files at scales where soft errors,
dropped network grants, and slow memory parts are routine. This package
lets the simulator inject such faults deterministically and model the
parity / SEC-DED protection hardware that detects or corrects them:

* :class:`~repro.faults.plan.FaultPlan` — a seeded schedule of fault
  events (SRF / DRAM bit flips, crossbar grant drops, delayed memory
  responses), built from :class:`~repro.config.machine.MachineConfig`
  knobs or the ``REPRO_FAULTS`` environment variable;
* :mod:`repro.faults.protection` — per-word parity (detect + refetch)
  and SEC-DED ECC (correct in place) semantics, plus the cycle-driven
  injector/drop/delay schedules the machine components consume.

With every knob at its default the machine contains no fault state at
all and tier-1 statistics are bit-identical to the unprotected build.
"""

from repro.faults.plan import (
    DRAM_FLIP,
    FAULTS_ENV,
    MEM_DELAY,
    SRF_FLIP,
    XBAR_DROP,
    FaultEvent,
    FaultPlan,
    fault_overrides_from_env,
)
from repro.faults.protection import (
    PROTECTION_CHECK_BITS,
    BitFlipInjector,
    DelaySchedule,
    DropSchedule,
    WordProtection,
    corrupt_word,
)

__all__ = [
    "BitFlipInjector",
    "DRAM_FLIP",
    "DelaySchedule",
    "DropSchedule",
    "FAULTS_ENV",
    "FaultEvent",
    "FaultPlan",
    "MEM_DELAY",
    "PROTECTION_CHECK_BITS",
    "SRF_FLIP",
    "WordProtection",
    "XBAR_DROP",
    "corrupt_word",
    "fault_overrides_from_env",
]
