"""On-chip cache substrate for the paper's ``Cache`` configuration."""

from repro.cache.cache import BankedCache, CacheAccessResult, CacheStats
from repro.cache.lru import LruSet

__all__ = ["BankedCache", "CacheAccessResult", "CacheStats", "LruSet"]
