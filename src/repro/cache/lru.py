"""LRU replacement state for one cache set."""

from __future__ import annotations

from repro.errors import MemorySystemError


class LruSet:
    """One set of a set-associative cache with true-LRU replacement.

    Lines are identified by tag. ``touch`` moves a tag to MRU position;
    ``victim`` reports the LRU tag that would be evicted.
    """

    def __init__(self, ways: int):
        if ways <= 0:
            raise MemorySystemError("a cache set needs at least one way")
        self.ways = ways
        self._order = []  # tags, LRU first
        self._dirty = set()

    def lookup(self, tag) -> bool:
        """True and promote to MRU if ``tag`` is resident."""
        if tag in self._order:
            self._order.remove(tag)
            self._order.append(tag)
            return True
        return False

    @property
    def full(self) -> bool:
        return len(self._order) >= self.ways

    def victim(self):
        """Tag that would be evicted next, or None if the set has space."""
        if not self.full:
            return None
        return self._order[0]

    def insert(self, tag) -> "tuple | None":
        """Install ``tag`` as MRU; returns ``(victim_tag, was_dirty)`` or None."""
        if tag in self._order:
            raise MemorySystemError(f"tag {tag} already resident")
        evicted = None
        if self.full:
            victim = self._order.pop(0)
            evicted = (victim, victim in self._dirty)
            self._dirty.discard(victim)
        self._order.append(tag)
        return evicted

    def mark_dirty(self, tag) -> None:
        if tag not in self._order:
            raise MemorySystemError(f"tag {tag} not resident")
        self._dirty.add(tag)

    def is_dirty(self, tag) -> bool:
        return tag in self._dirty

    def resident_tags(self) -> list:
        """Tags currently resident, LRU first (for inspection/tests)."""
        return list(self._order)
