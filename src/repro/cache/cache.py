"""Banked set-associative cache — the paper's ``Cache`` configuration.

The Cache machine backs its sequential-only SRF with a 128 KB, 4-way,
4-bank on-chip cache with 2-word lines, LRU replacement and 16 GB/s of
bandwidth (Table 3), mirroring the vector-cache studies the paper cites
([20]–[23]). Two paper-critical behaviours live here:

* the cache stores *redundant* copies of data that is also in the SRF
  (which is why its area overhead is 100%–150% of the SRF, §5);
* "caching is only performed for streams with potential for temporal
  locality in order to minimize cache pollution" — the memory controller
  consults the cache only for ops marked cacheable.

The cache is a timing *filter* in front of DRAM: a hit consumes cache
bandwidth only; a miss additionally fetches a line from DRAM (and writes
back a dirty victim), which is how off-chip traffic reduction shows up
in Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.lru import LruSet
from repro.config.machine import MachineConfig
from repro.errors import MemorySystemError


@dataclass
class CacheStats:
    """Hit/miss and traffic counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fill_words: int = 0
    writeback_words: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of one word access: hit flag and DRAM words it caused."""

    hit: bool
    dram_read_words: int
    dram_writeback_words: int
    #: Word address of the line fill (line base), when a fill occurred.
    fill_base: "int | None" = None
    #: Word address of the evicted dirty line, when a writeback occurred.
    writeback_base: "int | None" = None

    @property
    def dram_words(self) -> int:
        return self.dram_read_words + self.dram_writeback_words


class BankedCache:
    """Timing/functional model of the Table 3 cache.

    Data values are not duplicated here — the functional contents always
    live in :class:`~repro.memory.mainmem.MainMemory`; the cache tracks
    residency and dirtiness per line, which is all the timing model needs
    (write-allocate, write-back policy).

    Banking: sets are interleaved across ``cache_banks`` banks. Bank
    conflicts are folded into the controller's aggregate cache-bandwidth
    budget (16 GB/s = 4 words/cycle), which Table 3 quotes as the peak
    across all banks; per-bank access counters are kept for inspection.
    """

    def __init__(self, config: MachineConfig):
        if not config.has_cache:
            raise MemorySystemError(
                f"machine '{config.name}' is configured without a cache"
            )
        self.line_words = config.cache_line_words
        self.num_sets = config.cache_sets
        self.ways = config.cache_associativity
        self.banks = config.cache_banks
        self.hit_latency = config.cache_hit_latency
        self.words_per_cycle = config.cache_words_per_cycle
        self._sets = [LruSet(self.ways) for _ in range(self.num_sets)]
        self.bank_accesses = [0] * self.banks
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _locate(self, addr: int) -> tuple:
        """Map a word address to (set_index, tag, bank)."""
        if addr < 0:
            raise MemorySystemError(f"negative cache address {addr}")
        line = addr // self.line_words
        set_index = line % self.num_sets
        tag = line // self.num_sets
        bank = set_index % self.banks
        return set_index, tag, bank

    def probe(self, addr: int) -> bool:
        """Non-destructive residency check (no LRU update, no stats)."""
        set_index, tag, _bank = self._locate(addr)
        return tag in self._sets[set_index].resident_tags()

    def access(self, addr: int, is_write: bool) -> CacheAccessResult:
        """Perform one word access, allocating on miss.

        Returns the DRAM traffic the access induced: a line fill on miss
        plus a dirty-line writeback when the victim was modified.
        """
        set_index, tag, bank = self._locate(addr)
        self.bank_accesses[bank] += 1
        self.stats.accesses += 1
        cache_set = self._sets[set_index]
        if cache_set.lookup(tag):
            self.stats.hits += 1
            if is_write:
                cache_set.mark_dirty(tag)
            return CacheAccessResult(True, 0, 0)
        self.stats.misses += 1
        evicted = cache_set.insert(tag)
        writeback = 0
        writeback_base = None
        if evicted is not None and evicted[1]:
            writeback = self.line_words
            self.stats.writeback_words += writeback
            victim_line = evicted[0] * self.num_sets + set_index
            writeback_base = victim_line * self.line_words
        fill = self.line_words
        fill_base = (addr // self.line_words) * self.line_words
        if is_write:
            cache_set.mark_dirty(tag)
            # Streaming stores write whole (short) lines: allocate
            # without fetching — no fill traffic on a write miss.
            fill = 0
            fill_base = None
        self.stats.fill_words += fill
        return CacheAccessResult(
            False, fill, writeback,
            fill_base=fill_base, writeback_base=writeback_base,
        )

    def flush(self) -> int:
        """Invalidate everything; returns dirty words written back."""
        writeback = 0
        for cache_set in self._sets:
            for tag in cache_set.resident_tags():
                if cache_set.is_dirty(tag):
                    writeback += self.line_words
        self._sets = [LruSet(self.ways) for _ in range(self.num_sets)]
        self.stats.writeback_words += writeback
        return writeback
