"""Shared exit-code convention for the repo's checker CLIs.

``python -m repro.analyze`` (stream-program static analysis) and
``python -m repro.selfcheck`` (simulator-source self-check) gate CI and
are scripted against; both follow one documented convention:

``EXIT_CLEAN`` (0)
    The checker ran to completion and found no error-level finding.
``EXIT_FINDINGS`` (1)
    The checker ran to completion and at least one error-level finding
    (or a ratchet/baseline violation) survived.
``EXIT_USAGE`` (2)
    The invocation itself was wrong (unknown flag, unknown app/config,
    unreadable path). Argparse's native usage failures also exit 2, so
    every bad invocation lands here regardless of which layer rejects
    it.

The harness CLI (``python -m repro.harness``) shares 0/1/2 and extends
the convention with 130 for an interrupted-and-drained sweep; see
:mod:`repro.harness.__main__`.
"""

from __future__ import annotations

#: Checker completed; no error-level findings.
EXIT_CLEAN = 0

#: Checker completed; error-level findings (or baseline violations).
EXIT_FINDINGS = 1

#: Bad invocation (usage error); nothing was checked.
EXIT_USAGE = 2
