"""repro — reproduction of "Stream Register Files with Indexed Access"
(Jayasena, Erez, Ahn, Dally; HPCA 2004).

A cycle-level stream-processor simulator with sequential, indexed
(ISRF1 / ISRF4 / cross-lane), and cache-backed SRF organisations, a
KernelC-style kernel DSL with a modulo scheduler, area/energy models,
and the paper's complete benchmark suite.

Typical entry points::

    from repro.config import isrf4_config
    from repro.machine import StreamProcessor
    from repro.kernel import KernelBuilder
    from repro.harness import figure11, headline

See README.md for a walkthrough and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
