"""Per-cluster execution resources for the modulo scheduler.

Table 3 / Section 5: "All machine configurations assume 4 fully
pipelined functional units which support integer and floating-point add
and multiply ops, and a single unpipelined divider unit per lane."
Stream-buffer access and the inter-cluster network port are also
per-cycle resources, and each indexed stream owns one address-FIFO port
(the paper's one-access-per-stream-per-cycle limit, §5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.machine import MachineConfig
from repro.errors import ScheduleError
from repro.kernel.ir import Kernel
from repro.kernel.ops import OpKind, ResourceClass


@dataclass(frozen=True)
class ClusterResources:
    """Issue-slot counts per cluster per cycle."""

    alus: int = 4
    dividers: int = 1
    #: Simultaneous stream-buffer accesses per cluster per cycle
    #: ("may access multiple stream buffers at once", §4.3).
    stream_ports: int = 4
    comm_ports: int = 1

    @classmethod
    def from_config(cls, config: MachineConfig) -> "ClusterResources":
        return cls(
            alus=config.alus_per_cluster,
            dividers=config.dividers_per_cluster,
        )

    def count(self, key) -> int:
        """Units available for a resource key.

        Keys are either a :class:`ResourceClass` or, for index ports,
        the tuple ``(ResourceClass.INDEX_PORT, stream_name)``.
        """
        if isinstance(key, tuple):
            if key[0] is ResourceClass.INDEX_PORT:
                return 1
            raise ScheduleError(f"unknown resource key {key!r}")
        if key is ResourceClass.ALU:
            return self.alus
        if key is ResourceClass.DIVIDER:
            return self.dividers
        if key is ResourceClass.STREAM_PORT:
            return self.stream_ports
        if key is ResourceClass.COMM:
            return self.comm_ports
        raise ScheduleError(f"unknown resource key {key!r}")


def resource_key(op):
    """Reservation-table key of one op, or None if it needs no slot."""
    resource = op.spec.resource
    if resource is ResourceClass.NONE:
        return None
    if resource is ResourceClass.INDEX_PORT:
        return (ResourceClass.INDEX_PORT, op.stream.name)
    return resource


def resource_usage(kernel: Kernel) -> dict:
    """Reserved cycles per resource key over one iteration."""
    usage = {}
    for op in kernel.ops:
        key = resource_key(op)
        if key is None:
            continue
        usage[key] = usage.get(key, 0) + op.spec.reserved_cycles
    return usage


def min_ii_resources(kernel: Kernel, resources: ClusterResources) -> int:
    """ResMII: the resource-constrained lower bound on the II."""
    bound = 1
    for key, used in resource_usage(kernel).items():
        units = resources.count(key)
        bound = max(bound, -(-used // units))
    # Ops whose unpipelined reservation exceeds the II can never fit.
    for op in kernel.ops:
        bound = max(bound, op.spec.reserved_cycles)
    return bound


#: Which op kinds create comm-network activity (used by the executor to
#: mark inter-cluster-busy cycles for the cross-lane return network).
COMM_KINDS = (OpKind.COMM,)
