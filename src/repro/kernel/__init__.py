"""Kernel subsystem: KernelC-style DSL, interpreter, modulo scheduler."""

from repro.kernel.builder import KernelBuilder
from repro.kernel.interpreter import (
    ExecutionContext,
    IterationTrace,
    KernelInterpreter,
)
from repro.kernel.ir import Carry, DependenceEdge, Kernel, KernelStream, Op
from repro.kernel.kernelc import KernelCError, compile_kernelc
from repro.kernel.ops import OP_SPECS, OpKind, OpSpec, ResourceClass, spec_of
from repro.kernel.resources import ClusterResources, min_ii_resources
from repro.kernel.schedule import StaticSchedule
from repro.kernel.scheduler import ModuloScheduler, min_ii_recurrence

__all__ = [
    "Carry",
    "ClusterResources",
    "DependenceEdge",
    "ExecutionContext",
    "IterationTrace",
    "Kernel",
    "KernelBuilder",
    "KernelCError",
    "KernelInterpreter",
    "KernelStream",
    "ModuloScheduler",
    "OP_SPECS",
    "Op",
    "OpKind",
    "OpSpec",
    "ResourceClass",
    "StaticSchedule",
    "min_ii_recurrence",
    "min_ii_resources",
    "spec_of",
    "compile_kernelc",
]
