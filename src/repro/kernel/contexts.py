"""Ready-made execution contexts for running kernels standalone.

:class:`ListContext` backs kernel streams with plain Python lists, which
is how golden-reference runs and unit tests execute kernels without the
full machine. The machine-level executor provides its own context wired
to SRF storage.
"""

from __future__ import annotations

from repro.errors import ExecutionError
from repro.kernel.interpreter import ExecutionContext
from repro.kernel.ir import KernelStream


class ListContext(ExecutionContext):
    """List-backed stream data for standalone kernel execution.

    * sequential inputs: ``bind_input(stream, per_lane_lists)``;
    * sequential outputs: collected into ``outputs[stream.name]``
      (one list per lane);
    * in-lane indexed streams: ``bind_table(stream, per_lane_tables)``
      (one table per lane — e.g. a replicated lookup table);
    * cross-lane indexed streams: ``bind_global(stream, table)``.

    Indexed writes mutate the bound tables in place.
    """

    def __init__(self, lanes: int):
        self.lanes = lanes
        self._inputs = {}
        self._cursors = {}
        self.outputs = {}
        self._lane_tables = {}
        self._global_tables = {}

    # -- binding ---------------------------------------------------------
    def bind_input(self, stream: KernelStream, per_lane) -> None:
        per_lane = [list(lane_data) for lane_data in per_lane]
        if len(per_lane) != self.lanes:
            raise ExecutionError(
                f"{stream.name}: need data for {self.lanes} lanes"
            )
        self._inputs[stream.name] = per_lane
        self._cursors[stream.name] = 0

    def bind_table(self, stream: KernelStream, per_lane_tables) -> None:
        tables = [list(t) for t in per_lane_tables]
        if len(tables) != self.lanes:
            raise ExecutionError(
                f"{stream.name}: need a table per lane"
            )
        self._lane_tables[stream.name] = tables

    def bind_global(self, stream: KernelStream, table) -> None:
        self._global_tables[stream.name] = list(table)

    # -- ExecutionContext ------------------------------------------------
    def seq_read(self, stream: KernelStream) -> list:
        try:
            data = self._inputs[stream.name]
        except KeyError:
            raise ExecutionError(f"{stream.name}: no input bound") from None
        cursor = self._cursors[stream.name]
        values = []
        for lane in range(self.lanes):
            lane_data = data[lane]
            if cursor >= len(lane_data):
                raise ExecutionError(
                    f"{stream.name}: lane {lane} exhausted at {cursor}"
                )
            values.append(lane_data[cursor])
        self._cursors[stream.name] = cursor + 1
        return values

    def seq_write(self, stream: KernelStream, lane_values) -> None:
        sink = self.outputs.setdefault(
            stream.name, [[] for _ in range(self.lanes)]
        )
        for lane, value in enumerate(lane_values):
            sink[lane].append(value)

    def idx_read(self, stream: KernelStream, lane: int, record_index: int):
        if stream.name in self._lane_tables:
            table = self._lane_tables[stream.name][lane]
        elif stream.name in self._global_tables:
            table = self._global_tables[stream.name]
        else:
            raise ExecutionError(f"{stream.name}: no table bound")
        try:
            return table[record_index]
        except IndexError:
            raise ExecutionError(
                f"{stream.name}: index {record_index} out of range"
            ) from None

    def idx_write(self, stream: KernelStream, lane: int, record_index: int,
                  value) -> None:
        if stream.name in self._lane_tables:
            table = self._lane_tables[stream.name][lane]
        elif stream.name in self._global_tables:
            table = self._global_tables[stream.name]
        else:
            raise ExecutionError(f"{stream.name}: no table bound")
        if not 0 <= record_index < len(table):
            raise ExecutionError(
                f"{stream.name}: index {record_index} out of range"
            )
        table[record_index] = value

    # -- inspection --------------------------------------------------------
    def output(self, stream_name: str) -> list:
        """Per-lane collected output lists for a stream."""
        try:
            return self.outputs[stream_name]
        except KeyError:
            raise ExecutionError(
                f"no output collected for {stream_name!r}"
            ) from None

    def table(self, stream_name: str, lane: "int | None" = None) -> list:
        """Current contents of a bound table."""
        if stream_name in self._lane_tables:
            if lane is None:
                raise ExecutionError(f"{stream_name}: specify a lane")
            return list(self._lane_tables[stream_name][lane])
        if stream_name in self._global_tables:
            return list(self._global_tables[stream_name])
        raise ExecutionError(f"no table bound for {stream_name!r}")
