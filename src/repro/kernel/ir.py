"""Kernel intermediate representation.

A kernel is the dataflow graph of ONE iteration of its (software
pipelined) inner loop, exactly the granularity the paper's scheduler
works at: the graph's operations are placed into a modulo schedule, and
successive iterations are overlapped II cycles apart.

The IR is deliberately small:

* :class:`Op` — one operation; operands are other ops (SSA-style), so
  construction order is automatically a topological order of the acyclic
  part of the graph;
* :class:`Carry` — a loop-carried register: reading it inside the graph
  is an :data:`OpKind.CARRY` op, and :meth:`KernelStream`-independent
  back edges are formed by assigning its ``update`` op, which creates a
  distance-1 dependence (the recurrences that make Rijndael and Sort
  schedule lengths grow with address-data separation in Figure 14);
* :class:`KernelStream` — a formal stream parameter (Table 1 kind),
  bound to a concrete SRF stream only at execution time.

Functional payloads are plain Python callables stored on ARITH/MUL/DIV
ops, so the same graph that the scheduler times is the one the
interpreter executes on real data.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.descriptors import StreamKind
from repro.errors import KernelBuildError
from repro.kernel.ops import OpKind, OpSpec, spec_of

_op_ids = itertools.count()

#: Lowering table for the vector backend (:mod:`repro.machine.vector`):
#: maps an :attr:`Op.algebra` tag to the NumPy ufunc with *identical*
#: semantics on the value domains kernels use. Only tags whose ufunc is
#: bit-exact against the scalar payload are listed — ``select`` lowers
#: to a mask (``np.where``) rather than a ufunc, and division keeps its
#: Python semantics (``ZeroDivisionError``), so neither appears here.
#: ``mod`` matches because both Python ``%`` and ``np.remainder`` are
#: floored; the vector engine additionally restricts it to integer
#: columns with non-zero divisors. An untagged (opaque) payload has no
#: entry and is evaluated by calling it, exactly as the interpreter
#: does.
ALGEBRA_UFUNCS: "dict[str, np.ufunc]" = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "xor": np.bitwise_xor,
    "mod": np.remainder,
}


@dataclass(frozen=True)
class KernelStream:
    """A formal stream parameter of a kernel (paper Table 1 types)."""

    name: str
    kind: StreamKind
    record_words: int = 1

    def __post_init__(self) -> None:
        if self.record_words <= 0:
            raise KernelBuildError(f"{self.name}: record_words must be >= 1")


class Op:
    """One IR operation (also usable as an SSA value)."""

    def __init__(self, kind: OpKind, operands=(), payload=None,
                 stream: "KernelStream | None" = None, name: str = "",
                 value=None, algebra: "str | None" = None):
        self.op_id = next(_op_ids)
        self.kind = kind
        self.operands = list(operands)
        self.payload = payload  # functional callable for ARITH/MUL/DIV
        self.stream = stream  # for stream ops
        self.name = name or f"{kind.value}_{self.op_id}"
        self.value = value  # for CONST
        self.carry: "Carry | None" = None  # for CARRY reads
        #: Known algebraic semantics of the payload ("add", "sub", "mul",
        #: ...), set by the builder helpers whose payloads it describes.
        #: ``None`` means the payload is an opaque callable; the static
        #: index analysis (repro.analyze) treats such values as
        #: unbounded rather than guessing.
        self.algebra = algebra

    @property
    def spec(self) -> OpSpec:
        return spec_of(self.kind)

    def __repr__(self) -> str:
        return f"<Op {self.name}>"


class Carry:
    """A loop-carried register (initialised once, updated each iteration)."""

    def __init__(self, init_value, name: str):
        self.init_value = init_value
        self.name = name
        self.read_op: "Op | None" = None
        self.update_op: "Op | None" = None

    def __repr__(self) -> str:
        return f"<Carry {self.name}>"


@dataclass
class DependenceEdge:
    """A scheduling dependence: ``sink`` at least ``latency`` cycles after
    ``source``, ``distance`` iterations later."""

    source: Op
    sink: Op
    latency: int
    distance: int = 0


@dataclass(eq=False)
class Kernel:
    """A complete kernel: streams, ops in topological order, carries.

    Kernels compare (and hash) by identity: a kernel's ops carry
    process-unique ``op_id``s, so two structurally identical kernels are
    still distinct schedulable entities — and identity hashing lets
    machine-level caches key on the kernel object itself instead of the
    recyclable ``id()`` of a possibly-collected object.
    """

    name: str
    ops: list = field(default_factory=list)
    streams: dict = field(default_factory=dict)  # name -> KernelStream
    carries: list = field(default_factory=list)

    def stream_ops(self, *kinds) -> list:
        """All ops of the given stream-related kinds, in program order."""
        wanted = set(kinds)
        return [op for op in self.ops if op.kind in wanted]

    def validate(self) -> None:
        """Check structural invariants; raises KernelBuildError."""
        ids = {op.op_id for op in self.ops}
        seen = set()
        for op in self.ops:
            for operand in op.operands:
                if operand.op_id not in ids:
                    raise KernelBuildError(
                        f"{self.name}: {op.name} uses {operand.name} which "
                        "is not part of this kernel"
                    )
                if operand.op_id not in seen and operand.kind is not OpKind.CARRY:
                    raise KernelBuildError(
                        f"{self.name}: {op.name} uses {operand.name} before "
                        "definition (graph must be built in order)"
                    )
            seen.add(op.op_id)
        carry_set = set(map(id, self.carries))
        for carry in self.carries:
            if carry.update_op is None:
                raise KernelBuildError(
                    f"{self.name}: carry {carry.name} never updated"
                )
            if carry.update_op.op_id not in ids:
                raise KernelBuildError(
                    f"{self.name}: carry {carry.name} updated by "
                    f"{carry.update_op.name}, which is not part of this "
                    "kernel"
                )
        registered = set(map(id, self.streams.values()))
        for op in self.ops:
            if op.kind in (OpKind.SEQ_READ, OpKind.SEQ_WRITE, OpKind.IDX_ISSUE,
                           OpKind.IDX_DATA, OpKind.IDX_WRITE):
                if op.stream is None:
                    raise KernelBuildError(
                        f"{self.name}: {op.name} has no stream"
                    )
                if id(op.stream) not in registered:
                    raise KernelBuildError(
                        f"{self.name}: {op.name} accesses stream "
                        f"{op.stream.name!r} which is not declared on this "
                        "kernel"
                    )
            elif op.kind is OpKind.CARRY:
                if op.carry is None or id(op.carry) not in carry_set:
                    raise KernelBuildError(
                        f"{self.name}: {op.name} reads a carry that is not "
                        "declared on this kernel"
                    )

    # ------------------------------------------------------------------
    def dependence_edges(self, inlane_separation: int,
                         crosslane_separation: int,
                         stream_capacity_words: int = 8) -> list:
        """All scheduling dependences, including loop-carried back edges.

        ``*_separation`` set the issue->data latency of indexed reads —
        the Section 5.4 knob. Cross-lane streams use the larger value.

        ``stream_capacity_words`` bounds each indexed read stream's
        outstanding accesses: an access can only be issued once the
        access ``capacity`` records before it has been consumed (the
        reorder buffer holds ``stream_buffer_words`` words per lane per
        stream). Without these capacity back-edges a schedule could
        demand more in-flight data than the buffer holds, which on the
        lock-stepped machine is a deadlock, not a stall.
        """
        edges = []
        for op in self.ops:
            for operand in op.operands:
                if operand.kind is OpKind.CARRY:
                    # Carry reads are register reads: available at cycle 0
                    # of the iteration; the true dependence is the back
                    # edge from the update (added below).
                    continue
                latency = operand.spec.latency
                if op.kind is OpKind.IDX_DATA and operand.kind is OpKind.IDX_ISSUE:
                    latency = (
                        crosslane_separation
                        if operand.stream.kind is StreamKind.CROSSLANE_INDEXED_READ
                        else inlane_separation
                    )
                edges.append(DependenceEdge(operand, op, latency, 0))
        for carry in self.carries:
            update = carry.update_op
            for op in self.ops:
                if any(
                    operand.kind is OpKind.CARRY and operand.carry is carry
                    for operand in op.operands
                ):
                    edges.append(
                        DependenceEdge(update, op, update.spec.latency, 1)
                    )
        edges.extend(self._capacity_edges(stream_capacity_words))
        return edges

    def _capacity_edges(self, capacity_words: int) -> list:
        """Reorder-buffer capacity constraints per indexed read stream."""
        edges = []
        per_stream = {}
        for op in self.ops:
            if op.kind in (OpKind.IDX_ISSUE, OpKind.IDX_DATA):
                issues, datas = per_stream.setdefault(
                    op.stream.name, ([], [])
                )
                (issues if op.kind is OpKind.IDX_ISSUE else datas).append(op)
        for issues, datas in per_stream.values():
            count = len(issues)
            if count != len(datas) or count == 0:
                continue
            record_words = issues[0].stream.record_words
            capacity = max(1, capacity_words // record_words)
            for r in range(count):
                target = r + capacity
                distance, index = divmod(target, count)
                # data_r must be consumed before issue_{r+capacity}
                # (distance iterations later) can enter the FIFO.
                edges.append(
                    DependenceEdge(datas[r], issues[index], 0, distance)
                )
        return edges
