"""Operation vocabulary of the kernel IR.

Each cluster of the simulated machine has the Table 3 execution
resources: 4 fully pipelined ALUs supporting integer and floating-point
add and multiply, one unpipelined divider, a port to the inter-cluster
network, and access to the stream buffers. Every IR operation names an
:class:`OpKind`, and :data:`OP_SPECS` maps kinds to the functional-unit
class, latency, and pipelining behaviour the scheduler must respect.

Latencies follow the Imagine-class numbers the paper's toolchain used:
short pipelined arithmetic, a long blocking divide, and a few cycles for
an inter-cluster hop. The address-to-data latency of an indexed SRF read
is *not* a property of the issue op — it is the schedule-time
separation knob studied in Section 5.4, applied to the issue->data edge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ResourceClass(enum.Enum):
    """Per-cluster functional-unit classes a slot can occupy."""

    ALU = "alu"
    DIVIDER = "divider"
    STREAM_PORT = "stream_port"  # stream-buffer access slot
    COMM = "comm"  # inter-cluster network send port
    INDEX_PORT = "index_port"  # per-indexed-stream address FIFO port
    NONE = "none"  # consumes no issue resource (constants, carries)


class OpKind(enum.Enum):
    """All IR operation kinds."""

    CONST = "const"
    LANEID = "laneid"  # the cluster's lane number (free, like a register)
    CARRY = "carry"  # loop-carried register read (phi)
    ARITH = "arith"  # generic ALU op with a functional payload
    LOGIC = "logic"  # single-cycle ALU op (XOR, AND, shifts, extracts)
    MUL = "mul"
    DIV = "div"
    SEQ_READ = "seq_read"  # pop one word/lane from a sequential stream
    SEQ_WRITE = "seq_write"  # push one word/lane to a sequential stream
    IDX_ISSUE = "idx_issue"  # push a record address into an address FIFO
    IDX_DATA = "idx_data"  # pop the corresponding data word(s)
    IDX_WRITE = "idx_write"  # indexed store (address + data into FIFO)
    COMM = "comm"  # inter-cluster permutation/broadcast


@dataclass(frozen=True)
class OpSpec:
    """Scheduling attributes of one op kind."""

    kind: OpKind
    resource: ResourceClass
    latency: int
    pipelined: bool = True

    @property
    def reserved_cycles(self) -> int:
        """Cycles the functional unit is held (latency if unpipelined)."""
        return self.latency if not self.pipelined else 1


#: Inter-cluster hop latency (crossbar traversal, paper §4.5 context).
COMM_LATENCY = 4

OP_SPECS = {
    OpKind.CONST: OpSpec(OpKind.CONST, ResourceClass.NONE, 0),
    OpKind.LANEID: OpSpec(OpKind.LANEID, ResourceClass.NONE, 0),
    OpKind.CARRY: OpSpec(OpKind.CARRY, ResourceClass.NONE, 0),
    OpKind.ARITH: OpSpec(OpKind.ARITH, ResourceClass.ALU, 2),
    OpKind.LOGIC: OpSpec(OpKind.LOGIC, ResourceClass.ALU, 1),
    OpKind.MUL: OpSpec(OpKind.MUL, ResourceClass.ALU, 4),
    OpKind.DIV: OpSpec(OpKind.DIV, ResourceClass.DIVIDER, 16, pipelined=False),
    OpKind.SEQ_READ: OpSpec(OpKind.SEQ_READ, ResourceClass.STREAM_PORT, 1),
    OpKind.SEQ_WRITE: OpSpec(OpKind.SEQ_WRITE, ResourceClass.STREAM_PORT, 1),
    OpKind.IDX_ISSUE: OpSpec(OpKind.IDX_ISSUE, ResourceClass.INDEX_PORT, 1),
    OpKind.IDX_DATA: OpSpec(OpKind.IDX_DATA, ResourceClass.STREAM_PORT, 1),
    OpKind.IDX_WRITE: OpSpec(OpKind.IDX_WRITE, ResourceClass.INDEX_PORT, 1),
    OpKind.COMM: OpSpec(OpKind.COMM, ResourceClass.COMM, COMM_LATENCY),
}


def spec_of(kind: OpKind) -> OpSpec:
    return OP_SPECS[kind]
