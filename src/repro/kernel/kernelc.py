"""A KernelC front-end: compile the paper's §4.7 syntax to kernel IR.

The paper extends the Imagine KernelC language with indexed stream
types and C-array-style indexing (Figure 10, Table 1). This module
implements a front-end for that surface, so the paper's example
compiles verbatim::

    kernel lookup(
        istream<int> in,       // sequential in stream
        idxl_istream<int> LUT, // indexed in stream
        ostream<int> out) {    // seq. out stream
        int a, b, c;
        while (!eos(in)) {
            in >> a;           // sequential stream access
            LUT[a] >> b;       // indexed stream access
            c = foo(a, b);
            out << c;
        }
    }

Supported subset:

* stream parameters of every Table 1 type plus the §7 read-write
  extension (``idxl_iostream``);
* ``int``/``float`` declarations with optional initialisers;
* one ``while (!eos(<stream>))`` loop — the kernel's inner loop;
* statements: ``s >> v;`` (sequential read), ``s[e] >> v;`` (indexed
  read), ``s << e;`` (sequential write), ``s[e] << e;`` (indexed
  write), ``v = e;`` and inter-cluster ``v = comm(e, src);``;
* expressions: ``? :``, ``|| && | ^ & == != < <= > >= << >> + - * / %``,
  unary ``- ! ~``, calls to registered intrinsic functions, variables,
  integer/float literals.

Loop-carried state is *inferred*: a variable read in the loop before
its first in-loop assignment, and assigned somewhere in the loop,
becomes a carry initialised from its declaration — which is exactly how
a CBC chain or a merge pointer is written in C.

Operator cost mapping: ``*`` is a pipelined multiply, ``/``/``%`` use
the unpipelined divider, ``+``/``-`` are 2-cycle ALU ops, and the
bitwise/compare/shift family are 1-cycle logic ops.
"""

from __future__ import annotations

import re

from repro.errors import KernelBuildError
from repro.kernel.builder import KernelBuilder
from repro.kernel.ir import Kernel

_STREAM_TYPES = (
    "istream", "ostream", "idxl_istream", "idxl_ostream",
    "idxl_iostream", "idx_istream",
)

_TOKEN_RE = re.compile(r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<number>0x[0-9a-fA-F]+|\d+\.\d*|\.\d+|\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op><<=?|>>=?|<=|>=|==|!=|&&|\|\||[-+*/%<>=!~&|^?:;,(){}\[\]])
  | (?P<ws>\s+)
""", re.VERBOSE | re.DOTALL)


class KernelCError(KernelBuildError):
    """A syntax or semantic error in KernelC source."""


def _tokenize(source: str) -> list:
    tokens = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise KernelCError(
                f"unexpected character {source[position]!r} at "
                f"offset {position}"
            )
        position = match.end()
        if match.lastgroup in ("ws", "comment"):
            continue
        tokens.append(match.group())
    return tokens


class _Tokens:
    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    def peek(self, ahead: int = 0):
        index = self._pos + ahead
        return self._tokens[index] if index < len(self._tokens) else None

    def next(self):
        token = self.peek()
        if token is None:
            raise KernelCError("unexpected end of input")
        self._pos += 1
        return token

    def expect(self, token: str):
        got = self.next()
        if got != token:
            raise KernelCError(f"expected {token!r}, got {got!r}")
        return got

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self._pos += 1
            return True
        return False

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._tokens)


class _Compiler:
    """Single-pass recursive-descent compiler to the kernel IR."""

    _BUILTIN_INTRINSICS = {
        "min": min,
        "max": max,
        "abs": abs,
    }

    def __init__(self, source: str, intrinsics: "dict | None" = None):
        self.tokens = _Tokens(_tokenize(source))
        self.intrinsics = dict(self._BUILTIN_INTRINSICS)
        self.intrinsics.update(intrinsics or {})
        self.builder: "KernelBuilder | None" = None
        self.streams = {}
        self.variables = {}  # name -> current Op
        self.declared = {}  # name -> init literal value
        self._carries = {}  # name -> carry read Op
        self._in_loop = False
        self._loop_assigned = set()

    # ------------------------------------------------------------------
    def compile(self) -> tuple:
        t = self.tokens
        t.expect("kernel")
        name = t.next()
        self.builder = KernelBuilder(name)
        t.expect("(")
        while not t.accept(")"):
            self._parse_param()
            t.accept(",")
        t.expect("{")
        while not t.accept("}"):
            if t.peek() in ("int", "float"):
                self._parse_declaration()
            elif t.peek() == "while":
                self._parse_loop()
            else:
                self._parse_statement()
        if not t.exhausted:
            raise KernelCError(f"trailing tokens after kernel: {t.peek()!r}")
        for var, carry in self._carries.items():
            self.builder.update(carry, self.variables[var])
        return self.builder.build(), dict(self.streams)

    # ------------------------------------------------------------------
    def _parse_param(self) -> None:
        t = self.tokens
        stream_type = t.next()
        if stream_type not in _STREAM_TYPES:
            raise KernelCError(f"unknown stream type {stream_type!r}")
        t.expect("<")
        t.next()  # element type; records are single words in this subset
        t.expect(">")
        name = t.next()
        declare = getattr(self.builder, stream_type)
        self.streams[name] = declare(name)

    def _parse_declaration(self) -> None:
        t = self.tokens
        t.next()  # int | float
        while True:
            name = t.next()
            init = 0
            if t.accept("="):
                literal = t.next()
                negative = literal == "-"
                if negative:
                    literal = t.next()
                init = float(literal) if "." in literal else int(literal, 0)
                if negative:
                    init = -init
            self.declared[name] = init
            if not t.accept(","):
                break
        t.expect(";")

    def _parse_loop(self) -> None:
        t = self.tokens
        if self._in_loop:
            raise KernelCError("nested loops are not supported")
        t.expect("while")
        t.expect("(")
        t.expect("!")
        t.expect("eos")
        t.expect("(")
        stream = t.next()
        if stream not in self.streams:
            raise KernelCError(f"eos() of unknown stream {stream!r}")
        t.expect(")")
        t.expect(")")
        t.expect("{")
        self._in_loop = True
        while not t.accept("}"):
            if t.peek() == "while":
                raise KernelCError("nested loops are not supported")
            if t.peek() in ("int", "float"):
                self._parse_declaration()
            else:
                self._parse_statement()
        self._in_loop = False

    # ------------------------------------------------------------------
    def _parse_statement(self) -> None:
        t = self.tokens
        name = t.next()
        if name in self.streams:
            stream = self.streams[name]
            if t.accept("["):
                index = self._expression()
                t.expect("]")
                if t.accept(">>"):
                    target = t.next()
                    self._assign(
                        target,
                        self.builder.idx_read(stream, index, name=target),
                    )
                else:
                    t.expect("<<")
                    value = self._expression()
                    self.builder.idx_write(stream, index, value)
            elif t.accept(">>"):
                target = t.next()
                self._assign(target, self.builder.read(stream, name=target))
            else:
                t.expect("<<")
                self.builder.write(stream, self._expression())
            t.expect(";")
            return
        # Plain assignment: name = expr ;
        t.expect("=")
        self._assign(name, self._expression())
        t.expect(";")

    def _assign(self, name: str, value) -> None:
        if name not in self.declared and name not in self.variables:
            raise KernelCError(f"assignment to undeclared variable {name!r}")
        self.variables[name] = value
        if self._in_loop:
            self._loop_assigned.add(name)

    def _read_variable(self, name: str):
        if name in self.variables and (
            not self._in_loop or name in self._loop_assigned
            or name in self._carries
        ):
            return self.variables[name]
        if name in self._carries:
            return self.variables[name]
        if name in self.declared:
            if self._in_loop:
                # Read-before-write inside the loop: loop-carried state.
                carry = self.builder.carry(self.declared[name], name)
                self._carries[name] = carry
                self.variables[name] = carry
                return carry
            value = self.builder.const(self.declared[name], name=name)
            self.variables[name] = value
            return value
        if name in self.variables:
            return self.variables[name]
        raise KernelCError(f"use of undeclared variable {name!r}")

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    _BINARY_LEVELS = [
        ("||",), ("&&",), ("|",), ("^",), ("&",),
        ("==", "!="), ("<", "<=", ">", ">="), ("<<", ">>"),
        ("+", "-"), ("*", "/", "%"),
    ]

    _LOGIC_FNS = {
        "||": lambda a, b: 1 if (a or b) else 0,
        "&&": lambda a, b: 1 if (a and b) else 0,
        "|": lambda a, b: int(a) | int(b),
        "^": lambda a, b: int(a) ^ int(b),
        "&": lambda a, b: int(a) & int(b),
        "==": lambda a, b: 1 if a == b else 0,
        "!=": lambda a, b: 1 if a != b else 0,
        "<": lambda a, b: 1 if a < b else 0,
        "<=": lambda a, b: 1 if a <= b else 0,
        ">": lambda a, b: 1 if a > b else 0,
        ">=": lambda a, b: 1 if a >= b else 0,
        "<<": lambda a, b: int(a) << int(b),
        ">>": lambda a, b: int(a) >> int(b),
        "%": lambda a, b: a % b,
    }

    def _expression(self):
        return self._ternary()

    def _ternary(self):
        condition = self._binary(0)
        if self.tokens.accept("?"):
            if_true = self._expression()
            self.tokens.expect(":")
            if_false = self._expression()
            return self.builder.select(condition, if_true, if_false)
        return condition

    def _binary(self, level: int):
        if level >= len(self._BINARY_LEVELS):
            return self._unary()
        operators = self._BINARY_LEVELS[level]
        left = self._binary(level + 1)
        while self.tokens.peek() in operators:
            # '>>' as a shift is ambiguous with stream reads only in
            # statement position, which is handled before expressions.
            op = self.tokens.next()
            right = self._binary(level + 1)
            left = self._apply(op, left, right)
        return left

    def _apply(self, op: str, left, right):
        b = self.builder
        if op == "+":
            return b.add(left, right)
        if op == "-":
            return b.sub(left, right)
        if op == "*":
            return b.mul(left, right)
        if op == "/":
            return b.div(left, right)
        return b.logic(self._LOGIC_FNS[op], left, right, name=f"op{op}")

    def _unary(self):
        t = self.tokens
        if t.accept("-"):
            return self.builder.logic(lambda a: -a, self._unary(), name="neg")
        if t.accept("!"):
            return self.builder.logic(
                lambda a: 0 if a else 1, self._unary(), name="not"
            )
        if t.accept("~"):
            return self.builder.logic(
                lambda a: ~int(a), self._unary(), name="bnot"
            )
        return self._primary()

    def _primary(self):
        t = self.tokens
        token = t.next()
        if token == "(":
            inner = self._expression()
            t.expect(")")
            return inner
        if re.fullmatch(r"\d+\.\d*|\.\d+|\d+|0x[0-9a-fA-F]+", token):
            value = float(token) if "." in token else int(token, 0)
            return self.builder.const(value)
        if t.peek() == "(":
            return self._call(token)
        if token in self.streams:
            raise KernelCError(
                f"stream {token!r} used as a value (use '>>'/'<<')"
            )
        return self._read_variable(token)

    def _call(self, name: str):
        t = self.tokens
        t.expect("(")
        args = []
        while not t.accept(")"):
            args.append(self._expression())
            t.accept(",")
        if name == "comm":
            if len(args) != 2:
                raise KernelCError("comm(value, source_lane) takes 2 args")
            return self.builder.comm(args[0], args[1])
        if name == "laneid":
            if args:
                raise KernelCError("laneid() takes no arguments")
            return self.builder.laneid()
        if name == "select":
            if len(args) != 3:
                raise KernelCError("select(cond, a, b) takes 3 args")
            return self.builder.select(*args)
        if name not in self.intrinsics:
            raise KernelCError(f"unknown intrinsic {name!r}")
        return self.builder.arith(self.intrinsics[name], *args, name=name)


def compile_kernelc(source: str, intrinsics: "dict | None" = None) -> tuple:
    """Compile KernelC source to ``(Kernel, {name: KernelStream})``.

    ``intrinsics`` maps function names used in the source to Python
    callables (the functional payloads of the generated ALU ops) — the
    stand-in for KernelC's scalar function bodies.
    """
    return _Compiler(source, intrinsics).compile()
