"""Iterative modulo scheduler.

Stand-in for the Imagine communication scheduler ([19] Mattson) used by
the paper (§5.1). The algorithm is classic modulo scheduling:

1. **ResMII** — resource-constrained lower bound: for each functional
   unit class, reserved cycles per iteration divided by unit count.
2. **RecMII** — recurrence-constrained lower bound: the smallest II such
   that every dependence cycle satisfies ``latency_sum <= II *
   distance_sum``. Found by binary search with Bellman–Ford positive-
   cycle detection over edges weighted ``latency - II * distance``.
3. Starting at ``max(ResMII, RecMII)``, ops are placed in topological
   (program) order at their earliest feasible slot, searching one full
   II window in the modulo reservation table; loop-carried (back-edge)
   constraints are verified after placement, and the II is increased on
   failure.

Because indexed reads contribute their address-data *separation* as the
issue->data edge latency, kernels with loop-carried dependences through
index computation (Rijndael, Sort) see their II — the static loop
length of Figure 14 — grow with separation, while software-pipelinable
kernels (FFT, Filter, IGraph) keep a flat II and only grow in pipeline
depth. That is precisely the behaviour Section 5.4 measures.
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.kernel.ir import Kernel
from repro.kernel.ops import OpKind  # noqa: F401 (used in _stream_group)
from repro.kernel.resources import (
    ClusterResources,
    min_ii_resources,
    resource_key,
)
from repro.kernel.schedule import StaticSchedule

#: Hard cap on the II search to guarantee termination.
MAX_II = 4096


def min_ii_recurrence(kernel: Kernel, inlane_separation: int,
                      crosslane_separation: int,
                      stream_capacity_words: int = 8) -> int:
    """RecMII: smallest II compatible with every dependence cycle."""
    edges = kernel.dependence_edges(
        inlane_separation, crosslane_separation, stream_capacity_words
    )
    if not any(e.distance > 0 for e in edges):
        return 1
    # Dependence cycles live entirely within strongly connected
    # components, so the Bellman–Ford checks only need the intra-SCC
    # subgraph — usually a small fraction of a mostly-acyclic kernel.
    node_count, compact = _cycle_subgraph(edges)
    if node_count == 0:
        return 1  # distance>0 edges exist but close no cycle
    # Any dependence cycle with distance >= 1 needs at most
    # II = sum of positive latencies, so the search can start well below
    # MAX_II; a positive cycle surviving that bound has zero distance and
    # would survive MAX_II too (it is unsatisfiable at any II).
    latency_cap = sum(
        latency for _, _, latency, _ in compact if latency > 0
    )
    low, high = 1, min(MAX_II, max(1, latency_cap))
    if _positive_cycle(node_count, compact, high):
        raise ScheduleError(
            f"{kernel.name}: recurrence cannot be satisfied below II={MAX_II}"
        )
    while low < high:
        mid = (low + high) // 2
        if _positive_cycle(node_count, compact, mid):
            low = mid + 1
        else:
            high = mid
    return low


def _cycle_subgraph(edges) -> tuple:
    """Intra-SCC subgraph of the dependence graph, densely renumbered.

    Returns ``(node_count, [(source, sink, latency, distance), ...])``
    keeping only edges whose endpoints share a strongly connected
    component (including self-loops) — exactly the edges that can lie on
    a dependence cycle.
    """
    adjacency = {}
    for edge in edges:
        adjacency.setdefault(edge.source.op_id, []).append(edge.sink.op_id)
        adjacency.setdefault(edge.sink.op_id, [])
    scc_of = _strongly_connected(adjacency)
    kept = [
        e for e in edges
        if scc_of[e.source.op_id] == scc_of[e.sink.op_id]
    ]
    nodes = sorted(
        {e.source.op_id for e in kept} | {e.sink.op_id for e in kept}
    )
    renumber = {op_id: i for i, op_id in enumerate(nodes)}
    compact = [
        (renumber[e.source.op_id], renumber[e.sink.op_id],
         e.latency, e.distance)
        for e in kept
    ]
    return len(nodes), compact


def _strongly_connected(adjacency: dict) -> dict:
    """Iterative Tarjan SCC; returns node -> component id."""
    index = {}
    lowlink = {}
    on_stack = {}
    stack = []
    scc_of = {}
    next_index = 0
    next_scc = 0
    for root in adjacency:
        if root in index:
            continue
        work = [(root, 0)]
        while work:
            node, pointer = work.pop()
            if pointer == 0:
                index[node] = lowlink[node] = next_index
                next_index += 1
                stack.append(node)
                on_stack[node] = True
            descended = False
            neighbors = adjacency[node]
            while pointer < len(neighbors):
                succ = neighbors[pointer]
                pointer += 1
                if succ not in index:
                    work.append((node, pointer))
                    work.append((succ, 0))
                    descended = True
                    break
                if on_stack.get(succ) and index[succ] < lowlink[node]:
                    lowlink[node] = index[succ]
            if descended:
                continue
            if lowlink[node] == index[node]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    scc_of[member] = next_scc
                    if member == node:
                        break
                next_scc += 1
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return scc_of


def _positive_cycle(node_count: int, compact, ii: int) -> bool:
    """Bellman–Ford check: does any cycle have latency > II * distance?"""
    weighted = [
        (source, sink, latency - ii * distance)
        for source, sink, latency, distance in compact
    ]
    # A walk whose accumulated weight exceeds the sum of all positive
    # edge weights must traverse a positive cycle (any acyclic walk is
    # bounded by that sum), so growth past the bound ends the search
    # early instead of running all node_count relaxation rounds.
    bound = sum(weight for _, _, weight in weighted if weight > 0)
    distance = [0.0] * node_count
    for _iteration in range(node_count):
        changed = False
        for source, sink, weight in weighted:
            candidate = distance[source] + weight
            if candidate > distance[sink] + 1e-9:
                distance[sink] = candidate
                changed = True
        if not changed:
            return False
        if max(distance) > bound:
            return True
    return True


class ModuloScheduler:
    """Schedules kernels onto one cluster's resources."""

    def __init__(self, resources: "ClusterResources | None" = None):
        self.resources = resources or ClusterResources()

    def schedule(self, kernel: Kernel, inlane_separation: int = 6,
                 crosslane_separation: int = 20,
                 stream_capacity_words: int = 8) -> StaticSchedule:
        """Produce a legal modulo schedule for ``kernel``."""
        kernel.validate()
        edges = kernel.dependence_edges(
            inlane_separation, crosslane_separation, stream_capacity_words
        )
        ii = max(
            min_ii_resources(kernel, self.resources),
            min_ii_recurrence(kernel, inlane_separation,
                              crosslane_separation, stream_capacity_words),
        )
        while ii <= MAX_II:
            slots = self._try_place(kernel, edges, ii)
            if slots is not None:
                return self._finish(
                    kernel, ii, slots, inlane_separation, crosslane_separation
                )
            ii += 1
        raise ScheduleError(
            f"{kernel.name}: no schedule found up to II={MAX_II}"
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _stream_group(op) -> "tuple | None":
        """Ordering-group key for per-stream FIFO semantics.

        Sequential stream buffers and address FIFOs deliver strictly in
        access order, so all ops of a group must be placed monotonically
        and span at most one II: otherwise a software-pipelined
        iteration's late access would interleave with the next
        iteration's early access and scramble the stream. IDX_ISSUE and
        IDX_WRITE share a group because they share the address FIFO.
        """
        if op.kind in (OpKind.SEQ_READ, OpKind.SEQ_WRITE, OpKind.IDX_DATA):
            return (op.kind, op.stream.name)
        if op.kind in (OpKind.IDX_ISSUE, OpKind.IDX_WRITE):
            return ("fifo", op.stream.name)
        return None

    def _try_place(self, kernel: Kernel, edges, ii: int) -> "dict | None":
        """One placement attempt at a fixed II; None on failure."""
        forward = {}  # sink_id -> list of (source_id, latency, distance)
        for edge in edges:
            forward.setdefault(edge.sink.op_id, []).append(
                (edge.source.op_id, edge.latency, edge.distance)
            )

        def earliest_from_deps(op, placed_slots):
            earliest = 0
            for source_id, latency, distance in forward.get(op.op_id, ()):
                if source_id in placed_slots:
                    earliest = max(
                        earliest,
                        placed_slots[source_id] + latency - ii * distance,
                    )
            return earliest

        # ASAP pre-pass (no resources): group floors ensure a stream
        # group's last member can still be within II of its first.
        asap = {}
        for op in kernel.ops:
            asap[op.op_id] = earliest_from_deps(op, asap)
        group_floor = {}
        for op in kernel.ops:
            group = self._stream_group(op)
            if group is not None:
                floor = max(0, asap[op.op_id] - ii)
                group_floor[group] = max(group_floor.get(group, 0), floor)

        reservations = {}  # key -> occupied slots mod ii
        slots = {}
        group_first = {}
        group_last = {}
        for op in kernel.ops:  # program order is topological (fwd edges)
            earliest = earliest_from_deps(op, slots)
            group = self._stream_group(op)
            if group is not None:
                earliest = max(earliest, group_floor.get(group, 0))
                if group in group_last:
                    earliest = max(earliest, group_last[group])
            placed = self._place_in_window(op, earliest, ii, reservations)
            if placed is None:
                return None
            if group is not None:
                first = group_first.setdefault(group, placed)
                if placed - first > ii:
                    return None  # stream span exceeds one iteration
                group_last[group] = placed
            slots[op.op_id] = placed
        # Verify loop-carried constraints (sources placed after sinks).
        for edge in edges:
            lhs = slots[edge.sink.op_id] - slots[edge.source.op_id]
            if lhs < edge.latency - ii * edge.distance:
                return None
        return slots

    def _place_in_window(self, op, earliest: int, ii: int,
                         reservations: dict) -> "int | None":
        key = resource_key(op)
        if key is None:
            return max(earliest, 0)
        units = self.resources.count(key)
        occupied = reservations.setdefault(key, {})
        hold = op.spec.reserved_cycles
        for offset in range(ii):
            slot = max(earliest, 0) + offset
            cells = [(slot + k) % ii for k in range(min(hold, ii))]
            if hold > ii:
                return None  # unpipelined op cannot fit this II
            if all(occupied.get(cell, 0) < units for cell in cells):
                for cell in cells:
                    occupied[cell] = occupied.get(cell, 0) + 1
                return slot
        return None

    @staticmethod
    def _finish(kernel, ii, slots, inlane_separation, crosslane_separation):
        depth = 0
        comm_slots = set()
        for op in kernel.ops:
            slot = slots[op.op_id]
            depth = max(depth, slot + max(op.spec.latency, 1))
            if op.kind is OpKind.COMM:
                comm_slots.add(slot % ii)
        return StaticSchedule(
            kernel=kernel,
            ii=ii,
            slots=slots,
            depth=depth,
            inlane_separation=inlane_separation,
            crosslane_separation=crosslane_separation,
            comm_slots=frozenset(comm_slots),
        )
