"""Functional execution of kernel graphs.

The interpreter evaluates ONE iteration of a kernel across all lanes in
SIMD lockstep, producing both the real data values (so benchmark outputs
can be verified against references) and an :class:`IterationTrace` — the
exact stream accesses the iteration performs, which the machine-level
executor replays against the cycle-accurate SRF model.

Stream contents are mediated by an :class:`ExecutionContext`, so the
same kernel runs standalone (tests, golden references) or inside the
full processor simulation without modification.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.kernel.ir import Kernel, KernelStream
from repro.kernel.ops import OpKind


class ExecutionContext:
    """Data supply/sink for a kernel run.

    Subclasses provide the four stream accessors. The default
    implementations raise, so a context only implements what its kernel
    uses.
    """

    def seq_read(self, stream: KernelStream) -> list:
        """Next word of ``stream`` for every lane (list of ``lanes``)."""
        raise ExecutionError(f"context cannot read stream {stream.name}")

    def seq_write(self, stream: KernelStream, lane_values: list) -> None:
        """Accept one word per lane for ``stream``."""
        raise ExecutionError(f"context cannot write stream {stream.name}")

    def idx_read(self, stream: KernelStream, lane: int, record_index: int):
        """Value of ``stream[record_index]`` as seen from ``lane``.

        Multi-word records return a tuple of ``record_words`` words.
        """
        raise ExecutionError(f"context cannot index stream {stream.name}")

    def idx_write(self, stream: KernelStream, lane: int, record_index: int,
                  value) -> None:
        """Store ``value`` at ``stream[record_index]`` from ``lane``."""
        raise ExecutionError(f"context cannot index-write {stream.name}")


@dataclass
class IterationTrace:
    """Stream/communication activity of one kernel iteration.

    Entries are ``(op, detail)`` in program order, where detail depends
    on the op kind:

    * SEQ_READ — None (always one word per lane);
    * SEQ_WRITE — per-lane list of values to push;
    * IDX_ISSUE — per-lane record index, or None for predicated-off lanes;
    * IDX_DATA — per-lane word count to pop (0 for predicated-off lanes);
    * IDX_WRITE — per-lane ``(record_index, [words])`` or None;
    * COMM — None.
    """

    iteration: int
    entries: list = field(default_factory=list)

    def by_kind(self, kind: OpKind) -> list:
        return [(op, detail) for op, detail in self.entries if op.kind is kind]


class KernelInterpreter:
    """Evaluates a kernel iteration-by-iteration over ``lanes`` lanes."""

    def __init__(self, kernel: Kernel, lanes: int, context: ExecutionContext):
        kernel.validate()
        self.kernel = kernel
        self.lanes = lanes
        self.context = context
        self.iterations_run = 0
        self._carry_state = {
            carry.name: [carry.init_value] * lanes for carry in kernel.carries
        }
        # CONST/LANEID values never change between iterations (and no op
        # mutates a value list in place), so evaluate them once and seed
        # each iteration's value map with the result.
        self._static_values = {}
        self._dynamic_ops = []
        for op in kernel.ops:
            if op.kind is OpKind.CONST:
                self._static_values[op.op_id] = [op.value] * lanes
            elif op.kind is OpKind.LANEID:
                self._static_values[op.op_id] = list(range(lanes))
            else:
                self._dynamic_ops.append(op)

    def carry_values(self, name: str) -> list:
        """Current per-lane values of a named carry (for app inspection)."""
        try:
            return list(self._carry_state[name])
        except KeyError:
            raise ExecutionError(f"no carry named {name!r}") from None

    # ------------------------------------------------------------------
    def run_iteration(self) -> IterationTrace:
        """Execute one iteration across all lanes; returns its trace."""
        lanes = self.lanes
        trace = IterationTrace(self.iterations_run)
        values = dict(self._static_values)  # op_id -> per-lane list

        for op in self._dynamic_ops:
            kind = op.kind
            if kind in (OpKind.ARITH, OpKind.LOGIC, OpKind.MUL, OpKind.DIV):
                values[op.op_id] = self._apply(op, values)
            elif kind is OpKind.CARRY:
                values[op.op_id] = list(self._carry_state[op.carry.name])
            elif kind is OpKind.SEQ_READ:
                lane_values = self.context.seq_read(op.stream)
                self._expect_width(op, lane_values)
                values[op.op_id] = list(lane_values)
                trace.entries.append((op, None))
            elif kind is OpKind.SEQ_WRITE:
                lane_values = values[op.operands[0].op_id]
                self.context.seq_write(op.stream, list(lane_values))
                values[op.op_id] = lane_values
                trace.entries.append((op, list(lane_values)))
            elif kind is OpKind.IDX_ISSUE:
                indices = self._indices(op, values)
                values[op.op_id] = indices
                trace.entries.append((op, indices))
            elif kind is OpKind.IDX_DATA:
                issue = op.operands[0]
                indices = values[issue.op_id]
                data, counts = [], []
                for lane in range(lanes):
                    if indices[lane] is None:
                        data.append(0)
                        counts.append(0)
                    else:
                        data.append(self.context.idx_read(
                            op.stream, lane, indices[lane]))
                        counts.append(op.stream.record_words)
                values[op.op_id] = data
                trace.entries.append((op, counts))
            elif kind is OpKind.IDX_WRITE:
                detail = self._do_idx_write(op, values)
                values[op.op_id] = [None] * lanes
                trace.entries.append((op, detail))
            elif kind is OpKind.COMM:
                payload = values[op.operands[0].op_id]
                sources = values[op.operands[1].op_id]
                values[op.op_id] = [
                    payload[int(sources[lane]) % lanes] for lane in range(lanes)
                ]
                trace.entries.append((op, None))
            else:  # pragma: no cover - exhaustive over OpKind
                raise ExecutionError(f"unhandled op kind {kind}")

        for carry in self.kernel.carries:
            self._carry_state[carry.name] = list(
                values[carry.update_op.op_id]
            )
        self.iterations_run += 1
        return trace

    def run(self, iterations: int) -> list:
        """Run several iterations; returns their traces."""
        return [self.run_iteration() for _ in range(iterations)]

    # ------------------------------------------------------------------
    def _apply(self, op, values) -> list:
        operands = op.operands
        payload = op.payload
        # Payloads are pure, so the error path below can re-run lane by
        # lane to identify the failing lane for the report.
        try:
            if len(operands) == 2:
                return [
                    payload(x, y)
                    for x, y in zip(values[operands[0].op_id],
                                    values[operands[1].op_id])
                ]
            if len(operands) == 1:
                return [payload(x) for x in values[operands[0].op_id]]
        except Exception:
            pass
        operand_values = [values[operand.op_id] for operand in operands]
        result = []
        for lane in range(self.lanes):
            try:
                result.append(payload(*[v[lane] for v in operand_values]))
            except Exception as exc:
                raise ExecutionError(
                    f"{self.kernel.name}: payload of {op.name} failed on "
                    f"lane {lane}: {exc}"
                ) from exc
        return result

    def _indices(self, op, values) -> list:
        indices = values[op.operands[0].op_id]
        if len(op.operands) > 1:
            predicates = values[op.operands[1].op_id]
        else:
            predicates = [True] * self.lanes
        return [
            int(indices[lane]) if predicates[lane] else None
            for lane in range(self.lanes)
        ]

    def _do_idx_write(self, op, values) -> list:
        indices = values[op.operands[0].op_id]
        data = values[op.operands[1].op_id]
        if len(op.operands) > 2:
            predicates = values[op.operands[2].op_id]
        else:
            predicates = [True] * self.lanes
        detail = []
        for lane in range(self.lanes):
            if not predicates[lane]:
                detail.append(None)
                continue
            record_index = int(indices[lane])
            value = data[lane]
            words = list(value) if isinstance(value, tuple) else [value]
            if len(words) != op.stream.record_words:
                raise ExecutionError(
                    f"{op.name}: record needs {op.stream.record_words} words"
                )
            self.context.idx_write(op.stream, lane, record_index, value)
            detail.append((record_index, words))
        return detail

    def _expect_width(self, op, lane_values) -> None:
        if len(lane_values) != self.lanes:
            raise ExecutionError(
                f"{op.name}: context returned {len(lane_values)} values for "
                f"{self.lanes} lanes"
            )
