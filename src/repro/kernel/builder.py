"""KernelBuilder — the Python stand-in for KernelC (paper §4.7).

The paper extends KernelC with indexed stream types and C-array-style
index syntax (Figure 10). Here a kernel is built programmatically; the
Figure 10 lookup kernel reads:

.. code-block:: python

    b = KernelBuilder("lookup")
    in_s = b.istream("in")
    lut = b.idxl_istream("LUT")
    out = b.ostream("out")
    a = b.read(in_s)                  # in >> a;
    value = b.idx_read(lut, a)        # LUT[a] >> b;
    c = b.arith(foo, a, value)        # c = foo(a, b);
    b.write(out, c)                   # out << c;
    kernel = b.build()

One builder describes ONE iteration of the kernel's inner loop; loop
state lives in carries (``b.carry`` / ``b.update``), which is also how
loop-carried recurrences — the thing that makes Rijndael and Sort
schedules grow with address-data separation in Figure 14 — enter the
dependence graph.
"""

from __future__ import annotations

import operator

from repro.core.descriptors import StreamKind
from repro.errors import KernelBuildError
from repro.kernel.ir import Carry, Kernel, KernelStream, Op
from repro.kernel.ops import OpKind


class KernelBuilder:
    """Incrementally builds a :class:`~repro.kernel.ir.Kernel` graph."""

    def __init__(self, name: str):
        self._kernel = Kernel(name=name)
        self._built = False

    # ------------------------------------------------------------------
    # Stream declarations (paper Table 1)
    # ------------------------------------------------------------------
    def istream(self, name: str, record_words: int = 1) -> KernelStream:
        """Sequential input stream (``istream<T>``)."""
        return self._declare(name, StreamKind.SEQUENTIAL_READ, record_words)

    def ostream(self, name: str, record_words: int = 1) -> KernelStream:
        """Sequential output stream (``ostream<T>``)."""
        return self._declare(name, StreamKind.SEQUENTIAL_WRITE, record_words)

    def idxl_istream(self, name: str, record_words: int = 1) -> KernelStream:
        """In-lane indexed input stream (``idxl_istream<T>``)."""
        return self._declare(name, StreamKind.INLANE_INDEXED_READ, record_words)

    def idxl_ostream(self, name: str, record_words: int = 1) -> KernelStream:
        """In-lane indexed output stream (``idxl_ostream<T>``)."""
        return self._declare(name, StreamKind.INLANE_INDEXED_WRITE, record_words)

    def idxl_iostream(self, name: str, record_words: int = 1) -> KernelStream:
        """In-lane indexed read-write stream (``idxl_iostream<T>``).

        The paper's future-work extension (§7): reads and writes share
        the stream's address FIFO, so read-after-write order within the
        kernel is preserved by the FIFO itself.
        """
        return self._declare(
            name, StreamKind.INLANE_INDEXED_READWRITE, record_words
        )

    def idx_istream(self, name: str, record_words: int = 1) -> KernelStream:
        """Cross-lane indexed input stream (``idx_istream<T>``)."""
        return self._declare(
            name, StreamKind.CROSSLANE_INDEXED_READ, record_words
        )

    def _declare(self, name, kind, record_words) -> KernelStream:
        if name in self._kernel.streams:
            raise KernelBuildError(f"stream {name!r} declared twice")
        stream = KernelStream(name, kind, record_words)
        self._kernel.streams[name] = stream
        return stream

    # ------------------------------------------------------------------
    # Values and arithmetic
    # ------------------------------------------------------------------
    def const(self, value, name: str = "") -> Op:
        """A compile-time constant."""
        return self._add(Op(OpKind.CONST, value=value, name=name))

    def laneid(self, name: str = "") -> Op:
        """The cluster's lane number (0..lanes-1), free like a register."""
        return self._add(Op(OpKind.LANEID, name=name or "laneid"))

    def arith(self, fn, *operands, name: str = "") -> Op:
        """Generic short-latency ALU op with functional payload ``fn``."""
        return self._add(
            Op(OpKind.ARITH, operands, payload=fn, name=name)
        )

    def logic(self, fn, *operands, name: str = "") -> Op:
        """Single-cycle ALU op (XOR, AND, shifts, byte extracts)."""
        return self._add(
            Op(OpKind.LOGIC, operands, payload=fn, name=name)
        )

    def xor(self, a: Op, b: Op, name: str = "") -> Op:
        return self._add(
            Op(OpKind.LOGIC, (a, b), payload=operator.xor,
               name=name or "xor", algebra="xor")
        )

    def add(self, a: Op, b: Op, name: str = "") -> Op:
        return self._add(
            Op(OpKind.ARITH, (a, b), payload=operator.add,
               name=name or "add", algebra="add")
        )

    def sub(self, a: Op, b: Op, name: str = "") -> Op:
        return self._add(
            Op(OpKind.ARITH, (a, b), payload=operator.sub,
               name=name or "sub", algebra="sub")
        )

    def mul(self, a: Op, b: Op, name: str = "") -> Op:
        """Pipelined multiply (4-cycle ALU op)."""
        return self._add(
            Op(OpKind.MUL, (a, b), payload=operator.mul, name=name or "mul",
               algebra="mul")
        )

    def div(self, a: Op, b: Op, name: str = "") -> Op:
        """Unpipelined divide on the single divider unit."""
        return self._add(
            Op(OpKind.DIV, (a, b), payload=operator.truediv,
               name=name or "div")
        )

    def select(self, cond: Op, if_true: Op, if_false: Op, name: str = "") -> Op:
        """Predicated select — how conditionals become dataflow (§3.2)."""
        return self._add(
            Op(OpKind.ARITH, (cond, if_true, if_false),
               payload=lambda c, t, f: t if c else f,
               name=name or "select", algebra="select")
        )

    def lt(self, a: Op, b: Op, name: str = "") -> Op:
        return self.arith(operator.lt, a, b, name=name or "lt")

    def mod(self, a: Op, b: Op, name: str = "") -> Op:
        """Integer remainder (an ALU op the index analysis can bound)."""
        return self._add(
            Op(OpKind.ARITH, (a, b), payload=operator.mod,
               name=name or "mod", algebra="mod")
        )

    def land(self, a: Op, b: Op, name: str = "") -> Op:
        return self.arith(lambda x, y: bool(x) and bool(y), a, b,
                          name=name or "and")

    def min_(self, a: Op, b: Op, name: str = "") -> Op:
        """Two-input minimum (an ALU op the index analysis can bound)."""
        return self._add(
            Op(OpKind.ARITH, (a, b), payload=min,
               name=name or "min", algebra="min")
        )

    def max_(self, a: Op, b: Op, name: str = "") -> Op:
        """Two-input maximum (an ALU op the index analysis can bound)."""
        return self._add(
            Op(OpKind.ARITH, (a, b), payload=max,
               name=name or "max", algebra="max")
        )

    def clamp(self, value: Op, lo: Op, hi: Op, name: str = "") -> Op:
        """``max(lo, min(value, hi))`` — the hardware range guard.

        The point is the abstract semantics as much as the concrete
        ones: the interval domain bounds the result by ``[lo, hi]``
        even when ``value`` is data-dependent (TOP), which is what
        lets sparse apps prove their pointer-chased gather indices in
        bounds (ISSUE 10 / ROADMAP item 3). Functionally it is the
        identity whenever the data already respects the bound.
        """
        base = name or "clamp"
        lowered = self.min_(value, hi, name=f"{base}_min")
        return self.max_(lowered, lo, name=f"{base}_max")

    def mac_chain(self, pairs, name: str = "mac") -> Op:
        """Multiply-accumulate over (a, b) op pairs — a convolution helper."""
        pairs = list(pairs)
        if not pairs:
            raise KernelBuildError("mac_chain needs at least one pair")
        acc = self.mul(pairs[0][0], pairs[0][1], name=f"{name}_0")
        for position, (a, b) in enumerate(pairs[1:], start=1):
            product = self.mul(a, b, name=f"{name}_m{position}")
            acc = self.add(acc, product, name=f"{name}_a{position}")
        return acc

    # ------------------------------------------------------------------
    # Loop-carried state
    # ------------------------------------------------------------------
    def carry(self, init_value, name: str) -> Op:
        """Declare loop-carried state; returns its read op (value at
        iteration start)."""
        carry = Carry(init_value, name)
        read = Op(OpKind.CARRY, name=f"carry_{name}")
        read.carry = carry
        carry.read_op = read
        self._kernel.carries.append(carry)
        return self._add(read)

    def update(self, carry_read: Op, value: Op) -> None:
        """Set the next-iteration value of a carry (the loop back edge)."""
        if carry_read.kind is not OpKind.CARRY or carry_read.carry is None:
            raise KernelBuildError("update target is not a carry read")
        if carry_read.carry.update_op is not None:
            raise KernelBuildError(
                f"carry {carry_read.carry.name} updated twice"
            )
        carry_read.carry.update_op = value

    # ------------------------------------------------------------------
    # Stream access
    # ------------------------------------------------------------------
    def read(self, stream: KernelStream, name: str = "") -> Op:
        """Pop the next word from a sequential input stream."""
        self._expect(stream, StreamKind.SEQUENTIAL_READ)
        return self._add(Op(OpKind.SEQ_READ, stream=stream,
                            name=name or f"read_{stream.name}"))

    def write(self, stream: KernelStream, value: Op, name: str = "") -> Op:
        """Push one word to a sequential output stream."""
        self._expect(stream, StreamKind.SEQUENTIAL_WRITE)
        return self._add(Op(OpKind.SEQ_WRITE, (value,), stream=stream,
                            name=name or f"write_{stream.name}"))

    def idx_read(self, stream: KernelStream, index: Op,
                 predicate: "Op | None" = None, name: str = "") -> Op:
        """Indexed read ``stream[index]`` (in-lane or cross-lane).

        With ``predicate``, lanes whose predicate is falsy skip the
        access entirely (no address issued) and read the value 0.
        Returns the data op; the address-issue op is created implicitly
        and separated from the data op by the configured address-data
        separation at schedule time.
        """
        if stream.kind not in (StreamKind.INLANE_INDEXED_READ,
                               StreamKind.INLANE_INDEXED_READWRITE,
                               StreamKind.CROSSLANE_INDEXED_READ):
            raise KernelBuildError(
                f"{stream.name} is not an indexed input stream"
            )
        operands = [index] if predicate is None else [index, predicate]
        issue = self._add(Op(OpKind.IDX_ISSUE, operands, stream=stream,
                             name=(name or stream.name) + "_issue"))
        data = self._add(Op(OpKind.IDX_DATA, (issue,), stream=stream,
                            name=(name or stream.name) + "_data"))
        return data

    def idx_write(self, stream: KernelStream, index: Op, value: Op,
                  predicate: "Op | None" = None, name: str = "") -> Op:
        """Indexed write ``stream[index] = value`` (in-lane only)."""
        if stream.kind not in (StreamKind.INLANE_INDEXED_WRITE,
                               StreamKind.INLANE_INDEXED_READWRITE):
            raise KernelBuildError(
                f"{stream.name} is not an indexed output stream"
            )
        operands = [index, value]
        if predicate is not None:
            operands.append(predicate)
        return self._add(Op(OpKind.IDX_WRITE, operands, stream=stream,
                            name=name or f"idxwrite_{stream.name}"))

    def comm(self, value: Op, source_lane: Op, name: str = "") -> Op:
        """Inter-cluster communication: each lane receives ``value`` from
        lane ``source_lane % lanes`` (a full-crossbar permutation)."""
        return self._add(Op(OpKind.COMM, (value, source_lane),
                            name=name or "comm"))

    # ------------------------------------------------------------------
    def build(self) -> Kernel:
        """Validate and return the finished kernel."""
        if self._built:
            raise KernelBuildError("build() called twice")
        self._kernel.validate()
        self._built = True
        return self._kernel

    # ------------------------------------------------------------------
    def _add(self, op: Op) -> Op:
        if self._built:
            raise KernelBuildError("kernel already built")
        self._kernel.ops.append(op)
        return op

    @staticmethod
    def _expect(stream: KernelStream, kind: StreamKind) -> None:
        if stream.kind is not kind:
            raise KernelBuildError(
                f"{stream.name} is {stream.kind.value}, expected {kind.value}"
            )
