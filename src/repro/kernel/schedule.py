"""Static (modulo) schedule representation.

The product of the scheduler: each op gets an issue slot relative to its
iteration's start; iterations are initiated ``ii`` cycles apart. The
kernel's *loop length* — what Figure 14 plots against address-data
separation — is the II; the *depth* (makespan of one iteration) sets
the software-pipeline fill/drain overhead that Figure 15 shows
penalising very long separations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.kernel.ir import Kernel
from repro.kernel.ops import OpKind


@dataclass
class StaticSchedule:
    """A legal modulo schedule for one kernel."""

    kernel: Kernel
    ii: int
    slots: dict  # op_id -> issue slot (cycle within the iteration)
    #: Makespan of a single iteration including the last op's latency.
    depth: int
    #: Address-data separations the schedule was built for.
    inlane_separation: int
    crosslane_separation: int
    #: Issue slots (mod ii) containing explicit inter-cluster comms.
    comm_slots: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.ii <= 0:
            raise ScheduleError("II must be positive")
        if self.depth < self.ii:
            # An iteration always spans at least one initiation interval.
            self.depth = self.ii

    @property
    def stages(self) -> int:
        """Software-pipeline depth in stages (fill/drain cost driver)."""
        return -(-self.depth // self.ii)

    @property
    def loop_length(self) -> int:
        """Static schedule length of the inner loop body (Figure 14)."""
        return self.ii

    def slot_of(self, op) -> int:
        try:
            return self.slots[op.op_id]
        except KeyError:
            raise ScheduleError(
                f"{op.name} is not part of this schedule"
            ) from None

    def timed_stream_ops(self) -> list:
        """Stream/comm ops with their slots, ordered by (slot, program order).

        This is the replay order the machine executor uses to turn each
        iteration's trace into timed SRF events.
        """
        interesting = (
            OpKind.SEQ_READ, OpKind.SEQ_WRITE, OpKind.IDX_ISSUE,
            OpKind.IDX_DATA, OpKind.IDX_WRITE, OpKind.COMM,
        )
        ops = [op for op in self.kernel.ops if op.kind in interesting]
        return sorted(ops, key=lambda op: (self.slots[op.op_id], op.op_id))

    def total_cycles(self, iterations: int) -> int:
        """Stall-free cycles to run ``iterations`` iterations.

        ``depth`` covers the first iteration (pipeline fill + drain); the
        remaining iterations retire one per II.
        """
        if iterations <= 0:
            return 0
        return self.depth + self.ii * (iterations - 1)

    def describe(self) -> str:
        lines = [
            f"kernel {self.kernel.name}: II={self.ii} depth={self.depth} "
            f"stages={self.stages} (sep in-lane={self.inlane_separation}, "
            f"cross-lane={self.crosslane_separation})"
        ]
        for op in sorted(self.kernel.ops, key=lambda o: self.slots[o.op_id]):
            lines.append(f"  [{self.slots[op.op_id]:4d}] {op.name}")
        return "\n".join(lines)
