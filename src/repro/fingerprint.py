"""Source-tree and configuration fingerprints for on-disk caches.

Both the benchmark :class:`~repro.harness.resultcache.ResultCache` and
the kernel trace store of :mod:`repro.machine.replay` key their entries
on (a) a hash over every ``repro`` source file, so any simulator edit
invalidates stale entries, and (b) a deterministic text form of the
:class:`~repro.config.machine.MachineConfig` under test. This module is
the single home of both fingerprints so the two caches can never drift
apart — and it lives outside the harness package so the machine layer
can use it without a circular import.

The code fingerprint is memoized per process: the source tree cannot
change underneath a running simulation, and every forked harness worker
used to pay a full-tree SHA256 walk just to construct its cache handle.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os

_code_fingerprint: "str | None" = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file, for cache invalidation.

    Any edit to the simulator invalidates all cached results; stale
    results can never be served after a code change. Computed once per
    process (sources are immutable while running); forked workers
    inherit the memo from the parent for free.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        _code_fingerprint = _compute_code_fingerprint()
    return _code_fingerprint


def _compute_code_fingerprint() -> str:
    import repro

    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for directory, subdirs, files in sorted(os.walk(package_root)):
        subdirs.sort()
        for filename in sorted(files):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            digest.update(os.path.relpath(path, package_root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


def config_fingerprint(config) -> str:
    """Deterministic text form of EVERY config field, for cache keys.

    Built from :func:`dataclasses.asdict` rather than ``repr(config)``:
    a repr silently omits any field declared with ``repr=False``, so two
    configs differing only in such a field would alias each other's
    cache entries — the bug class this function exists to close. New
    fields are picked up automatically; no hand-maintained tuple to
    forget to extend. (The ``repro.selfcheck`` fingerprint pass
    statically rejects any rewrite of this function that stops
    enumerating fields via :mod:`dataclasses` — code ``SC106``.)
    """
    fields = dataclasses.asdict(config)
    return repr(sorted(fields.items()))


#: MachineConfig fields that change the *functional* kernel data — the
#: values computed, the indices issued, the words transferred. Together
#: with :data:`repro.machine.replay.TIMING_ONLY_FIELDS` this must
#: exactly partition the MachineConfig field set: every field in
#: exactly one of the two. The partition is enforced three ways —
#: statically by the ``repro.selfcheck`` fingerprint pass (codes
#: ``SC101``–``SC104``), at runtime by
#: :func:`check_field_partition` on every functional-fingerprint use,
#: and by the regression test ``tests/config/test_field_partition.py``
#: — so a new config field cannot ship unclassified.
FUNCTIONAL_FIELDS = frozenset({
    # The SRF access mode and geometry visible to the program: they
    # steer stream allocation, per-lane block shapes and index spaces.
    "srf_mode", "lanes", "srf_bytes", "words_per_lane_access",
    # Whether the memory system is cache-backed: apps branch on it.
    "has_cache",
    # Fault injection mutates computed data; every fault knob keys the
    # functional space (faulted configs never share traces).
    "fault_seed", "fault_srf_flips", "fault_dram_flips",
    "fault_crossbar_drops", "fault_memory_delays", "fault_horizon",
})


def check_field_partition(timing_only,
                          functional=FUNCTIONAL_FIELDS) -> "list[str]":
    """Problems with the functional/timing-only field classification.

    Returns a list of human-readable problem strings — empty when
    ``functional`` and ``timing_only`` are disjoint and their union is
    exactly the MachineConfig field set. Callers raise their own error
    type (:class:`~repro.errors.ReplayError` in the replay path, a test
    failure in the regression suite) so the check has no opinion about
    severity.
    """
    from repro.config.machine import MachineConfig

    names = {field.name for field in dataclasses.fields(MachineConfig)}
    problems = []
    stale_timing = set(timing_only) - names
    if stale_timing:
        problems.append(
            f"TIMING_ONLY_FIELDS names unknown config fields: "
            f"{', '.join(sorted(stale_timing))}"
        )
    stale_functional = set(functional) - names
    if stale_functional:
        problems.append(
            f"FUNCTIONAL_FIELDS names unknown config fields: "
            f"{', '.join(sorted(stale_functional))}"
        )
    overlap = set(functional) & set(timing_only)
    if overlap:
        problems.append(
            f"fields classified both functional and timing-only: "
            f"{', '.join(sorted(overlap))}"
        )
    unclassified = names - set(functional) - set(timing_only)
    if unclassified:
        problems.append(
            f"config fields in neither FUNCTIONAL_FIELDS nor "
            f"TIMING_ONLY_FIELDS: {', '.join(sorted(unclassified))}"
        )
    return problems
