"""Source-tree and configuration fingerprints for on-disk caches.

Both the benchmark :class:`~repro.harness.resultcache.ResultCache` and
the kernel trace store of :mod:`repro.machine.replay` key their entries
on (a) a hash over every ``repro`` source file, so any simulator edit
invalidates stale entries, and (b) a deterministic text form of the
:class:`~repro.config.machine.MachineConfig` under test. This module is
the single home of both fingerprints so the two caches can never drift
apart — and it lives outside the harness package so the machine layer
can use it without a circular import.

The code fingerprint is memoized per process: the source tree cannot
change underneath a running simulation, and every forked harness worker
used to pay a full-tree SHA256 walk just to construct its cache handle.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os

_code_fingerprint: "str | None" = None


def code_fingerprint() -> str:
    """Hash of every ``repro`` source file, for cache invalidation.

    Any edit to the simulator invalidates all cached results; stale
    results can never be served after a code change. Computed once per
    process (sources are immutable while running); forked workers
    inherit the memo from the parent for free.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        _code_fingerprint = _compute_code_fingerprint()
    return _code_fingerprint


def _compute_code_fingerprint() -> str:
    import repro

    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for directory, subdirs, files in sorted(os.walk(package_root)):
        subdirs.sort()
        for filename in sorted(files):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(directory, filename)
            digest.update(os.path.relpath(path, package_root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


def config_fingerprint(config) -> str:
    """Deterministic text form of EVERY config field, for cache keys.

    Built from :func:`dataclasses.asdict` rather than ``repr(config)``:
    a repr silently omits any field declared with ``repr=False``, so two
    configs differing only in such a field would alias each other's
    cache entries — the bug class this function exists to close. New
    fields are picked up automatically; no hand-maintained tuple to
    forget to extend.
    """
    fields = dataclasses.asdict(config)
    return repr(sorted(fields.items()))
