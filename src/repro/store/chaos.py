"""Deterministic fault injection for the durable store's write path.

The chaos harness (``tools/chaos_sweep.py`` and
``tests/harness/test_chaos.py``) must prove that torn entry writes and
out-of-space conditions cannot corrupt results — only cost a recompute.
Real torn writes need a kernel crash to produce; instead the store's
write path consults this module and, when the ``REPRO_STORE_CHAOS``
environment variable is set, deterministically injects the two
failure shapes that matter:

``enospc``
    The entry write raises ``OSError(ENOSPC)`` mid-stream, exercising
    the non-fatal put path (temp file cleaned up, store untouched).

``torn``
    The entry is *committed truncated* — a prefix of the payload is
    renamed into place as if the filesystem reordered a crash —
    exercising checksum verification and quarantine on read.

Syntax: ``REPRO_STORE_CHAOS="seed=7,enospc=0.05,torn=0.05"``.
Decisions are drawn per (seed, entry key, operation) through SHA-256,
not a shared RNG, so every process — including forked harness workers
— makes identical, replayable decisions for the same key.
"""

from __future__ import annotations

import hashlib
import os

from repro.errors import ConfigurationError

#: Environment variable enabling store fault injection.
CHAOS_ENV = "REPRO_STORE_CHAOS"

_FIELDS = ("seed", "enospc", "torn")


def chaos_from_env() -> "StoreChaos | None":
    """The configured :class:`StoreChaos`, or None when disabled."""
    value = os.environ.get(CHAOS_ENV)
    if not value:
        return None
    settings = {"seed": 0, "enospc": 0.0, "torn": 0.0}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, raw = part.partition("=")
        if name not in _FIELDS:
            raise ConfigurationError(
                f"{CHAOS_ENV}: unknown field {name!r} "
                f"(known: {', '.join(_FIELDS)})"
            )
        try:
            settings[name] = int(raw) if name == "seed" else float(raw)
        except ValueError:
            raise ConfigurationError(
                f"{CHAOS_ENV}: {name} needs a number, got {raw!r}"
            ) from None
    for name in ("enospc", "torn"):
        if not 0.0 <= settings[name] <= 1.0:
            raise ConfigurationError(
                f"{CHAOS_ENV}: {name} must be a probability in [0, 1]"
            )
    return StoreChaos(**settings)


class StoreChaos:
    """Key-deterministic fault decisions for store writes."""

    def __init__(self, seed: int = 0, enospc: float = 0.0,
                 torn: float = 0.0):
        self.seed = seed
        self.enospc = enospc
        self.torn = torn

    def _draw(self, key: str, operation: str) -> float:
        payload = f"{self.seed}\n{key}\n{operation}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def should_fail_enospc(self, key: str) -> bool:
        return self._draw(key, "enospc") < self.enospc

    def torn_length(self, key: str, size: int) -> "int | None":
        """Bytes to keep for a torn commit of ``key``, or None."""
        if self._draw(key, "torn") >= self.torn:
            return None
        fraction = self._draw(key, "torn-length")
        return max(0, min(size - 1, int(size * fraction)))
