"""Crash-consistent durable storage for caches, traces, and sweeps.

This package centralizes what used to be per-client durability tricks
(the result cache's temp-file dance, the trace store's quarantine
logic, the sweep runner's lost in-flight bookkeeping) into one audited
code path:

:mod:`repro.store.journal`
    Checksummed append-only journals with torn-tail tolerance — the
    write-ahead primitive.
:mod:`repro.store.locking`
    Advisory ``fcntl`` file locks with stale-lock detection/takeover.
:mod:`repro.store.durable`
    :class:`DurableStore`: content-verified entries behind a manifest
    journal, bounded quarantine, and crash recovery.
:mod:`repro.store.atomic`
    Bare fsync+rename primitive for single-file artifacts (trace
    exports, harness JSON reports) outside the journaled store.
:mod:`repro.store.chaos`
    Deterministic ENOSPC/torn-write injection for the chaos harness.

`harness.resultcache.ResultCache` and `machine.replay.TraceStore` are
both thin codecs over :class:`DurableStore`, so there is exactly one
fsync/rename/lock implementation to audit — the same consolidation the
paper's indexed SRF performs on ad-hoc per-client access paths.
"""

from repro.store.atomic import atomic_write_bytes, atomic_write_text
from repro.store.chaos import CHAOS_ENV, StoreChaos, chaos_from_env
from repro.store.durable import (
    DEFAULT_QUARANTINE_CAP,
    QUARANTINE_CAP_ENV,
    DurableStore,
    default_quarantine_cap,
)
from repro.store.journal import Journal, decode_line, encode_record
from repro.store.locking import FileLock, pid_alive

__all__ = [
    "CHAOS_ENV",
    "DEFAULT_QUARANTINE_CAP",
    "QUARANTINE_CAP_ENV",
    "DurableStore",
    "FileLock",
    "Journal",
    "StoreChaos",
    "atomic_write_bytes",
    "atomic_write_text",
    "chaos_from_env",
    "decode_line",
    "default_quarantine_cap",
    "encode_record",
    "pid_alive",
]
