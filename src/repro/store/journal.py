"""Checksummed append-only journal: the durability primitive.

Every durable structure in :mod:`repro.store` — the store manifest and
the harness sweep journal — is an append-only text file of one-line
records. Each line is ``<sha256-prefix> <json>``: the checksum covers
the exact JSON bytes, so a torn final line (the only corruption an
append-only file can suffer from a crash, given appends are serialized
by the store lock) is detected and dropped rather than misread. A bad
line *before* the tail indicates real disk corruption; readers stop
there and report how many trailing records were discarded, never
raising on a readable prefix.

Appends are O_APPEND single-``write`` calls followed by ``fsync``, so
a record either exists completely or not at all — the write-ahead
contract everything else builds on. ``fsync`` can be disabled per
journal (the in-process tests don't need it) but defaults to on.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.errors import StoreError

#: Hex digits of SHA-256 prefixed to each record line.
CHECKSUM_HEX = 16


def _checksum(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()[:CHECKSUM_HEX]


def encode_record(record: dict) -> bytes:
    """One journal line (checksum + compact JSON + newline) as bytes."""
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode()
    if b"\n" in payload:  # json.dumps never emits raw newlines
        raise StoreError("journal records must be single-line JSON")
    return _checksum(payload).encode() + b" " + payload + b"\n"


def decode_line(line: bytes) -> "dict | None":
    """The record a journal line holds, or None if torn/corrupt."""
    if not line.endswith(b"\n"):
        return None  # torn tail: the newline is the commit marker
    body = line[:-1]
    if len(body) < CHECKSUM_HEX + 2 or body[CHECKSUM_HEX:CHECKSUM_HEX + 1] \
            != b" ":
        return None
    checksum, payload = body[:CHECKSUM_HEX], body[CHECKSUM_HEX + 1:]
    if _checksum(payload) != checksum.decode("ascii", "replace"):
        return None
    try:
        record = json.loads(payload)
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


class Journal:
    """Append-only file of checksummed JSON records.

    One writer at a time (callers serialize through the store lock);
    any number of concurrent readers. ``append`` is write-ahead: it
    returns only after the record is on its way to disk (fsync'd by
    default), so a caller may then perform the action the record
    describes knowing recovery will see the record first.
    """

    def __init__(self, path: str, fsync: bool = True):
        self.path = path
        self.fsync = fsync

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record (single write + fsync)."""
        line = encode_record(record)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fd = os.open(self.path,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line)
            if self.fsync:
                os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    def read(self) -> "tuple[list, int]":
        """``(records, dropped)``: every valid record, in append order.

        ``dropped`` counts trailing lines discarded as torn or corrupt.
        A missing journal reads as empty. Reading stops at the first
        bad line — records after a corrupt one cannot be trusted to be
        ordered correctly, and with serialized appenders only the tail
        can legitimately be bad.
        """
        try:
            with open(self.path, "rb") as handle:
                lines = handle.readlines()
        except OSError:
            return [], 0
        records = []
        for index, line in enumerate(lines):
            record = decode_line(line)
            if record is None:
                return records, len(lines) - index
            records.append(record)
        return records, 0

    def records(self) -> list:
        """Just the valid records (torn tail silently dropped)."""
        return self.read()[0]

    # ------------------------------------------------------------------
    def rewrite(self, records) -> None:
        """Atomically replace the journal with ``records`` (compaction).

        Written to a temp file in the same directory, fsync'd, then
        renamed over the journal — a crash leaves either the old or the
        new journal, never a mixture. Callers must hold the store lock.
        """
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        temp_path = f"{self.path}.{os.getpid()}.tmp"
        fd = os.open(temp_path,
                     os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            for record in records:
                os.write(fd, encode_record(record))
            if self.fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        try:
            os.replace(temp_path, self.path)
            _fsync_directory(directory)
        except OSError:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise


def _fsync_directory(directory: str) -> None:
    """Persist a rename by fsyncing its directory (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
