"""Bare atomic-file-write primitive: staging file, fsync, rename.

:class:`~repro.store.durable.DurableStore` covers journaled,
checksum-verified entries; this module covers the simpler case of a
single self-contained artifact (a trace export, a harness ``--json``
report) that must appear *atomically and durably* at its final path —
readers either see the complete new file or the previous state, never
a torn write, even across power loss.

The discipline is the same one the store's entry path uses: write to a
staging file in the destination directory, flush and ``fsync`` it,
``os.replace`` it over the target, then best-effort ``fsync`` the
directory so the rename itself is durable. The ``repro.selfcheck``
write-discipline pass (codes ``SC401``/``SC402``) forbids hand-rolled
``open(..., "w")`` + ``rename`` sequences outside ``repro.store`` —
this primitive is what call sites use instead.
"""

from __future__ import annotations

import os


def atomic_write_bytes(path: str, data: bytes,
                       staging: "str | None" = None) -> str:
    """Atomically and durably write ``data`` to ``path``; returns it.

    ``staging`` overrides the temp-file path (it must live on the same
    filesystem as ``path``); callers with crash-sweep naming schemes —
    the trace exporter's per-experiment ``*.trace.tmp`` files — pass
    their own so orphans stay attributable. The staging file never
    survives this call: it is renamed into place on success and
    unlinked on failure.
    """
    target = os.path.abspath(path)
    if staging is None:
        staging = os.path.join(
            os.path.dirname(target),
            f".{os.path.basename(target)}.{os.getpid()}.tmp",
        )
    directory = os.path.dirname(os.path.abspath(staging))
    os.makedirs(directory, exist_ok=True)
    try:
        with open(staging, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staging, target)
    finally:
        if os.path.exists(staging):
            try:
                os.unlink(staging)
            except OSError:
                pass
    _fsync_directory(os.path.dirname(target))
    return path


def atomic_write_text(path: str, text: str,
                      staging: "str | None" = None) -> str:
    """UTF-8 text form of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"), staging=staging)


def _fsync_directory(directory: str) -> None:
    """Best-effort directory fsync, making a completed rename durable.

    Some filesystems refuse ``O_RDONLY`` directory fds or directory
    fsync outright; the rename has already happened, so failure here
    only weakens power-loss durability, never atomicity.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
