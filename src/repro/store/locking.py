"""Advisory file locking with stale-lock detection and takeover.

Mutations of a :class:`~repro.store.durable.DurableStore` — journal
appends, entry placement, recovery, compaction — are serialized by one
:class:`FileLock` per store directory. The primary mechanism is
``fcntl.flock``, which the kernel releases automatically when the
holder dies, so a crashed writer can never wedge the store. For
filesystems where ``flock`` is unsupported (some network mounts return
``ENOLCK``/``ENOSYS``) the lock degrades to an ``O_EXCL`` lock *file*;
that mode genuinely can go stale, so the holder's pid is recorded in
the file and a waiter that finds the recorded pid dead (``/proc``
liveness) takes the lock over, logging nothing but replacing the owner
record.

The owner record (pid, hostname, monotonic-free timestamp) is written
in both modes — under ``flock`` it is purely diagnostic, surfaced by
:class:`~repro.errors.LockTimeout` so "who is blocking the store" is
answerable from the exception text alone.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import time

from repro.errors import LockTimeout

try:  # pragma: no cover - fcntl exists on every platform CI runs on
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Default seconds to wait for a contended lock before LockTimeout.
DEFAULT_TIMEOUT_S = 30.0

#: Poll interval while waiting for a contended lock.
POLL_INTERVAL_S = 0.02


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (permission-safe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    except OSError:
        return False
    return True


def _owner_record() -> dict:
    return {
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "time": time.time(),
    }


class FileLock:
    """One advisory lock file; reentrant within a process via nesting.

    Use as a context manager::

        with FileLock(os.path.join(directory, "lock")):
            ...  # exclusive store mutation

    Re-entering from the same :class:`FileLock` instance is permitted
    (a depth counter — the store's public methods call each other);
    distinct instances in one process still exclude each other through
    the OS lock, as separate processes do.
    """

    def __init__(self, path: str, timeout: float = DEFAULT_TIMEOUT_S):
        self.path = path
        self.timeout = timeout
        self._fd: "int | None" = None
        self._depth = 0
        self._exclusive_mode = False  # O_EXCL fallback engaged

    # ------------------------------------------------------------------
    def owner(self) -> "dict | None":
        """The recorded owner of the lock file, when readable."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read(4096)
        except OSError:
            return None
        try:
            record = json.loads(data)
        except ValueError:
            return None
        return record if isinstance(record, dict) else None

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        if self._depth > 0:
            self._depth += 1
            return
        deadline = time.monotonic() + self.timeout
        while True:
            if self._try_acquire():
                self._depth = 1
                return
            if time.monotonic() >= deadline:
                owner = self.owner()
                holder = ""
                if owner:
                    holder = (f" (held by pid {owner.get('pid')} on "
                              f"{owner.get('host')})")
                raise LockTimeout(
                    f"could not lock {self.path} within "
                    f"{self.timeout:g}s{holder}",
                    path=self.path, owner=owner,
                )
            time.sleep(POLL_INTERVAL_S)

    def _try_acquire(self) -> bool:
        if fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                os.close(fd)
                if exc.errno in (errno.ENOLCK, errno.ENOSYS,
                                 errno.EOPNOTSUPP):
                    return self._try_acquire_exclusive()
                return False  # held by a live process
            self._fd = fd
            self._exclusive_mode = False
            self._stamp_owner(fd)
            return True
        return self._try_acquire_exclusive()  # pragma: no cover

    def _try_acquire_exclusive(self) -> bool:
        """O_EXCL fallback: create-or-steal a pid-stamped lock file."""
        try:
            fd = os.open(self.path,
                         os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            owner = self.owner()
            if owner is not None and pid_alive(int(owner.get("pid", -1))):
                return False  # live holder: keep waiting
            # Stale lock: the recorded holder is dead (or the record is
            # unreadable garbage from a torn write). Take it over by
            # removing the file and racing to recreate it; losing the
            # race just means someone else took it over first.
            try:
                os.unlink(self.path)
            except OSError:
                pass
            try:
                fd = os.open(self.path,
                             os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644)
            except OSError:
                return False
        except OSError:
            return False
        self._fd = fd
        self._exclusive_mode = True
        self._stamp_owner(fd)
        return True

    def _stamp_owner(self, fd: int) -> None:
        try:
            os.ftruncate(fd, 0)
            os.pwrite(fd, json.dumps(_owner_record()).encode(), 0)
        except OSError:
            pass  # diagnostic only

    # ------------------------------------------------------------------
    def release(self) -> None:
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth > 0 or self._fd is None:
            return
        fd, self._fd = self._fd, None
        if self._exclusive_mode:
            # Remove the lock file *before* closing so a waiter polling
            # O_EXCL can immediately recreate it; flock mode keeps the
            # file (the kernel lock is what matters there).
            try:
                os.unlink(self.path)
            except OSError:
                pass
        elif fcntl is not None:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
        os.close(fd)

    # ------------------------------------------------------------------
    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

    @property
    def held(self) -> bool:
        return self._depth > 0
