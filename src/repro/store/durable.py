"""Crash-consistent content-verified key/value store.

One store = one directory holding:

``<key><suffix>``
    Entry payloads (opaque bytes; callers bring their own codec).
``manifest.log``
    Write-ahead :class:`~repro.store.journal.Journal` of every
    mutation. The manifest record for an entry is appended — and
    fsync'd — *before* the entry is renamed into place, so any entry
    file present in the directory is journaled; an entry that is
    journaled but absent simply reads as a miss. This ordering is what
    makes ``kill -9`` at any instruction recoverable.
``store.lock``
    Advisory :class:`~repro.store.locking.FileLock` serializing
    mutations (puts, quarantine, recovery, compaction). Reads are
    lock-free: they rely on atomic renames plus checksums.
``.<key>.<pid>.tmp``
    In-flight staging files; swept by recovery when their writer pid
    is dead.
``<key><suffix>.bad``
    Quarantined entries (checksum mismatch, undecodable payload,
    unjournaled file). Bounded: the oldest are evicted beyond
    :data:`DEFAULT_QUARANTINE_CAP` (``REPRO_STORE_QUARANTINE_CAP``),
    so silent corruption cannot grow the directory without bound.

Every read verifies the payload's SHA-256 against the manifest, so a
torn or bit-flipped entry is detected, quarantined, and reported as a
miss — callers recompute, they never consume garbage. Write failures
(including injected ``ENOSPC``, see :mod:`repro.store.chaos`) are
non-fatal: the temp file is removed and the store is untouched.
"""

from __future__ import annotations

import errno
import hashlib
import os

from repro.store.chaos import chaos_from_env
from repro.store.journal import Journal, _fsync_directory
from repro.store.locking import FileLock, pid_alive

#: Manifest journal filename inside a store directory.
MANIFEST_NAME = "manifest.log"

#: Lock filename inside a store directory.
LOCK_NAME = "store.lock"

#: Default bound on quarantined (``.bad``) files per store directory.
DEFAULT_QUARANTINE_CAP = 32

#: Environment variable overriding the quarantine cap.
QUARANTINE_CAP_ENV = "REPRO_STORE_QUARANTINE_CAP"

#: Compact the manifest when it holds this many times more records
#: than live entries (plus a constant floor).
COMPACTION_FACTOR = 4
COMPACTION_FLOOR = 64

#: Filenames the store itself owns (never entries).
_RESERVED = (MANIFEST_NAME, LOCK_NAME)


def default_quarantine_cap() -> int:
    value = os.environ.get(QUARANTINE_CAP_ENV)
    if value:
        try:
            return max(0, int(value))
        except ValueError:
            pass
    return DEFAULT_QUARANTINE_CAP


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class DurableStore:
    """Directory-backed byte store with a write-ahead manifest.

    ``suffix`` namespaces the entry files (``.pkl`` for the result
    cache, ``.trace.gz`` for the trace store) so existing directory
    layouts — and the tools that glob them — stay recognizable.
    """

    def __init__(self, directory: str, suffix: str = ".pkl",
                 fsync: bool = True, quarantine_cap: "int | None" = None):
        self.directory = directory
        self.suffix = suffix
        self.quarantine_cap = (default_quarantine_cap()
                               if quarantine_cap is None else quarantine_cap)
        self.journal = Journal(
            os.path.join(directory, MANIFEST_NAME), fsync=fsync
        )
        self.lock = FileLock(os.path.join(directory, LOCK_NAME))
        self.fsync = fsync
        self._chaos = chaos_from_env()
        self._index: "dict[str, dict] | None" = None
        self._journal_size = -1
        self._recovered = False

    # ------------------------------------------------------------------
    # Paths and naming
    # ------------------------------------------------------------------
    def path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}{self.suffix}")

    def _temp_path(self, key: str) -> str:
        return os.path.join(
            self.directory, f".{key}.{os.getpid()}.tmp"
        )

    def _is_entry(self, filename: str) -> bool:
        return (filename.endswith(self.suffix)
                and filename not in _RESERVED
                and not filename.startswith("."))

    def _entry_key(self, filename: str) -> str:
        return filename[: -len(self.suffix)]

    def _listdir(self) -> list:
        try:
            return os.listdir(self.directory)
        except OSError:
            return []

    # ------------------------------------------------------------------
    # Manifest index
    # ------------------------------------------------------------------
    def _load_index(self) -> dict:
        """(Re)build the key -> {digest, size} map from the manifest."""
        try:
            size = os.path.getsize(self.journal.path)
        except OSError:
            size = 0
        if self._index is not None and size == self._journal_size:
            return self._index
        index: "dict[str, dict]" = {}
        records, _dropped = self.journal.read()
        for record in records:
            op = record.get("op")
            if op == "put":
                index[record["key"]] = {
                    "digest": record.get("digest"),
                    "size": record.get("size"),
                }
            elif op in ("del", "quarantine"):
                index.pop(record.get("key"), None)
            elif op == "clear":
                index.clear()
        self._index = index
        self._journal_size = size
        return index

    def _invalidate_index(self) -> None:
        self._index = None
        self._journal_size = -1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get_bytes(self, key: str) -> "bytes | None":
        """Verified payload bytes of ``key``, or None on miss.

        A present entry whose bytes fail the manifest checksum — or
        that the manifest has never heard of (a torn foreign write) —
        is quarantined and reported as a miss.
        """
        self._maybe_recover()
        path = self.path(key)
        for attempt in range(2):
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError:
                return None  # plain miss
            entry = self._load_index().get(key)
            if entry is not None and entry.get("digest") == _digest(data):
                return data
            if attempt == 0:
                # A concurrent put may have replaced the entry between
                # our file read and index load; re-read once before
                # condemning it.
                self._invalidate_index()
                continue
            self.quarantine(key)
            return None
        return None

    def contains(self, key: str) -> bool:
        return (os.path.exists(self.path(key))
                and key in self._load_index())

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put_bytes(self, key: str, data: bytes) -> bool:
        """Durably store ``data`` under ``key``; False on any failure.

        Write-ahead ordering: staging file fsync'd, manifest record
        appended and fsync'd, *then* the rename publishes the entry.
        A crash at any point leaves either no entry, or a journaled
        complete entry — never an unjournaled or half-visible one.
        """
        self._maybe_recover()
        try:
            os.makedirs(self.directory, exist_ok=True)
        except OSError:
            return False
        temp_path = self._temp_path(key)
        try:
            with self.lock:
                self._write_staging(key, temp_path, data)
                self.journal.append({
                    "op": "put", "key": key, "digest": _digest(data),
                    "size": len(data),
                })
                self._invalidate_index()
                torn = (self._chaos.torn_length(key, len(data))
                        if self._chaos is not None else None)
                if torn is not None:
                    # Injected torn commit: publish a truncated entry
                    # against a full-length manifest record, exactly
                    # what a reordering crash would leave behind.
                    with open(temp_path, "r+b") as handle:
                        handle.truncate(torn)
                os.replace(temp_path, self.path(key))
                if self.fsync:
                    _fsync_directory(self.directory)
            return True
        except Exception:
            try:
                if os.path.exists(temp_path):
                    os.unlink(temp_path)
            except OSError:
                pass
            return False

    def _write_staging(self, key: str, temp_path: str,
                       data: bytes) -> None:
        fd = os.open(temp_path,
                     os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            if self._chaos is not None and self._chaos.should_fail_enospc(
                    key):
                os.write(fd, data[: max(0, len(data) // 2)])
                raise OSError(errno.ENOSPC, "injected ENOSPC (chaos)")
            os.write(fd, data)
            if self.fsync:
                os.fsync(fd)
        finally:
            os.close(fd)

    def delete(self, key: str) -> bool:
        """Remove one entry (journaled); False if it did not exist."""
        with self.lock:
            existed = os.path.exists(self.path(key))
            in_index = key in self._load_index()
            if not existed and not in_index:
                return False
            self.journal.append({"op": "del", "key": key})
            self._invalidate_index()
            try:
                os.unlink(self.path(key))
            except OSError:
                pass
            return existed

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def quarantine(self, key: str) -> None:
        """Move ``key``'s entry aside as ``.bad`` (journaled, bounded).

        Public because callers own the codec: a payload that passes the
        byte checksum but fails to decode (stale class layout) is just
        as quarantinable as a torn write.
        """
        path = self.path(key)
        try:
            with self.lock:
                try:
                    self.journal.append({"op": "quarantine", "key": key})
                except OSError:
                    pass
                self._invalidate_index()
                try:
                    os.replace(path, path + ".bad")
                except OSError:
                    pass
                self._enforce_quarantine_cap()
        except Exception:
            # Quarantine must never raise into a read path; worst case
            # the corrupt entry stays and is re-detected next read.
            pass

    def _enforce_quarantine_cap(self) -> None:
        bad = []
        for filename in self._listdir():
            if filename.endswith(".bad"):
                full = os.path.join(self.directory, filename)
                try:
                    bad.append((os.path.getmtime(full), full))
                except OSError:
                    continue
        bad.sort()
        excess = len(bad) - self.quarantine_cap
        for _mtime, full in bad[:max(0, excess)]:
            try:
                os.unlink(full)
            except OSError:
                pass

    def quarantine_count(self) -> int:
        return sum(
            1 for name in self._listdir() if name.endswith(".bad")
        )

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry; returns how many real entries existed.

        Debris — staging files and quarantined entries — is removed
        too but not counted. The manifest is compacted to a single
        ``clear`` record.
        """
        removed = 0
        try:
            with self.lock:
                for filename in self._listdir():
                    if filename in _RESERVED:
                        continue
                    full = os.path.join(self.directory, filename)
                    if self._is_entry(filename):
                        try:
                            os.unlink(full)
                        except OSError:
                            continue
                        removed += 1
                    elif filename.endswith((".tmp", ".bad")):
                        try:
                            os.unlink(full)
                        except OSError:
                            pass
                self.journal.rewrite([{"op": "clear"}])
                self._invalidate_index()
        except OSError:
            return removed
        return removed

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _maybe_recover(self) -> None:
        if not self._recovered:
            self._recovered = True
            if os.path.isdir(self.directory):
                try:
                    self.recover()
                except Exception:
                    pass  # recovery is best-effort on the hot path

    def recover(self) -> dict:
        """Crash recovery: sweep staging debris, repair the manifest,
        quarantine unjournaled entries, compact when oversized.

        Idempotent and safe to run concurrently (serialized by the
        store lock); every entry surviving recovery is journaled and
        checksummed. Returns counters for tests and tooling.
        """
        report = {"stale_tmp": 0, "torn_journal_records": 0,
                  "unjournaled": 0, "compacted": False}
        with self.lock:
            # 1. Staging files from dead writers.
            for filename in self._listdir():
                if not filename.endswith(".tmp"):
                    continue
                if not self._stale_tmp(filename):
                    continue
                try:
                    os.unlink(os.path.join(self.directory, filename))
                    report["stale_tmp"] += 1
                except OSError:
                    pass
            # 2. Torn manifest tail: keep the valid prefix.
            records, dropped = self.journal.read()
            if dropped:
                self.journal.rewrite(records)
                report["torn_journal_records"] = dropped
            self._invalidate_index()
            index = self._load_index()
            # 3. Entries the manifest has never heard of cannot be
            # trusted (torn foreign writes, pre-manifest leftovers).
            for filename in self._listdir():
                if not self._is_entry(filename):
                    continue
                key = self._entry_key(filename)
                if key not in index:
                    self.quarantine(key)
                    report["unjournaled"] += 1
            # 4. Compaction: manifest >> live entries means mostly
            # superseded records; rewrite it from the index.
            if len(records) > (COMPACTION_FACTOR * max(1, len(index))
                               + COMPACTION_FLOOR):
                live = [
                    {"op": "put", "key": key, "digest": entry["digest"],
                     "size": entry["size"]}
                    for key, entry in sorted(index.items())
                ]
                self.journal.rewrite(live)
                self._invalidate_index()
                report["compacted"] = True
        return report

    @staticmethod
    def _stale_tmp(filename: str) -> bool:
        """Whether a staging filename's writer pid is dead/unknown."""
        parts = filename.rsplit(".", 2)  # [".{key}", "{pid}", "tmp"]
        if len(parts) == 3:
            try:
                return not pid_alive(int(parts[1]))
            except ValueError:
                return True
        return True  # foreign naming: nothing we can wait for

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Entry/quarantine/debris counts for ``--json`` surfacing."""
        entries = 0
        quarantined = 0
        tmp = 0
        for filename in self._listdir():
            if self._is_entry(filename):
                entries += 1
            elif filename.endswith(".bad"):
                quarantined += 1
            elif filename.endswith(".tmp"):
                tmp += 1
        return {"entries": entries, "quarantined": quarantined,
                "tmp": tmp}

    def fsck(self) -> dict:
        """Full offline verification (chaos-gate assertion surface).

        Checks every entry file against the manifest; returns counts of
        ``entries`` (verified good), ``unjournaled`` (present but not
        manifested), ``checksum_failures``, ``tmp`` staging leftovers,
        ``quarantined`` files, and ``torn_journal_records``. A store
        that just finished :meth:`recover` reports zero unjournaled
        entries and zero live-writer-less tmp files.
        """
        records, dropped = self.journal.read()
        index = self._load_index()
        report = {"entries": 0, "unjournaled": 0, "checksum_failures": 0,
                  "tmp": 0, "quarantined": 0,
                  "torn_journal_records": dropped}
        for filename in self._listdir():
            full = os.path.join(self.directory, filename)
            if filename.endswith(".tmp"):
                report["tmp"] += 1
            elif filename.endswith(".bad"):
                report["quarantined"] += 1
            elif self._is_entry(filename):
                key = self._entry_key(filename)
                entry = index.get(key)
                if entry is None:
                    report["unjournaled"] += 1
                    continue
                try:
                    with open(full, "rb") as handle:
                        data = handle.read()
                except OSError:
                    report["checksum_failures"] += 1
                    continue
                if _digest(data) != entry.get("digest"):
                    report["checksum_failures"] += 1
                else:
                    report["entries"] += 1
        return report
