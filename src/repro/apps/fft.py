"""2D FFT benchmark (paper §5.2, Figures 1 and 3).

A 2-dimensional FFT on an ``n x n`` complex array that fits entirely in
the SRF. Both machine variants perform the first (row) dimension with
sequential streams, as 1D FFT stage kernels applied across all lanes:

* **Base/Cache**: the intermediate array is then "rotated 90 degrees
  through memory" — stored and re-gathered in transposed order — and
  the same row-stage kernels run again (Figure 3a). On the Cache
  machine the rotation traffic is cacheable.
* **ISRF**: the second dimension runs directly in the SRF with in-lane
  indexed accesses (Figure 3b): the natural block-striped layout places
  every column of the array wholly inside one lane's bank, so each
  cluster transforms the columns resident in its own bank.

The row kernels use the constant-geometry (Pease) stream formulation:
each stage reads butterfly input pairs as one sequential stream and
writes result pairs sequentially; the pair ordering between stages is a
compile-time-known layout that the per-stage ``on_start`` hook
materialises (zero simulated cost — hardware achieves it by reading two
streams at fixed offsets). The final DIF stage's pairs are adjacent, so
the row phase ends in row-major order automatically.

Functional output is verified against ``numpy.fft.fft2`` (up to the
DIF's deterministic bit-reversal permutation, and a transpose on
Base/Cache, both accounted for exactly).
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppResult, make_processor, steady_state_run
from repro.config.machine import MachineConfig
from repro.core.arrays import SrfArray
from repro.errors import ExecutionError
from repro.kernel.builder import KernelBuilder
from repro.machine.program import KernelInvocation, StreamProgram
from repro.memory.ops import gather_op, load_op, store_op


def dif_butterflies(n: int, stage: int) -> list:
    """In-place DIF stage ``stage``: (i, j, twiddle) on slot indices."""
    span = n >> (stage + 1)
    if span < 1:
        raise ExecutionError(f"stage {stage} out of range for n={n}")
    out = []
    for block in range(0, n, 2 * span):
        for k in range(span):
            w = complex(np.exp(-2j * np.pi * k * (1 << stage) / n))
            out.append((block + k, block + k + span, w))
    return out


def bit_reverse(value: int, bits: int) -> int:
    result = 0
    for _ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


class Fft2dBenchmark:
    """Runs the 2D FFT on one machine configuration."""

    def __init__(self, config: MachineConfig, n: int = 64, seed: int = 7):
        if n & (n - 1) or n < 16:
            raise ExecutionError("n must be a power of two >= 16")
        self.config = config
        self.n = n
        self.log2n = n.bit_length() - 1
        self.proc = make_processor(config)
        self.rng = np.random.default_rng(seed)
        self._indexed = config.supports_indexing
        words = 2 * n * n
        self.words = words
        srf = self.proc.srf
        # Two dataset (load) buffers + the A/B stage scratch pair.
        self.x_arrays = [SrfArray(srf, words, f"fft_x{i}") for i in (0, 1)]
        self.a_array = SrfArray(srf, words, "fft_a")
        self.b_array = SrfArray(srf, words, "fft_b")
        self.inputs = {}
        self.in_regions = {}
        self.out_regions = {}
        self._guards = {"store": None, "x0": None, "x1": None}
        # Mutable per-stage state read by kernel payload closures.
        self._row_twiddles = []
        self._col_state = {}
        self._build_row_kernel()
        if self._indexed:
            self._build_column_maps()
            self._build_column_kernel()

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _build_row_kernel(self) -> None:
        """Constant-geometry butterfly kernel over sequential pairs."""
        b = KernelBuilder("fft_row_stage")
        in_s = b.istream("in")
        out_s = b.ostream("out")
        it = b.carry(0, "it")
        lane = b.laneid()
        b.update(it, b.logic(lambda i: i + 1, it, name="it_next"))
        bidx = b.logic(lambda i, l: 8 * i + l, it, lane, name="bidx")
        w_re = b.arith(lambda t: self._row_twiddles[int(t)].real, bidx,
                       name="w_re")
        w_im = b.arith(lambda t: self._row_twiddles[int(t)].imag, bidx,
                       name="w_im")
        a_re, a_im = b.read(in_s, "a_re"), b.read(in_s, "a_im")
        b_re, b_im = b.read(in_s, "b_re"), b.read(in_s, "b_im")
        u_re = b.add(a_re, b_re, "u_re")
        u_im = b.add(a_im, b_im, "u_im")
        t_re = b.sub(a_re, b_re, "t_re")
        t_im = b.sub(a_im, b_im, "t_im")
        v_re = b.sub(b.mul(t_re, w_re), b.mul(t_im, w_im), "v_re")
        v_im = b.add(b.mul(t_re, w_im), b.mul(t_im, w_re), "v_im")
        for value in (u_re, u_im, v_re, v_im):
            b.write(out_s, value)
        self.row_kernel = b.build()
        self._row_in = in_s
        self._row_out = out_s

    def _build_column_kernel(self) -> None:
        """In-lane indexed butterfly kernel for the second dimension."""
        b = KernelBuilder("fft_col_stage")
        data_in = b.idxl_istream("cols_in", record_words=2)
        data_out = b.idxl_ostream("cols_out", record_words=2)
        it = b.carry(0, "it")
        lane = b.laneid()
        b.update(it, b.logic(lambda i: i + 1, it, name="it_next"))
        idx_i = b.arith(
            lambda l, t: self._col_state["pairs"][int(l)][int(t)][0],
            lane, it, name="idx_i",
        )
        idx_j = b.arith(
            lambda l, t: self._col_state["pairs"][int(l)][int(t)][1],
            lane, it, name="idx_j",
        )
        w_re = b.arith(
            lambda l, t: self._col_state["tw"][int(l)][int(t)].real,
            lane, it, name="w_re",
        )
        w_im = b.arith(
            lambda l, t: self._col_state["tw"][int(l)][int(t)].imag,
            lane, it, name="w_im",
        )
        a = b.idx_read(data_in, idx_i, name="rd_a")
        bb = b.idx_read(data_in, idx_j, name="rd_b")
        a_re = b.logic(lambda t: t[0], a, name="a_re")
        a_im = b.logic(lambda t: t[1], a, name="a_im")
        b_re = b.logic(lambda t: t[0], bb, name="b_re")
        b_im = b.logic(lambda t: t[1], bb, name="b_im")
        u_re = b.add(a_re, b_re, "u_re")
        u_im = b.add(a_im, b_im, "u_im")
        t_re = b.sub(a_re, b_re, "t_re")
        t_im = b.sub(a_im, b_im, "t_im")
        v_re = b.sub(b.mul(t_re, w_re), b.mul(t_im, w_im), "v_re")
        v_im = b.add(b.mul(t_re, w_im), b.mul(t_im, w_re), "v_im")
        u = b.logic(lambda re, im: (re, im), u_re, u_im, name="u")
        v = b.logic(lambda re, im: (re, im), v_re, v_im, name="v")
        b.idx_write(data_out, idx_i, u, name="wr_u")
        b.idx_write(data_out, idx_j, v, name="wr_v")
        self.col_kernel = b.build()

    # ------------------------------------------------------------------
    # Layout maps
    # ------------------------------------------------------------------
    def _record_of_element(self, array: SrfArray, element: int) -> tuple:
        """(lane, in-lane record index) of complex element ``element``."""
        geometry = self.proc.srf.geometry
        word = array.base + 2 * element
        lane, local = geometry.split(word)
        lane2, local2 = geometry.split(word + 1)
        if lane2 != lane:
            raise ExecutionError("complex element straddles lanes")
        local_base = (array.base // geometry.block_words) * \
            geometry.words_per_lane_access
        return lane, (local - local_base) // 2

    def _build_column_maps(self) -> None:
        """Per-lane butterfly (record pairs + twiddles) for each stage.

        In the block-striped layout every column of the n x n array
        lives wholly in one bank, so column butterflies are in-lane.
        """
        n = self.n
        lanes = self.config.lanes
        lane_of_col = {}
        record_of = {}
        for r in range(n):
            for c in range(n):
                lane, record = self._record_of_element(
                    self.a_array, n * r + c
                )
                record_of[(r, c)] = record
                if r == 0:
                    lane_of_col[c] = lane
                elif lane_of_col[c] != lane:
                    raise ExecutionError(
                        f"column {c} spans lanes; unsupported geometry"
                    )
        self._record_of = record_of
        self._col_stage_plans = []
        for stage in range(self.log2n):
            pairs = [[] for _ in range(lanes)]
            tw = [[] for _ in range(lanes)]
            for c in range(n):
                lane = lane_of_col[c]
                for i, j, w in dif_butterflies(n, stage):
                    pairs[lane].append(
                        (record_of[(i, c)], record_of[(j, c)])
                    )
                    tw[lane].append(w)
            counts = {len(p) for p in pairs}
            if len(counts) != 1:
                raise ExecutionError("unbalanced column distribution")
            self._col_stage_plans.append((pairs, tw))

    # ------------------------------------------------------------------
    # Per-stage on_start hooks
    # ------------------------------------------------------------------
    def _materialize_row_stage(self, stage: int, source: SrfArray) -> None:
        """Fill A with stage ``stage``'s butterfly pairs, in order.

        ``source`` holds the previous physical layout: row-major slots
        for stage 0, or stage-(s-1) pair order otherwise.
        """
        n = self.n
        total = n * n
        butterflies = []
        for row in range(n):
            for i, j, w in dif_butterflies(n, stage):
                butterflies.append((n * row + i, n * row + j, w))
        self._row_twiddles = [w for _i, _j, w in butterflies]
        words = source.read_stream_order(2 * total)
        if stage == 0:
            slot_words = words
        else:
            prev = []
            for row in range(n):
                for i, j, _w in dif_butterflies(n, stage - 1):
                    prev.append(n * row + i)
                    prev.append(n * row + j)
            slot_words = [0.0] * (2 * total)
            for position, slot in enumerate(prev):
                slot_words[2 * slot] = words[2 * position]
                slot_words[2 * slot + 1] = words[2 * position + 1]
        image = []
        for i, j, _w in butterflies:
            image.extend((slot_words[2 * i], slot_words[2 * i + 1],
                          slot_words[2 * j], slot_words[2 * j + 1]))
        self.a_array.fill_stream_order(image)

    def _finalize_row_phase(self) -> None:
        """No-op: the last DIF stage's pairs are adjacent, so B is
        already in row-major slot order."""

    def _set_column_stage(self, stage: int) -> None:
        pairs, tw = self._col_stage_plans[stage]
        self._col_state = {"pairs": pairs, "tw": tw}

    # ------------------------------------------------------------------
    # Program construction
    # ------------------------------------------------------------------
    def _row_phase(self, prog: StreamProgram, source: SrfArray,
                   first_deps: list) -> int:
        """Append the log2(n) row-stage kernels; returns last task id."""
        iterations = (self.n * self.n // 2) // self.config.lanes
        last = None
        for stage in range(self.log2n):
            deps = first_deps if stage == 0 else [last]
            src = source if stage == 0 else self.b_array
            invocation = KernelInvocation(
                self.row_kernel,
                {"in": self.a_array.seq_read(),
                 "out": self.b_array.seq_write()},
                iterations=iterations,
                name=f"fft_row_s{stage}",
                on_start=(lambda s=stage, a=src:
                          self._materialize_row_stage(s, a)),
            )
            last = prog.add_kernel(invocation, deps=deps)
        return last

    def _column_phase_indexed(self, prog: StreamProgram, dep: int) -> int:
        iterations = len(self._col_stage_plans[0][0][0])
        last = dep
        src, dst = self.b_array, self.a_array
        for stage in range(self.log2n):
            invocation = KernelInvocation(
                self.col_kernel,
                {"cols_in": src.inlane_read(record_words=2),
                 "cols_out": dst.inlane_write(record_words=2)},
                iterations=iterations,
                name=f"fft_col_s{stage}",
                on_start=(lambda s=stage: self._set_column_stage(s)),
            )
            last = prog.add_kernel(invocation, deps=[last])
            src, dst = dst, src
        return last, src  # src now holds the final output

    def _column_phase_memory(self, prog: StreamProgram, dep: int,
                             rep: int) -> int:
        """Base/Cache: rotate through memory, then row kernels again."""
        n = self.n
        tmp = self.proc.memory.allocate(
            self.words, f"fft_tmp_{self.config.name}_{rep}"
        )
        t_store = prog.add_memory(
            store_op(self.b_array.seq_write(name=f"rot_st{rep}"), tmp,
                     cacheable=self.config.has_cache),
            deps=[dep],
        )
        offsets = []
        for rr in range(n):
            for cc in range(n):
                old = 2 * (n * cc + rr)  # transpose
                offsets.extend((old, old + 1))
        t_gather = prog.add_memory(
            gather_op(self.a_array.seq_read(name=f"rot_ld{rep}"), tmp,
                      offsets, cacheable=self.config.has_cache),
            deps=[t_store],
        )
        # Second dimension: identical row kernels on the rotated array,
        # sourcing stage 0 from the freshly gathered A array.
        return self._row_phase(prog, self.a_array, [t_gather])

    def build_program(self, rep: int) -> StreamProgram:
        n = self.n
        cfg = self.config
        buf = rep % 2
        x_arr = self.x_arrays[buf]
        data = (self.rng.normal(size=(n, n))
                + 1j * self.rng.normal(size=(n, n)))
        self.inputs[rep] = data
        in_region = self.proc.memory.allocate(
            self.words, f"fft_in_{cfg.name}_{rep}"
        )
        out_region = self.proc.memory.allocate(
            self.words, f"fft_out_{cfg.name}_{rep}"
        )
        self.in_regions[rep] = in_region
        self.out_regions[rep] = out_region
        image = []
        for r in range(n):
            for c in range(n):
                image.extend((float(data[r, c].real), float(data[r, c].imag)))
        self.proc.memory.load_region(in_region, image)

        prog = StreamProgram(f"fft2d_{cfg.name}_{rep}")
        x_guard = self._guards[f"x{buf}"]
        t_load = prog.add_memory(
            load_op(x_arr.seq_read(), in_region),
            deps=[x_guard] if x_guard is not None else [],
        )
        first_deps = [t_load]
        if self._guards["store"] is not None:
            first_deps.append(self._guards["store"])
        t_rows = self._row_phase(prog, x_arr, first_deps)
        self._guards[f"x{buf}"] = prog.tasks[1].task_id  # first row kernel
        if self._indexed:
            t_cols, final = self._column_phase_indexed(prog, t_rows)
        else:
            t_cols = self._column_phase_memory(prog, t_rows, rep)
            final = self.b_array
        t_store = prog.add_memory(
            store_op(final.seq_write(name=f"out_st{rep}"), out_region),
            deps=[t_cols],
        )
        self._guards["store"] = t_store
        self._final_array = final
        return prog

    # ------------------------------------------------------------------
    def verify(self, rep: int) -> bool:
        n = self.n
        words = self.proc.memory.dump_region(self.out_regions[rep])
        got = np.empty((n, n), dtype=complex)
        for r in range(n):
            for c in range(n):
                base = 2 * (n * r + c)
                got[r, c] = complex(words[base], words[base + 1])
        perm = [bit_reverse(k, self.log2n) for k in range(n)]
        expected = np.fft.fft2(self.inputs[rep])[np.ix_(perm, perm)]
        if not self._indexed:
            expected = expected.T
        return bool(np.allclose(got, expected, rtol=1e-9, atol=1e-9))


def run(config: MachineConfig, n: int = 64, repeats: int = 2,
        warmup: int = 1, seed: int = 7) -> AppResult:
    """Run the 2D FFT benchmark; returns verified steady-state stats."""
    bench = Fft2dBenchmark(config, n=n, seed=seed)
    stats = steady_state_run(bench.proc, bench.build_program,
                             repeats=repeats, warmup=warmup)
    verified = all(bench.verify(rep) for rep in range(warmup + repeats))
    return AppResult(
        benchmark="FFT 2D",
        config_name=config.name,
        stats=stats,
        verified=verified,
        details={"n": n},
    )
