"""Merge Sort benchmark (paper §5.2).

Merge sort of 4096 values. Each pass merges pairs of sorted runs; the
machines differ in how the *conditional* input selection (pop from run A
or run B) is expressed:

* **Base/Cache**: conditional streams ([16] Kapasi et al.), which
  require cross-lane communication on every iteration — the merge
  predicate feeds a cross-cluster prefix network (three comm+add steps
  for 8 lanes) that routes sequentially-read data to the right cluster.
  All log2(n) passes use this kernel.
* **ISRF**: "the conditional inputs are formulated as conditional
  address computations, and no cross-lane communication is necessary
  until all data in each lane is internally sorted." The first
  log2(n/lanes) passes run the in-lane indexed merge kernel — merge
  pointers are carries, updated by compares of the fetched values, so
  the address computation is genuinely loop-carried (Figure 14's Sort1
  and Sort2 grow with address-data separation). The final log2(lanes)
  cross-lane passes fall back to the conditional-stream kernel.

``Sort1`` is the in-lane merge kernel at short run lengths and ``Sort2``
at long run lengths (the two kernels shown in Figures 13-15).

Off-chip traffic is identical in all configurations (Figure 11): one
load and one store; all intermediate passes live in the SRF.
"""

from __future__ import annotations

import random

from repro.apps.common import AppResult, make_processor, steady_state_run
from repro.config.machine import MachineConfig
from repro.core.arrays import SrfArray
from repro.errors import ExecutionError
from repro.kernel.builder import KernelBuilder
from repro.kernel.ir import Kernel
from repro.machine.program import KernelInvocation, StreamProgram
from repro.memory.ops import load_op, store_op


def merge_runs(values: list, run_length: int) -> list:
    """One merge pass: merge adjacent sorted runs of ``run_length``."""
    out = []
    for base in range(0, len(values), 2 * run_length):
        a = values[base : base + run_length]
        b = values[base + run_length : base + 2 * run_length]
        i = j = 0
        while i < len(a) or j < len(b):
            if i < len(a) and (j >= len(b) or a[i] <= b[j]):
                out.append(a[i])
                i += 1
            else:
                out.append(b[j])
                j += 1
    return out


def build_inlane_merge_kernel(run_length: int, name: str) -> Kernel:
    """The conditional-address merge kernel (paper §3.2 "Conditional
    accesses"): merge pointers live in carries and the next indexed
    address depends on the comparison of the fetched values."""
    L = run_length
    b = KernelBuilder(name)
    data = b.idxl_istream("data")
    out = b.ostream("out")
    i = b.carry(0, "i")
    j = b.carry(0, "j")
    k = b.carry(0, "k")
    pair = b.carry(0, "pair")
    base = b.logic(lambda p: p * 2 * L, pair, name="pair_base")
    ia = b.logic(lambda bs, ii: bs + min(ii, L - 1), base, i, name="ia")
    jb = b.logic(lambda bs, jj: bs + L + min(jj, L - 1), base, j, name="jb")
    a_val = b.idx_read(data, ia, name="rd_a")
    b_val = b.idx_read(data, jb, name="rd_b")
    take_a = b.logic(
        lambda ii, jj, av, bv: 1 if (ii < L and (jj >= L or av <= bv)) else 0,
        i, j, a_val, b_val, name="take_a",
    )
    value = b.select(take_a, a_val, b_val, name="merged")
    b.write(out, value)
    i1 = b.logic(lambda x, t: x + t, i, take_a, name="i1")
    j1 = b.logic(lambda x, t: x + 1 - t, j, take_a, name="j1")
    k1 = b.logic(lambda x: x + 1, k, name="k1")
    done = b.logic(lambda x: 1 if x >= 2 * L else 0, k1, name="pair_done")
    b.update(i, b.select(done, b.const(0), i1, name="i_next"))
    b.update(j, b.select(done, b.const(0), j1, name="j_next"))
    b.update(k, b.select(done, b.const(0), k1, name="k_next"))
    b.update(pair, b.logic(lambda p, d: p + d, pair, done, name="pair_next"))
    return b.build()


class ConditionalMergeState:
    """Functional state of one conditional-stream merge pass.

    The pass's merged output is computed from the *actual* contents of
    the input array when the kernel starts (the ``on_start`` hook), so a
    corrupted earlier pass propagates to verification.
    """

    def __init__(self):
        self.output_stream = []  # stream-order words of the merged pass

    def set_from(self, values: list, run_length: int) -> None:
        self.output_stream = merge_runs(values, run_length)


def build_conditional_merge_kernel(state: ConditionalMergeState,
                                   lanes: int) -> Kernel:
    """The Base/Cache merge kernel using conditional streams.

    The timing-relevant structure is real: the merge-pointer recurrence
    runs through a 3-step cross-cluster prefix network (comm latency in
    the loop-carried cycle), which is why this kernel's II does not
    depend on SRF address-data separation but is substantially longer
    than the in-lane indexed kernel's.
    """
    b = KernelBuilder("sort_conditional_merge")
    in_s = b.istream("in")
    out = b.ostream("out")
    ptr = b.carry(0, "ptr")
    it = b.carry(0, "it")
    lane = b.laneid()
    b.update(it, b.logic(lambda t: t + 1, it, name="it_next"))
    raw = b.read(in_s, name="candidate")
    pred = b.logic(lambda p, r: (p + (1 if isinstance(r, (int, float))
                                      else 0)) % 1024,
                   ptr, raw, name="pred")
    # Cross-cluster prefix: log2(lanes) comm+add steps (Kapasi [16]).
    acc = pred
    steps = max(1, lanes.bit_length() - 1)
    for step in range(steps):
        src = b.logic(
            (lambda s: lambda l: (l + (1 << s)) % lanes)(step),
            lane, name=f"src{step}",
        )
        routed = b.comm(acc, src, name=f"comm{step}")
        acc = b.logic(lambda x, y: (x + y) % (1 << 20), acc, routed,
                      name=f"scan{step}")
    b.update(ptr, b.logic(lambda x: x % 1024, acc, name="ptr_next"))
    # The routed value each cluster keeps this iteration (functional
    # passthrough of the pass's merged output in stream order).
    def merged_value(l, t):
        geometry_pos = (int(t) // 4) * 4 * lanes + 4 * int(l) + int(t) % 4
        return state.output_stream[geometry_pos]

    value = b.arith(merged_value, lane, it, name="merged")
    gated = b.arith(lambda v, _a: v, value, acc, name="gated")
    b.write(out, gated)
    return b.build()


class SortBenchmark:
    """Runs merge Sort on one machine configuration."""

    def __init__(self, config: MachineConfig, n: int = 1024, seed: int = 5):
        lanes = config.lanes
        if n % lanes or n & (n - 1):
            raise ExecutionError("n must be a power of two divisible by lanes")
        self.config = config
        self.n = n
        self.per_lane = n // lanes
        self.inlane_passes = self.per_lane.bit_length() - 1
        self.cross_passes = lanes.bit_length() - 1
        self.proc = make_processor(config)
        self.rng = random.Random(seed)
        self._indexed = config.supports_indexing
        srf = self.proc.srf
        self.arrays = [SrfArray(srf, n, f"sort_{x}") for x in ("a", "b")]
        self.inputs = {}
        self.out_regions = {}
        self._cond_state = ConditionalMergeState()
        self.cond_kernel = build_conditional_merge_kernel(
            self._cond_state, lanes
        )
        if self._indexed:
            self.inlane_kernels = [
                build_inlane_merge_kernel(1 << p, self._pass_name(p))
                for p in range(self.inlane_passes)
            ]
        self._store_guard = None

    def _pass_name(self, p: int) -> str:
        # Sort1: short-run merges; Sort2: long-run merges (paper Figs 13-15).
        return f"sort1_L{1 << p}" if (1 << p) < 32 else f"sort2_L{1 << p}"

    # ------------------------------------------------------------------
    def _logical_from_stream(self, words: list, per_lane_layout: bool) -> list:
        """Reconstruct the logical sequence from a physical array."""
        arr = self.arrays[0]
        if per_lane_layout:
            per_lane = arr.per_lane_from_stream_image(words, self.per_lane)
            out = []
            for lane_vals in per_lane:
                out.extend(lane_vals)
            return out
        return list(words)

    def build_program(self, rep: int) -> StreamProgram:
        cfg = self.config
        n = self.n
        values = [self.rng.randrange(1 << 20) for _ in range(n)]
        self.inputs[rep] = values
        in_region = self.proc.memory.allocate(n, f"sort_in_{cfg.name}_{rep}")
        out_region = self.proc.memory.allocate(n, f"sort_out_{cfg.name}_{rep}")
        self.out_regions[rep] = out_region
        src, dst = self.arrays
        if self._indexed:
            lane_chunks = [
                values[lane * self.per_lane : (lane + 1) * self.per_lane]
                for lane in range(cfg.lanes)
            ]
            image = src.stream_image_per_lane(lane_chunks)
        else:
            image = values
        self.proc.memory.load_region(in_region, image)

        prog = StreamProgram(f"sort_{cfg.name}_{rep}")
        guard = [self._store_guard] if self._store_guard is not None else []
        t_prev = prog.add_memory(load_op(src.seq_read(), in_region),
                                 deps=guard)
        iterations = n // cfg.lanes

        if self._indexed:
            for p in range(self.inlane_passes):
                t_prev = prog.add_kernel(KernelInvocation(
                    self.inlane_kernels[p],
                    {"data": src.inlane_read(self.per_lane),
                     "out": dst.seq_write()},
                    iterations=iterations,
                    name=self._pass_name(p),
                ), deps=[t_prev])
                src, dst = dst, src
            first_cross = self.inlane_passes
            per_lane_layout = True
        else:
            first_cross = 0
            per_lane_layout = False

        total_passes = n.bit_length() - 1
        for p in range(first_cross, total_passes):
            run_length = 1 << p

            def on_start(src=src, run_length=run_length,
                         per_lane_layout=per_lane_layout):
                words = src.read_stream_order(self.n)
                logical = self._logical_from_stream(words, per_lane_layout)
                self._cond_state.set_from(logical, run_length)

            t_prev = prog.add_kernel(KernelInvocation(
                self.cond_kernel,
                {"in": src.seq_read(), "out": dst.seq_write()},
                iterations=iterations,
                name=f"cond_merge_L{run_length}",
                on_start=on_start,
            ), deps=[t_prev])
            src, dst = dst, src
            per_lane_layout = False

        t_store = prog.add_memory(
            store_op(src.seq_write(name=f"st{rep}"), out_region),
            deps=[t_prev],
        )
        self._store_guard = t_store
        return prog

    # ------------------------------------------------------------------
    def verify(self, rep: int) -> bool:
        got = self.proc.memory.dump_region(self.out_regions[rep])
        return got == sorted(self.inputs[rep])


def run(config: MachineConfig, n: int = 1024, repeats: int = 2,
        warmup: int = 1, seed: int = 5) -> AppResult:
    """Run the Sort benchmark; returns verified steady-state stats."""
    bench = SortBenchmark(config, n=n, seed=seed)
    stats = steady_state_run(bench.proc, bench.build_program,
                             repeats=repeats, warmup=warmup)
    verified = all(bench.verify(rep) for rep in range(warmup + repeats))
    return AppResult(
        benchmark="Sort",
        config_name=config.name,
        stats=stats,
        verified=verified,
        details={"n": n},
    )
