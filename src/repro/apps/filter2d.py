"""5x5 convolution Filter benchmark (paper §5.2, Figure 4).

Applies a 5x5 filter to a 2D image (256x256 in the paper).

* **Base/Cache**: the image streams through sequentially and the kernel
  maintains the 5x5 neighbourhood in scratchpad memory, paying the
  "complex state management" cost the paper describes (§3.2): per
  output pixel, scratchpad addressing, window-shift bookkeeping and
  edge handling occupy ALU issue slots alongside the 25-tap MAC.
* **ISRF**: each lane holds a vertical band of the image (its output
  columns plus a 2-pixel halo on each side) and reads the 25 neighbours
  directly with in-lane indexed accesses, split across five indexed
  streams — one per window row — which makes Filter the second
  benchmark (with Rijndael) where ISRF1's single indexed word per cycle
  per lane causes SRF stalls (§5.3). Each indexed read still pays its
  real address computation (one ALU add per tap).

Off-chip traffic is near-identical for both variants (Figure 11): the
only difference is the halo replication of the banded layout
(4 extra columns per lane, 12.5% at the paper's 256-wide image).

Output is verified against a direct correlation reference.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppResult, make_processor, steady_state_run
from repro.config.machine import MachineConfig
from repro.core.arrays import SrfArray
from repro.errors import ExecutionError
from repro.kernel.builder import KernelBuilder
from repro.machine.program import KernelInvocation, StreamProgram
from repro.memory.ops import load_op, store_op

#: Window radius: a 5x5 filter reaches 2 pixels in every direction.
RADIUS = 2
TAPS = 2 * RADIUS + 1

#: The filter coefficients: a fixed, roughly Gaussian 5x5 kernel.
COEFFS = np.outer([1.0, 4.0, 6.0, 4.0, 1.0], [1.0, 4.0, 6.0, 4.0, 1.0])
COEFFS = COEFFS / COEFFS.sum()


def reference_filter(image: np.ndarray) -> np.ndarray:
    """Direct correlation with :data:`COEFFS` (the golden model).

    Rows are 'valid' (the output loses 2*RADIUS rows); columns are
    edge-padded so every lane's output band has full width — the
    banded SRF layout replicates exactly that halo.
    """
    height, width = image.shape
    padded = np.pad(image, ((0, 0), (RADIUS, RADIUS)), mode="edge")
    out = np.zeros((height - 2 * RADIUS, width))
    for dr in range(TAPS):
        for dc in range(TAPS):
            out += COEFFS[dr, dc] * padded[
                dr : dr + out.shape[0], dc : dc + out.shape[1]
            ]
    return out


class FilterBenchmark:
    """Runs the 5x5 Filter on one machine configuration."""

    def __init__(self, config: MachineConfig, height: int = 64,
                 width: int = 64, seed: int = 99,
                 rows_per_strip: "int | None" = None):
        lanes = config.lanes
        if width % lanes:
            raise ExecutionError("image width must divide across lanes")
        self.config = config
        self.height = height
        self.width = width
        self.cols_per_lane = width // lanes
        self.band_width = self.cols_per_lane + 2 * RADIUS
        self.out_rows = height - 2 * RADIUS
        self.proc = make_processor(config)
        self.rng = np.random.default_rng(seed)
        self._indexed = config.supports_indexing
        self.rows_per_strip = self._choose_strip_rows(rows_per_strip)
        self.n_strips = -(-self.out_rows // self.rows_per_strip)
        self.image = self.rng.normal(size=(height, width))
        self.out_regions = {}
        self._guards = {"kernel": {0: None, 1: None},
                        "store": {0: None, 1: None}}
        self._setup_arrays()
        self._build_kernel()

    # ------------------------------------------------------------------
    def _choose_strip_rows(self, requested: "int | None") -> int:
        """Output rows per strip: the whole image when it fits the SRF,
        else the largest strip-mined slice (paper §2: applications are
        strip-mined so the working set fits)."""
        if requested is not None:
            if not 1 <= requested <= self.out_rows:
                raise ExecutionError("rows_per_strip out of range")
            return requested
        lanes = self.config.lanes
        in_row_words = (
            self.band_width * lanes if self._indexed else self.width
        )
        out_row_words = self.cols_per_lane * lanes
        budget = self.config.srf_words // 2 - 256  # double buffered
        rows = (budget - 2 * (2 * RADIUS) * in_row_words) // (
            2 * (in_row_words + out_row_words)
        )
        return max(1, min(self.out_rows, rows))

    def _setup_arrays(self) -> None:
        lanes = self.config.lanes
        srf = self.proc.srf
        in_rows = self.rows_per_strip + 2 * RADIUS
        if self._indexed:
            in_words = in_rows * self.band_width * lanes
        else:
            in_words = in_rows * self.width
        out_words = self.rows_per_strip * self.cols_per_lane * lanes
        self.in_arrays = [SrfArray(srf, in_words, f"flt_in{i}")
                          for i in (0, 1)]
        self.out_arrays = [SrfArray(srf, out_words, f"flt_out{i}")
                           for i in (0, 1)]
        self.in_words = in_words
        self.out_words = out_words

    def _pixel_index(self, lane: int, iteration: int) -> tuple:
        """(row, in-band column) of the pixel lane ``lane`` computes at
        ``iteration`` (row-major scan over the lane's output band)."""
        row = iteration // self.cols_per_lane
        col = iteration % self.cols_per_lane
        return row, col

    def _build_kernel(self) -> None:
        if self._indexed:
            self._build_isrf_kernel()
        else:
            self._build_scratchpad_kernel()

    def _build_isrf_kernel(self) -> None:
        b = KernelBuilder("filter_isrf")
        out_s = b.ostream("out")
        rows = [b.idxl_istream(f"win{dr}") for dr in range(TAPS)]
        it = b.carry(0, "it")
        lane = b.laneid()
        b.update(it, b.logic(lambda i: i + 1, it, name="it_next"))
        # Window-centre address (top-left of the 5x5 window).
        base_addr = b.arith(
            lambda l, t: (t // self.cols_per_lane) * self.band_width
            + (t % self.cols_per_lane),
            lane, it, name="win_base",
        )
        taps = []
        bw = self.band_width
        for dr in range(TAPS):
            row_base = b.logic(
                (lambda d: lambda a: a + d * bw)(dr), base_addr,
                name=f"row_base{dr}",
            )
            for dc in range(TAPS):
                addr = b.logic(
                    (lambda d: lambda a: a + d)(dc), row_base,
                    name=f"addr{dr}_{dc}",
                )
                value = b.idx_read(rows[dr], addr, name=f"px{dr}_{dc}")
                taps.append((value, b.const(float(COEFFS[dr, dc]))))
        acc = b.mac_chain(taps)
        b.write(out_s, acc)
        self.kernel = b.build()

    def _build_scratchpad_kernel(self) -> None:
        """Sequential kernel with explicit scratchpad-management cost.

        The 25 neighbour values come from the scratchpad (modelled
        functionally by a closure over the current image); the paper's
        "complex state management" appears as real ALU issue pressure:
        one scratch-access op per tap plus window bookkeeping.
        """
        b = KernelBuilder("filter_scratchpad")
        in_s = b.istream("in")
        out_s = b.ostream("out")
        it = b.carry(0, "it")
        lane = b.laneid()
        b.update(it, b.logic(lambda i: i + 1, it, name="it_next"))
        # The streamed-in pixel keeps the scratchpad filled (1 word per
        # output pixel: input and output counts are near-identical).
        b.read(in_s, name="px_in")
        taps = []
        for dr in range(TAPS):
            for dc in range(TAPS):
                scratch = b.logic(
                    (lambda d, c: lambda l, t: self._scratch_read(
                        int(l), int(t), d, c))(dr, dc),
                    lane, it, name=f"scr{dr}_{dc}",
                )
                taps.append((scratch, b.const(float(COEFFS[dr, dc]))))
        # Window-shift and edge bookkeeping ops (address updates, wrap
        # tests, row-boundary selects, scratchpad write-back of the
        # incoming pixel): scratchpad management overhead (§3.2).
        bookkeeping = b.logic(lambda t: t, it, name="book0")
        for k in range(1, 28):
            bookkeeping = b.logic(lambda v: v, bookkeeping, name=f"book{k}")
        acc = b.mac_chain(taps)
        acc = b.arith(lambda a, _bk: a, acc, bookkeeping, name="join")
        b.write(out_s, acc)
        self.kernel = b.build()

    def _scratch_read(self, lane: int, iteration: int, dr: int, dc: int):
        """Functional scratchpad contents for the Base/Cache variant."""
        row, col = self._pixel_index(lane, iteration)
        padded = self._current_padded
        return float(padded[row + dr,
                            lane * self.cols_per_lane + col + dc])

    # ------------------------------------------------------------------
    def _band(self, image: np.ndarray, lane: int) -> np.ndarray:
        """Lane ``lane``'s vertical band including the halo columns."""
        padded = np.pad(image, ((0, 0), (RADIUS, RADIUS)), mode="edge")
        start = lane * self.cols_per_lane
        return padded[:, start : start + self.band_width]

    def _strip_rows(self, rep: int) -> tuple:
        """(first output row, output rows) of strip ``rep``."""
        row0 = (rep % self.n_strips) * self.rows_per_strip
        rows = min(self.rows_per_strip, self.out_rows - row0)
        return row0, rows

    def build_program(self, rep: int) -> StreamProgram:
        cfg = self.config
        lanes = cfg.lanes
        buf = rep % 2
        row0, strip_rows = self._strip_rows(rep)
        # Input rows for this strip: its output rows plus the vertical
        # window reach (2*RADIUS halo rows).
        strip_image = self.image[row0 : row0 + strip_rows + 2 * RADIUS]
        in_arr, out_arr = self.in_arrays[buf], self.out_arrays[buf]
        in_words = (strip_rows + 2 * RADIUS) * (
            self.band_width * lanes if self._indexed else self.width
        )
        out_words = strip_rows * self.cols_per_lane * lanes
        in_region = self.proc.memory.allocate(
            self.in_words, f"flt_in_{cfg.name}_{rep}"
        )
        out_region = self.proc.memory.allocate(
            self.out_words, f"flt_out_{cfg.name}_{rep}"
        )
        self.out_regions[rep] = out_region
        if self._indexed:
            bands = [
                [float(v) for v in self._band(strip_image, lane).ravel()]
                for lane in range(lanes)
            ]
            self.proc.memory.load_region(
                in_region, in_arr.stream_image_per_lane(bands)
            )
        else:
            self.proc.memory.load_region(
                in_region, [float(v) for v in strip_image.ravel()]
            )
        prog = StreamProgram(f"filter_{cfg.name}_{rep}")
        guard_k = self._guards["kernel"][buf]
        guard_s = self._guards["store"][buf]
        t_load = prog.add_memory(
            load_op(in_arr.seq_read(in_words), in_region),
            deps=[guard_k] if guard_k is not None else [],
        )
        iterations = strip_rows * self.cols_per_lane
        if self._indexed:
            bindings = {"out": out_arr.seq_write(out_words)}
            records = (strip_rows + 2 * RADIUS) * self.band_width
            for dr in range(TAPS):
                bindings[f"win{dr}"] = in_arr.inlane_read(records)
        else:
            bindings = {"in": in_arr.seq_read(in_words),
                        "out": out_arr.seq_write(out_words)}

        padded = np.pad(strip_image, ((0, 0), (RADIUS, RADIUS)),
                        mode="edge")

        def on_start(padded=padded):
            self._current_padded = padded

        t_k = prog.add_kernel(
            KernelInvocation(self.kernel, bindings, iterations=iterations,
                             name=f"filter_{rep}", on_start=on_start),
            deps=[t_load] + ([guard_s] if guard_s is not None else []),
        )
        t_st = prog.add_memory(
            store_op(out_arr.seq_write(out_words, name=f"st{rep}"),
                     out_region),
            deps=[t_k],
        )
        self._guards["kernel"][buf] = t_k
        self._guards["store"][buf] = t_st
        return prog

    # ------------------------------------------------------------------
    def verify(self, rep: int) -> bool:
        row0, strip_rows = self._strip_rows(rep)
        expected = reference_filter(self.image)[row0 : row0 + strip_rows]
        words = self.proc.memory.dump_region(self.out_regions[rep])
        per_lane = self.out_arrays[rep % 2].per_lane_from_stream_image(
            words, strip_rows * self.cols_per_lane
        )
        got = np.zeros_like(expected)
        for lane in range(self.config.lanes):
            band = np.array(per_lane[lane]).reshape(
                strip_rows, self.cols_per_lane
            )
            start = lane * self.cols_per_lane
            got[:, start : start + self.cols_per_lane] = band
        return bool(np.allclose(got, expected, rtol=1e-9, atol=1e-12))


def run(config: MachineConfig, height: int = 64, width: int = 64,
        repeats: "int | None" = None, warmup: int = 1,
        seed: int = 99) -> AppResult:
    """Run the Filter benchmark; returns verified steady-state stats.

    ``repeats`` defaults to one full pass over the image (all of its
    strips, one when the image fits the SRF whole).
    """
    bench = FilterBenchmark(config, height, width, seed)
    if repeats is None:
        repeats = max(2, bench.n_strips)
    stats = steady_state_run(bench.proc, bench.build_program,
                             repeats=repeats, warmup=warmup)
    verified = all(bench.verify(rep) for rep in range(warmup + repeats))
    return AppResult(
        benchmark="Filter",
        config_name=config.name,
        stats=stats,
        verified=verified,
        details={"height": height, "width": width},
    )
