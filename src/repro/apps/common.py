"""Shared infrastructure for the benchmark applications (paper §5.2).

Every application exposes ``run(config, **params) -> AppResult`` where
``config`` is one of the Table 2 machine presets. The result carries the
Figure 12 execution-time breakdown, Figure 11 off-chip traffic, Figure
13 per-kernel SRF bandwidths, and a functional-verification flag checked
against an independent reference implementation.

Steady-state measurement follows §5.3 ("benchmarks are executed multiple
times in software pipelined loops"): :func:`steady_state_run` executes
``warmup + measured`` repetitions of a benchmark's per-dataset program
chain and reports only the measured portion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.machine import MachineConfig
from repro.errors import ExecutionError
from repro.machine.columnar import build_processor
from repro.machine.processor import StreamProcessor
from repro.machine.stats import ProgramStats


@dataclass
class AppResult:
    """Outcome of one benchmark on one machine configuration."""

    benchmark: str
    config_name: str
    stats: ProgramStats
    verified: bool
    #: Arbitrary app-specific extras (e.g. dataset parameters).
    details: dict = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles

    @property
    def offchip_words(self) -> int:
        return self.stats.offchip_words

    def require_verified(self) -> "AppResult":
        if not self.verified:
            raise ExecutionError(
                f"{self.benchmark} on {self.config_name}: functional "
                "verification FAILED"
            )
        return self


def make_processor(config: MachineConfig) -> StreamProcessor:
    """A fresh machine for one benchmark run.

    Delegates to :func:`repro.machine.columnar.build_processor`, which
    selects the configured timing engine (object or columnar, with the
    documented fallback matrix); the chosen engine is readable as
    ``processor.engine``.
    """
    return build_processor(config)


def steady_state_run(processor: StreamProcessor, build_program,
                     repeats: int = 2, warmup: int = 1) -> ProgramStats:
    """Software-pipelined steady-state measurement (paper §5.3).

    ``build_program(rep) -> StreamProgram`` supplies one per-dataset
    (per-strip) program; all ``warmup + repeats`` instances are chained
    into a single task graph and executed as one run, so strip *n+1*'s
    loads overlap strip *n*'s kernels. Apps express double-buffer reuse
    hazards as cross-strip task dependencies (program task ids are
    globally unique). Warmup strips are included in the chain (they fill
    the software pipeline); with two or more measured strips their
    cold-start contribution is marginal and identical across machine
    configurations.
    """
    if repeats <= 0:
        raise ExecutionError("need at least one measured repetition")
    chain = build_program(0)
    for rep in range(1, warmup + repeats):
        chain = chain.then(build_program(rep))
    return processor.run_program(chain)


def normalized(value: float, baseline: float) -> float:
    """``value / baseline`` with a guard for empty baselines."""
    if baseline == 0:
        return 0.0
    return value / baseline
