"""Irregular Graph (IG) synthetic benchmark (paper §5.2, Table 4).

Simulates neighbour interactions in a static irregular graph: "For each
node in the graph, all of its neighbors are accessed, and the node value
is updated based on the neighbors' values." The graph is much larger
than the SRF, so it is processed in strips of whole nodes.

* **Base/Cache**: every neighbour access becomes a replicated record in
  a sequential stream, gathered from memory per strip (Figure 5a) — a
  node referenced by k strip edges is fetched k times. Cacheable on the
  Cache machine, which also captures *inter-strip* reuse.
* **ISRF**: the strip's referenced node values are loaded once
  (de-duplicated) into a node array striped across all banks, and each
  neighbour access is a cross-lane indexed read of that single copy
  (Figure 5b). "No data is replicated across lanes, and therefore, all
  indexed SRF accesses are cross-lane." Eliminating replication lets
  strips be about twice as long for the same SRF footprint (Table 4),
  amortising kernel startup/pipeline overheads and inter-lane load
  imbalance over more useful work.

Three Table 4 parameters span the application space: floating-point ops
per neighbour (16 = memory-limited, 51 = compute-limited on Base),
average graph degree (4 sparse / 16 dense), and strip length.

The per-neighbour computation is a deterministic mul/add chain; node
updates are verified against an identical-order Python reference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.common import AppResult, make_processor, steady_state_run
from repro.config.machine import MachineConfig
from repro.core.arrays import SrfArray
from repro.kernel.builder import KernelBuilder
from repro.kernel.ir import Kernel
from repro.machine.program import KernelInvocation, StreamProgram
from repro.memory.ops import gather_op, load_op, store_op

#: Weight of the accumulated neighbour term in the node update.
UPDATE_SCALE = 0.1

#: Chain constants for the per-neighbour computation (cycled).
CHAIN_CONSTANTS = (1.0000931, 0.9999271, 1.0001173, 0.9998659)


@dataclass(frozen=True)
class IgDataset:
    """One Table 4 dataset configuration."""

    name: str
    flops_per_neighbor: int
    avg_degree: int
    base_strip_edges: int
    isrf_strip_edges: int

    def strip_edges(self, indexed: bool) -> int:
        return self.isrf_strip_edges if indexed else self.base_strip_edges


#: The four Table 4 datasets.
TABLE4 = {
    "IG_SML": IgDataset("IG_SML", 16, 4, 1163, 2316),
    "IG_SCL": IgDataset("IG_SCL", 51, 4, 1163, 2316),
    "IG_DMS": IgDataset("IG_DMS", 16, 16, 265, 528),
    "IG_DCS": IgDataset("IG_DCS", 51, 16, 265, 528),
}


def chain_value(value: float, flops: int) -> float:
    """Reference per-neighbour computation (mirrors the kernel exactly)."""
    x = value
    for k in range(flops):
        c = CHAIN_CONSTANTS[k % len(CHAIN_CONSTANTS)]
        if k % 2 == 0:
            x = x * c
        else:
            x = x + c
    return x


class IrregularGraph:
    """A random graph with spatial locality, in adjacency-list form."""

    def __init__(self, nodes: int, avg_degree: int, seed: int = 11,
                 locality_window: int = 96):
        if nodes <= locality_window:
            locality_window = max(4, nodes // 4)
        rng = random.Random(seed)
        self.nodes = nodes
        self.values = [rng.uniform(0.5, 1.5) for _ in range(nodes)]
        self.neighbors = []
        for v in range(nodes):
            degree = max(1, round(rng.gauss(avg_degree, avg_degree / 4)))
            adj = []
            for _ in range(degree):
                offset = rng.randint(-locality_window, locality_window) or 1
                adj.append(min(nodes - 1, max(0, v + offset)))
            self.neighbors.append(adj)
        self.edge_count = sum(len(a) for a in self.neighbors)

    def reference_updates(self, flops: int) -> list:
        """Golden node updates (single Jacobi sweep)."""
        out = []
        for v in range(self.nodes):
            acc = 0.0
            for u in self.neighbors[v]:
                acc += chain_value(self.values[u], flops)
            out.append(self.values[v] + UPDATE_SCALE * acc)
        return out

    def strips(self, target_edges: int) -> list:
        """Partition nodes into strips of ~``target_edges`` edges each."""
        strips = []
        current, count = [], 0
        for v in range(self.nodes):
            current.append(v)
            count += len(self.neighbors[v])
            if count >= target_edges:
                strips.append(current)
                current, count = [], 0
        if current:
            strips.append(current)
        return strips


class IgBenchmark:
    """Runs one IG dataset on one machine configuration."""

    def __init__(self, config: MachineConfig, dataset: IgDataset,
                 nodes: int = 1024, seed: int = 11):
        self.config = config
        self.dataset = dataset
        self.proc = make_processor(config)
        self.graph = IrregularGraph(nodes, dataset.avg_degree, seed)
        self._indexed = config.supports_indexing
        self.strip_edges = dataset.strip_edges(self._indexed)
        self.strips = self.graph.strips(self.strip_edges)
        self._acc = {}
        self._setup_memory()
        self._setup_arrays()
        self.edge_kernel = self._build_edge_kernel()
        self.update_kernel = self._build_update_kernel()
        self.update_regions = []
        self.update_slots = []
        self._guard = None

    # ------------------------------------------------------------------
    def _setup_memory(self) -> None:
        # Node records in main memory: 2 words each (value, node id),
        # plus one sentinel record (id -1) that padded lockstep edges
        # gather harmlessly.
        graph = self.graph
        self.node_region = self.proc.memory.allocate(
            2 * (graph.nodes + 1), f"ig_nodes_{self.config.name}"
        )
        image = []
        for v in range(graph.nodes):
            image.extend((graph.values[v], float(v)))
        image.extend((0.0, -1.0))
        self.proc.memory.load_region(self.node_region, image)
        self._sentinel_offset = 2 * graph.nodes
        # The condensed edge (index) arrays and per-strip streams are
        # materialised per strip in build-time regions.

    def _setup_arrays(self) -> None:
        lanes = self.config.lanes
        srf = self.proc.srf
        max_edges = max(self.strip_edges * 2, 512)
        per_lane_edges = -(-max_edges // lanes) + 8
        words = per_lane_edges * lanes
        if self._indexed:
            self.edge_arrays = [SrfArray(srf, words, f"ig_e{i}")
                                for i in (0, 1)]
            node_words = max(2 * self.strip_edges, 256)
            self.nodes_arrays = [SrfArray(srf, node_words, f"ig_n{i}")
                                 for i in (0, 1)]
        else:
            self.gather_arrays = [SrfArray(srf, 2 * words, f"ig_g{i}")
                                  for i in (0, 1)]
        update_words = max(words // 2, 256)
        self.node_in_arrays = [SrfArray(srf, update_words, f"ig_u{i}")
                               for i in (0, 1)]
        self.out_arrays = [SrfArray(srf, update_words, f"ig_o{i}")
                           for i in (0, 1)]

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _chain(self, b: KernelBuilder, x):
        flops = self.dataset.flops_per_neighbor
        for k in range(flops):
            c = b.const(CHAIN_CONSTANTS[k % len(CHAIN_CONSTANTS)])
            if k % 2 == 0:
                x = b.mul(x, c, name=f"chain_m{k}")
            else:
                x = b.add(x, c, name=f"chain_a{k}")
        return x

    def _accumulate(self, node_id, contribution) -> float:
        nid = int(node_id)
        if nid >= 0:
            self._acc[nid] = self._acc.get(nid, 0.0) + contribution
        return 0.0

    def _build_edge_kernel(self) -> Kernel:
        """Phase A: one neighbour (edge) per lane per iteration.

        The ISRF variant reads a condensed 1-word edge record (owner
        node, neighbour slot) sequentially and the neighbour value with
        a cross-lane indexed read of the single de-duplicated copy. The
        Base variant consumes the replicated 2-word neighbour record
        (value, owner id) the per-strip gather produced.
        """
        b = KernelBuilder(
            f"igraph_{'isrf' if self._indexed else 'base'}_"
            f"f{self.dataset.flops_per_neighbor}"
        )
        if self._indexed:
            edges = b.istream("edges")
            edge = b.read(edges, name="edge")  # (node_id, nbr_index)
            node_id = b.logic(lambda e: e[0], edge, name="node_id")
            valid = b.logic(lambda e: e[0] >= 0, edge, name="valid")
            nodes = b.idx_istream("nodes")
            nbr_idx = b.logic(lambda e: e[1], edge, name="nbr_idx")
            value = b.idx_read(nodes, nbr_idx, predicate=valid,
                               name="nbr_value")
        else:
            gathered = b.istream("gathered")
            value = b.read(gathered, name="nbr_value")
            node_id = b.read(gathered, name="owner_id")
        contribution = self._chain(b, value)
        b.arith(self._accumulate, node_id, contribution, name="accum")
        return b.build()

    def _build_update_kernel(self) -> Kernel:
        """Phase B: write one node update per lane per iteration."""
        b = KernelBuilder("igraph_update")
        nodes_in = b.istream("nodes_in")
        out = b.ostream("updates")
        rec = b.read(nodes_in, name="node_rec")  # (node_id, old_value)
        new = b.arith(
            lambda r: (r[1] + UPDATE_SCALE * self._acc.get(int(r[0]), 0.0))
            if r[0] >= 0 else 0.0,
            rec, name="new_value",
        )
        b.write(out, new)
        return b.build()

    # ------------------------------------------------------------------
    # Per-strip data
    # ------------------------------------------------------------------
    def _strip_edge_lists(self, strip_nodes: list) -> tuple:
        """Deal nodes (with their edges) to lanes; returns per-lane edge
        tuple lists (padded) and per-lane useful edge counts."""
        lanes = self.config.lanes
        per_lane = [[] for _ in range(lanes)]
        for position, v in enumerate(strip_nodes):
            lane = position % lanes
            for u in self.graph.neighbors[v]:
                per_lane[lane].append((v, u))
        useful = [len(lst) for lst in per_lane]
        width = self._round_width(max(useful) if useful else 0)
        padded = [
            lst + [(-1, 0)] * (width - len(lst)) for lst in per_lane
        ]
        return padded, useful, width

    def _round_width(self, width: int) -> int:
        """Round per-lane stream lengths up to whole SRF access groups."""
        m = self.proc.srf.geometry.words_per_lane_access
        return max(m, -(-width // m) * m)

    def _strip_node_lists(self, strip_nodes: list) -> tuple:
        lanes = self.config.lanes
        per_lane = [[] for _ in range(lanes)]
        for position, v in enumerate(strip_nodes):
            per_lane[position % lanes].append((v, self.graph.values[v]))
        useful = [len(lst) for lst in per_lane]
        width = self._round_width(max(useful) if useful else 0)
        padded = [
            lst + [(-1, 0.0)] * (width - len(lst)) for lst in per_lane
        ]
        return padded, useful, width

    # ------------------------------------------------------------------
    def build_program(self, rep: int) -> StreamProgram:
        cfg = self.config
        strip_nodes = self.strips[rep % len(self.strips)]
        buf = rep % 2
        prog = StreamProgram(f"ig_{self.dataset.name}_{cfg.name}_{rep}")
        guard = [self._guard] if self._guard is not None else []

        edge_lists, useful_e, width_e = self._strip_edge_lists(strip_nodes)
        node_lists, useful_n, width_n = self._strip_node_lists(strip_nodes)
        lanes = cfg.lanes

        referenced = sorted({
            u for lst in edge_lists for (v, u) in lst if v >= 0
        })
        slot_of = {u: s for s, u in enumerate(referenced)}
        bindings = {}
        edge_deps = []
        if self._indexed:
            # --- condensed edge (index) stream ---------------------
            edge_arr = self.edge_arrays[buf]
            edge_words = [
                [(v, slot_of[u]) if v >= 0 else (-1, 0) for (v, u) in lst]
                for lst in edge_lists
            ]
            edge_region = self.proc.memory.allocate(
                max(1, width_e * lanes),
                f"ig_edges_{self.dataset.name}_{cfg.name}_{rep}",
            )
            self.proc.memory.load_region(
                edge_region, edge_arr.stream_image_per_lane(edge_words)
            )
            t_edges = prog.add_memory(
                load_op(edge_arr.seq_read(width_e * lanes), edge_region),
                deps=guard,
            )
            bindings["edges"] = edge_arr.seq_read(width_e * lanes)
            edge_deps.append(t_edges)
            nodes_arr = self.nodes_arrays[buf]
            node_vals_region = self.proc.memory.allocate(
                max(1, len(referenced)),
                f"ig_nvals_{self.dataset.name}_{cfg.name}_{rep}",
            )
            # De-duplicated node values: gather one copy per referenced
            # node from the memory-resident node records.
            t_nodes = prog.add_memory(gather_op(
                nodes_arr.seq_read(len(referenced)), self.node_region,
                [2 * u for u in referenced],
                name=f"ig_nodeload{rep}",
            ), deps=guard)
            bindings["nodes"] = nodes_arr.crosslane_read(len(referenced))
            edge_deps.append(t_nodes)
        else:
            # --- replicated neighbour records (value of u, id of v) --
            gather_arr = self.gather_arrays[buf]
            sentinel = self._sentinel_offset
            per_lane_offsets = [
                [
                    w
                    for (v, u) in lst
                    for w in (
                        (2 * u, 2 * v + 1) if v >= 0
                        else (sentinel, sentinel + 1)
                    )
                ]
                for lst in edge_lists
            ]
            offsets = gather_arr.stream_image_per_lane(per_lane_offsets)
            t_gather = prog.add_memory(gather_op(
                gather_arr.seq_read(2 * width_e * lanes), self.node_region,
                offsets, cacheable=cfg.has_cache,
                name=f"ig_gather{rep}",
            ), deps=guard)
            bindings["gathered"] = gather_arr.seq_read(2 * width_e * lanes)
            edge_deps.append(t_gather)

        def on_start():
            self._acc = {}

        t_phase_a = prog.add_kernel(KernelInvocation(
            self.edge_kernel, bindings, iterations=width_e,
            useful_iterations=useful_e,
            name=f"{self.edge_kernel.name}_s{rep}", on_start=on_start,
        ), deps=edge_deps)

        # --- phase B: node updates -----------------------------------
        node_in_arr = self.node_in_arrays[buf]
        out_arr = self.out_arrays[buf]
        node_in_region = self.proc.memory.allocate(
            max(1, width_n * lanes),
            f"ig_nin_{self.dataset.name}_{cfg.name}_{rep}",
        )
        self.proc.memory.load_region(
            node_in_region, node_in_arr.stream_image_per_lane(node_lists)
        )
        t_nin = prog.add_memory(
            load_op(node_in_arr.seq_read(width_n * lanes), node_in_region),
            deps=guard,
        )
        update_region = self.proc.memory.allocate(
            max(1, width_n * lanes),
            f"ig_upd_{self.dataset.name}_{cfg.name}_{rep}",
        )
        t_phase_b = prog.add_kernel(KernelInvocation(
            self.update_kernel,
            {"nodes_in": node_in_arr.seq_read(width_n * lanes),
             "updates": out_arr.seq_write(width_n * lanes)},
            iterations=width_n, useful_iterations=useful_n,
            name=f"igraph_update_s{rep}",
        ), deps=[t_phase_a, t_nin])
        t_store = prog.add_memory(store_op(
            out_arr.seq_write(width_n * lanes, name=f"ig_st{rep}"),
            update_region,
        ), deps=[t_phase_b])
        self._guard = t_store
        self.update_regions.append(update_region)
        self.update_slots.append((strip_nodes, node_lists, width_n))
        return prog

    # ------------------------------------------------------------------
    def verify(self) -> bool:
        reference = self.graph.reference_updates(
            self.dataset.flops_per_neighbor
        )
        for region, (strip_nodes, node_lists, width_n) in zip(
            self.update_regions, self.update_slots
        ):
            words = self.proc.memory.dump_region(region)
            per_lane = self.out_arrays[0].per_lane_from_stream_image(
                words, width_n
            )
            for lane, lst in enumerate(node_lists):
                for position, (v, _old) in enumerate(lst):
                    if v < 0:
                        continue
                    got = per_lane[lane][position]
                    if abs(got - reference[v]) > 1e-9 * max(
                        1.0, abs(reference[v])
                    ):
                        return False
        return True


def run(config: MachineConfig, dataset: "IgDataset | str" = "IG_SML",
        nodes: int = 1024, strips_to_run: int = 3, warmup: int = 1,
        seed: int = 11) -> AppResult:
    """Run one IG dataset; returns verified steady-state stats.

    ``strips_to_run`` counts measured strips; edges processed differ
    between Base and ISRF (longer strips), so harness comparisons
    normalise per edge.
    """
    if isinstance(dataset, str):
        dataset = TABLE4[dataset]
    bench = IgBenchmark(config, dataset, nodes=nodes, seed=seed)
    stats = steady_state_run(bench.proc, bench.build_program,
                             repeats=strips_to_run, warmup=warmup)
    verified = bench.verify()
    edges = sum(
        sum(len(bench.graph.neighbors[v]) for v in
            bench.strips[rep % len(bench.strips)])
        for rep in range(warmup + strips_to_run)
    )
    return AppResult(
        benchmark=dataset.name,
        config_name=config.name,
        stats=stats,
        verified=verified,
        details={
            "edges_processed": edges,
            "strip_edges": bench.strip_edges,
            "strips": len(bench.strips),
            "flops_per_neighbor": dataset.flops_per_neighbor,
            "avg_degree": dataset.avg_degree,
        },
    )
