"""Rijndael (AES-128-CBC) stream benchmark (paper §5.2).

Each cluster encrypts an independent data stream in CBC mode — "suitable
for encrypting network traffic or other applications with many
independent data streams". The T-table formulation performs 160 table
lookups per 16-byte block:

* **ISRF machines** replicate the five lookup tables (TE0–TE3 + S-box,
  ~4.25 KB) in every lane and perform the lookups with in-lane indexed
  SRF reads. Rijndael has five indexed streams, which is why it is one
  of the two benchmarks where ISRF1 and ISRF4 differ (§5.3).
* **Base/Cache machines** gather the looked-up table words from memory
  into a sequential stream the kernel then consumes. The gather
  addresses are produced by a functional pre-execution of the cipher
  (the hardware would interleave address-generation passes; using exact
  addresses is conservative *in favour of the baseline*). On the Cache
  machine the gathers are cacheable and the tables stay resident.

CBC chaining makes the ciphertext of block *i-1* an input to block *i*:
a genuine loop-carried dependence through the lookup-index computation,
which is exactly why Rijndael's static schedule length grows with
address–data separation in Figure 14.
"""

from __future__ import annotations

from repro.apps import aes
from repro.apps.common import AppResult, make_processor, steady_state_run
from repro.config.machine import MachineConfig
from repro.core.arrays import SrfArray
from repro.kernel.builder import KernelBuilder
from repro.kernel.ir import Kernel
from repro.machine.program import KernelInvocation, StreamProgram
from repro.memory.ops import gather_op, load_op, store_op

TABLE_NAMES = ("te0", "te1", "te2", "te3", "sbox")
TABLES = aes.T_TABLES + (list(aes.SBOX),)


def _byte(shift: int):
    return lambda w: (w >> shift) & 0xFF


def _xor(a, b):
    return a ^ b


def build_isrf_kernel(round_keys, iv_words) -> Kernel:
    """The indexed-SRF AES kernel: one CBC block per lane per iteration."""
    b = KernelBuilder("rijndael_isrf")
    pt = b.istream("pt")
    ct = b.ostream("ct")
    tables = {name: b.idxl_istream(name) for name in TABLE_NAMES}
    chain = [b.carry(iv_words[i], f"chain{i}") for i in range(4)]
    state = []
    for col in range(4):
        word = b.read(pt, name=f"pt{col}")
        word = b.logic(_xor, word, chain[col], name=f"cbc_xor{col}")
        rk = b.const(round_keys[col])
        state.append(b.logic(_xor, word, rk, name=f"ark0_{col}"))
    for rnd in range(1, aes.ROUNDS):
        new_state = []
        for col in range(4):
            lookups = []
            for t, (table, shift) in enumerate(
                zip(TABLE_NAMES[:4], (24, 16, 8, 0))
            ):
                source = state[(col + t) % 4]
                byte = b.logic(_byte(shift), source,
                               name=f"r{rnd}c{col}b{t}")
                lookups.append(b.idx_read(tables[table], byte,
                                          name=f"r{rnd}c{col}t{t}"))
            acc = b.logic(_xor, lookups[0], lookups[1])
            acc = b.logic(_xor, acc, lookups[2])
            acc = b.logic(_xor, acc, lookups[3])
            rk = b.const(round_keys[4 * rnd + col])
            new_state.append(b.logic(_xor, acc, rk, name=f"ark{rnd}_{col}"))
        state = new_state
    outputs = []
    for col in range(4):
        sub_bytes = []
        for t, shift in enumerate((24, 16, 8, 0)):
            source = state[(col + t) % 4]
            byte = b.logic(_byte(shift), source, name=f"fc{col}b{t}")
            sub_bytes.append(
                b.idx_read(tables["sbox"], byte, name=f"fs{col}t{t}")
            )
        combined = b.logic(
            lambda b0, b1, b2, b3: (b0 << 24) | (b1 << 16) | (b2 << 8) | b3,
            *sub_bytes, name=f"pack{col}",
        )
        rk = b.const(round_keys[40 + col])
        outputs.append(b.logic(_xor, combined, rk, name=f"ct{col}"))
    for col in range(4):
        b.update(chain[col], outputs[col])
        b.write(ct, outputs[col], name=f"wct{col}")
    return b.build()


def build_gather_kernel(round_keys, iv_words) -> Kernel:
    """The Base/Cache AES kernel: lookup values arrive sequentially.

    Identical XOR/packing structure, but the 160 table words per block
    are consumed from the ``lookups`` stream the gather produced.
    """
    b = KernelBuilder("rijndael_base")
    pt = b.istream("pt")
    ct = b.ostream("ct")
    lut = b.istream("lookups")
    chain = [b.carry(iv_words[i], f"chain{i}") for i in range(4)]
    state = []
    for col in range(4):
        word = b.read(pt, name=f"pt{col}")
        word = b.logic(_xor, word, chain[col], name=f"cbc_xor{col}")
        state.append(b.logic(_xor, word, b.const(round_keys[col])))
    for rnd in range(1, aes.ROUNDS):
        new_state = []
        for col in range(4):
            lookups = [
                b.read(lut, name=f"r{rnd}c{col}t{t}") for t in range(4)
            ]
            acc = b.logic(_xor, lookups[0], lookups[1])
            acc = b.logic(_xor, acc, lookups[2])
            acc = b.logic(_xor, acc, lookups[3])
            new_state.append(
                b.logic(_xor, acc, b.const(round_keys[4 * rnd + col]))
            )
        state = new_state
    outputs = []
    for col in range(4):
        sub_bytes = [b.read(lut, name=f"fc{col}t{t}") for t in range(4)]
        combined = b.logic(
            lambda b0, b1, b2, b3: (b0 << 24) | (b1 << 16) | (b2 << 8) | b3,
            *sub_bytes, name=f"pack{col}",
        )
        outputs.append(
            b.logic(_xor, combined, b.const(round_keys[40 + col]))
        )
    for col in range(4):
        b.update(chain[col], outputs[col])
        b.write(ct, outputs[col], name=f"wct{col}")
    return b.build()


class RijndaelBenchmark:
    """Runs AES-128-CBC on one machine configuration."""

    def __init__(self, config: MachineConfig, blocks_per_lane: int = 8,
                 seed: int = 1234):
        import random

        self.config = config
        self.blocks = blocks_per_lane
        self.proc = make_processor(config)
        lanes = config.lanes
        rng = random.Random(seed)
        self.key = bytes(rng.randrange(256) for _ in range(16))
        self.round_keys = aes.expand_key(self.key)
        self.iv_words = tuple(rng.getrandbits(32) for _ in range(4))
        iv_bytes = b"".join(w.to_bytes(4, "big") for w in self.iv_words)
        #: One independent plaintext stream per lane, per strip.
        self.plaintexts = {}
        self.expected = {}
        self._rng = rng
        self._iv_bytes = iv_bytes
        self._indexed = config.supports_indexing
        self._setup_arrays()
        self._build_kernel()

    # -- data -------------------------------------------------------------
    def _strip_data(self, rep: int) -> tuple:
        """(per-lane plaintext word lists, per-lane expected ciphertext)."""
        if rep not in self.plaintexts:
            lanes = self.config.lanes
            pts, cts = [], []
            for _lane in range(lanes):
                pt = bytes(self._rng.randrange(256)
                           for _ in range(16 * self.blocks))
                pts.append([
                    int.from_bytes(pt[4 * i : 4 * i + 4], "big")
                    for i in range(4 * self.blocks)
                ])
                ct = aes.cbc_encrypt(pt, self.key, self._iv_bytes)
                cts.append([
                    int.from_bytes(ct[4 * i : 4 * i + 4], "big")
                    for i in range(4 * self.blocks)
                ])
            self.plaintexts[rep] = pts
            self.expected[rep] = cts
        return self.plaintexts[rep], self.expected[rep]

    # -- machine setup ------------------------------------------------------
    def _setup_arrays(self) -> None:
        proc, cfg = self.proc, self.config
        words = 4 * self.blocks * cfg.lanes  # one strip of blocks
        self.strip_words = words
        # Double buffers so strip n+1's load overlaps strip n's kernel;
        # memory regions are per strip (allocated lazily in
        # build_program) so programs can be chained and built up front.
        self.pt_arrays = [SrfArray(proc.srf, words, f"pt{i}") for i in (0, 1)]
        self.ct_arrays = [SrfArray(proc.srf, words, f"ct{i}") for i in (0, 1)]
        self.pt_regions = {}
        self.ct_regions = {}
        # Cross-strip buffer-reuse guards: task ids of the previous
        # kernel/store that used each buffer.
        self._prev_kernel = {0: None, 1: None}
        self._prev_store = {0: None, 1: None}
        if self._indexed:
            self.table_arrays = {}
            for name, table in zip(TABLE_NAMES, TABLES):
                arr = SrfArray(proc.srf, 256 * cfg.lanes, name)
                arr.fill_replicated(table)
                self.table_arrays[name] = arr
        else:
            lookup_words = aes.LOOKUPS_PER_BLOCK * self.blocks * cfg.lanes
            self.lookup_arrays = [
                SrfArray(proc.srf, lookup_words, f"lut{i}") for i in (0, 1)
            ]
            # The five tables live consecutively in one memory region.
            self.table_region = proc.memory.allocate(5 * 256, "mem_tables")
            flat = []
            for table in TABLES:
                flat.extend(table)
            proc.memory.load_region(self.table_region, flat)

    def _build_kernel(self) -> None:
        if self._indexed:
            self.kernel = build_isrf_kernel(self.round_keys, self.iv_words)
        else:
            self.kernel = build_gather_kernel(self.round_keys, self.iv_words)

    # -- per-strip program ---------------------------------------------------
    def _gather_offsets(self, pts) -> list:
        """Table-region offsets of every lookup of the strip, in the
        exact order the kernel consumes them from its sequential stream."""
        lanes = self.config.lanes
        per_lane = []
        for lane in range(lanes):
            chain = list(self.iv_words)
            offsets = []
            for blk in range(self.blocks):
                words = tuple(
                    pts[lane][4 * blk + i] ^ chain[i] for i in range(4)
                )
                trace = aes.lookup_trace_block(words, self.round_keys)
                offsets.extend(256 * t + idx for t, idx in trace)
                chain = list(aes.encrypt_block_words(words, self.round_keys))
            per_lane.append(offsets)
        # Interleave into the sequential stream order (lane-striped).
        arr = self.lookup_arrays[0]
        return arr.stream_image_per_lane(per_lane)

    def build_program(self, rep: int) -> StreamProgram:
        pts, _ = self._strip_data(rep)
        buf = rep % 2
        cfg = self.config
        pt_arr, ct_arr = self.pt_arrays[buf], self.ct_arrays[buf]
        pt_region = self.proc.memory.allocate(
            self.strip_words, f"mem_pt_{cfg.name}_{rep}"
        )
        ct_region = self.proc.memory.allocate(
            self.strip_words, f"mem_ct_{cfg.name}_{rep}"
        )
        self.pt_regions[rep] = pt_region
        self.ct_regions[rep] = ct_region
        self.proc.memory.load_region(
            pt_region, pt_arr.stream_image_per_lane(pts)
        )
        # Loads into a double buffer must wait for the previous kernel
        # that read it; the kernel must wait for the previous store that
        # read its output buffer.
        load_guard = (
            [self._prev_kernel[buf]] if self._prev_kernel[buf] is not None
            else []
        )
        kernel_guard = (
            [self._prev_store[buf]] if self._prev_store[buf] is not None
            else []
        )
        prog = StreamProgram(f"rijndael_{cfg.name}_{rep}")
        t_pt = prog.add_memory(load_op(pt_arr.seq_read(), pt_region),
                               deps=load_guard)
        deps = [t_pt] + kernel_guard
        bindings = {"pt": pt_arr.seq_read(), "ct": ct_arr.seq_write()}
        if self._indexed:
            for name, arr in self.table_arrays.items():
                bindings[name] = arr.inlane_read(256)
        else:
            lut_arr = self.lookup_arrays[buf]
            offsets = self._gather_offsets(pts)
            t_lut = prog.add_memory(gather_op(
                lut_arr.seq_read(), self.table_region, offsets,
                cacheable=cfg.has_cache, name=f"gather_lut{rep}",
            ), deps=load_guard)
            bindings["lookups"] = lut_arr.seq_read()
            deps.append(t_lut)
        t_k = prog.add_kernel(
            KernelInvocation(self.kernel, bindings, iterations=self.blocks),
            deps=deps,
        )
        t_st = prog.add_memory(
            store_op(ct_arr.seq_write(name=f"st{rep}"), ct_region),
            deps=[t_k],
        )
        self._prev_kernel[buf] = t_k
        self._prev_store[buf] = t_st
        return prog

    # -- verification ---------------------------------------------------------
    def verify(self, rep: int) -> bool:
        _, expected = self._strip_data(rep)
        image = self.proc.memory.dump_region(self.ct_regions[rep])
        got = self.ct_arrays[rep % 2].per_lane_from_stream_image(
            image, 4 * self.blocks
        )
        return got == expected


def run(config: MachineConfig, blocks_per_lane: int = 8, repeats: int = 2,
        warmup: int = 1, seed: int = 1234) -> AppResult:
    """Run the Rijndael benchmark; returns verified steady-state stats."""
    bench = RijndaelBenchmark(config, blocks_per_lane, seed)
    stats = steady_state_run(bench.proc, bench.build_program,
                             repeats=repeats, warmup=warmup)
    verified = all(
        bench.verify(rep) for rep in range(warmup + repeats)
    )
    return AppResult(
        benchmark="Rijndael",
        config_name=config.name,
        stats=stats,
        verified=verified,
        details={
            "blocks_per_lane": blocks_per_lane,
            "lookups_per_block": aes.LOOKUPS_PER_BLOCK,
        },
    )
