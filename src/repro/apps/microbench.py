"""Synthetic SRF-throughput microbenchmarks (paper Figures 17 and 18).

These drive the :class:`~repro.core.srf.StreamRegisterFile` directly,
without kernels, exactly as the paper describes:

* **Figure 17** — in-lane indexed throughput: "a micro-benchmark that
  issues 4 random reads per cycle per cluster on every cycle" (four
  indexed streams, one address each per cycle, honouring the
  one-access-per-stream-per-cycle limit of §5.3), with an 8-cycle
  separation between address issue and data consumption. Swept over the
  number of sub-arrays per bank and the address-FIFO size.
* **Figure 18** — cross-lane indexed throughput: "1 random cross-cluster
  read and 3 sequential stream accesses per cycle per cluster", swept
  over the number of cross-lane network ports per SRF bank and the
  fraction of cycles carrying unrelated inter-cluster communication
  (which has network priority).

Reported throughput is sustained indexed words per cycle per lane.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config.machine import MachineConfig
from repro.config.presets import isrf4_config
from repro.core.arrays import SrfArray
from repro.core.srf import PortDirection, StreamRegisterFile
from repro.errors import ExecutionError


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one microbenchmark run."""

    words_per_cycle_per_lane: float
    cycles: int
    issued: int
    completed: int


def _config_with_subarrays(subarrays: int, fifo_entries: int,
                           ports_per_bank: int = 1,
                           network: str = "crossbar",
                           arbitration: str = "round_robin",
                           shared_network: bool = False) -> MachineConfig:
    return isrf4_config(
        subarrays_per_bank=subarrays,
        inlane_indexed_bandwidth=subarrays,
        address_fifo_words=fifo_entries,
        crosslane_ports_per_bank=ports_per_bank,
        crosslane_network=network,
        indexed_arbitration=arbitration,
        shared_interlane_network=shared_network,
    )


def inlane_random_read_throughput(
    subarrays: int = 4,
    fifo_entries: int = 8,
    streams: int = 4,
    cycles: int = 2000,
    separation: int = 8,
    seed: int = 3,
    arbitration: str = "round_robin",
) -> ThroughputResult:
    """Figure 17's measurement for one (sub-arrays, FIFO size) point."""
    if streams <= 0 or cycles <= 0:
        raise ExecutionError("streams and cycles must be positive")
    config = _config_with_subarrays(subarrays, fifo_entries,
                                    arbitration=arbitration)
    srf = StreamRegisterFile(config)
    lanes = config.lanes
    rng = random.Random(seed)
    records = 512
    arrays = [SrfArray(srf, records * lanes, f"mb{i}") for i in range(streams)]
    for array in arrays:
        array.fill_replicated(list(range(records)))
    streams_open = [
        srf.open_indexed(array.inlane_read(records)) for array in arrays
    ]
    issued = completed = 0
    #: Issue timestamps per (stream, lane) so data is consumed only
    #: ``separation`` cycles after its address was issued.
    ready_queue = [[[] for _ in range(lanes)] for _ in streams_open]
    for cycle in range(cycles):
        # Consume data whose separation window has elapsed (decoupled
        # late read: frees reorder-buffer slots).
        for s, stream in enumerate(streams_open):
            for lane in range(lanes):
                pending = ready_queue[s][lane]
                while (pending and pending[0] + separation <= cycle
                       and stream.data_ready(lane)):
                    stream.pop_data(lane)
                    pending.pop(0)
                    completed += 1
        # Issue one random read per stream per lane (4 reads/cycle/lane)
        # in SIMD lockstep: a full address FIFO anywhere stalls issue for
        # the whole cluster array, which is why small FIFOs lose
        # throughput (Figure 17).
        can_issue_all = all(
            stream.can_issue(lane)
            for stream in streams_open for lane in range(lanes)
        )
        if can_issue_all:
            for s, stream in enumerate(streams_open):
                for lane in range(lanes):
                    stream.issue_read(lane, rng.randrange(records))
                    ready_queue[s][lane].append(cycle)
                    issued += 1
        srf.tick(cycle)
    words = srf.stats.inlane_grants
    return ThroughputResult(
        words_per_cycle_per_lane=words / cycles / lanes,
        cycles=cycles,
        issued=issued,
        completed=completed,
    )


def crosslane_random_read_throughput(
    ports_per_bank: int = 1,
    comm_occupancy: float = 0.0,
    cycles: int = 2000,
    separation: int = 8,
    sequential_streams: int = 3,
    seed: int = 4,
    network: str = "crossbar",
    shared_network: bool = False,
    issue_probability: float = 1.0,
) -> ThroughputResult:
    """Figure 18's measurement for one (ports, comm-occupancy) point.

    ``network`` selects the address-network topology: the paper's full
    crossbar, or the sparse ring of the §7 future-work evaluation.
    ``shared_network`` multiplexes index traffic onto the inter-cluster
    network (§4.5's preferred single-network option).
    """
    if not 0.0 <= comm_occupancy <= 1.0:
        raise ExecutionError("comm occupancy must be in [0, 1]")
    config = _config_with_subarrays(4, 8, ports_per_bank, network=network,
                                    shared_network=shared_network)
    srf = StreamRegisterFile(config)
    lanes = config.lanes
    rng = random.Random(seed)
    records = 4096
    nodes = SrfArray(srf, records, "mb_nodes")
    nodes.fill_stream_order(list(range(records)))
    stream = srf.open_indexed(nodes.crosslane_read(records))
    # Three always-busy sequential streams contending for the SRF port.
    seq_arrays = [
        SrfArray(srf, 4096, f"mb_seq{i}") for i in range(sequential_streams)
    ]
    seq_ports = []
    for array in seq_arrays:
        port = srf.open_sequential(array.seq_read(), PortDirection.READ)
        seq_ports.append(port)
    issued = completed = 0
    pending = [[] for _ in range(lanes)]
    comm_accumulator = 0.0
    for cycle in range(cycles):
        # Keep sequential demand continuous: drain buffers and restart
        # finished streams.
        for position, port in enumerate(seq_ports):
            while port.can_pop():
                port.pop_simd()
            if port.drained:
                srf.close_sequential(port)
                port = srf.open_sequential(
                    seq_arrays[position].seq_read(), PortDirection.READ
                )
                seq_ports[position] = port
        for lane in range(lanes):
            queue = pending[lane]
            while (queue and queue[0] + separation <= cycle
                   and stream.data_ready(lane)):
                stream.pop_data(lane)
                queue.pop(0)
                completed += 1
        for lane in range(lanes):
            if rng.random() >= issue_probability:
                continue
            if stream.can_issue(lane):
                stream.issue_read(lane, rng.randrange(records))
                pending[lane].append(cycle)
                issued += 1
        # Deterministic comm-cycle pattern at the requested occupancy.
        comm_accumulator += comm_occupancy
        comm_busy = comm_accumulator >= 1.0
        if comm_busy:
            comm_accumulator -= 1.0
        srf.tick(cycle, comm_busy=comm_busy)
    words = srf.stats.crosslane_grants
    return ThroughputResult(
        words_per_cycle_per_lane=words / cycles / lanes,
        cycles=cycles,
        issued=issued,
        completed=completed,
    )
