"""Sparse matrix-vector multiply over CSR and CSC (ROADMAP item 3).

The ISSR paper ("Indirection Stream Semantic Registers", 2011.08070)
routes SpMV's dense-vector gather through indirect register streams;
this app reproduces that access pattern on the indexed SRF:

* **Base/Cache**: every ``x[col]`` access becomes a replicated record in
  a sequential stream, gathered from memory per strip exactly like the
  IG benchmark's neighbour gather (Figure 5a). On the Cache machine the
  gather is cacheable, so column-index locality shows up as hit rate.
* **ISRF**: the dense vector ``x`` is loaded once, striped across all
  SRF banks, and every access is a cross-lane indexed read of that
  single copy (Figure 5b). Column-index locality shows up as
  bank-conflict pressure on the indexed crossbar instead of off-chip
  traffic — the contrast the locality sweep (2311.10378) measures.

Formats differ in where the accumulation lives:

* **CSR** deals rows round-robin to lanes; each lane walks its rows'
  entries in CSR order and accumulates row dot-products host-side
  (like IG's update accumulator), then a phase-B kernel emits ``y``.
  The accumulation order is exactly scipy's ``csr_matvec`` order, so
  verification is bit-identical equality.
* **CSC** gives each lane a contiguous block of rows and keeps its
  ``y`` slice resident in-lane, accumulated with read-modify-write
  through an ``idxl_iostream`` (the §7 read-write extension); entries
  stream in column-major ``(col, row, position)`` order — exactly the
  order scipy's ``tocsc()`` conversion produces — so the per-row
  addition sequence matches ``csc_matvec`` bit for bit. The vector
  backend refuses read-write indexed streams and falls back to the
  scalar engine by design; this app keeps that fallback path honest.

Every data-dependent gather index goes through the kernel-level
``clamp`` range guard, which is what lets ``repro.analyze`` prove the
accesses in bounds (interval domain: ``clamp(TOP, 0, n-1) = [0, n-1]``)
without any suppressions.
"""

from __future__ import annotations

import random

import numpy as np

from repro.apps.common import AppResult, make_processor, steady_state_run
from repro.config.machine import MachineConfig
from repro.core.arrays import SrfArray
from repro.errors import ExecutionError
from repro.kernel.builder import KernelBuilder
from repro.kernel.ir import Kernel
from repro.machine.program import KernelInvocation, StreamProgram
from repro.memory.ops import gather_op, load_op, store_op

#: Column-index locality regimes for the locality sweep (2311.10378).
ORDERINGS = ("sorted", "random", "clustered")

#: Supported compressed formats.
FORMATS = ("csr", "csc")


class SparseMatrix:
    """A CSR matrix (duplicates kept, rows possibly empty/unsorted)."""

    def __init__(self, rows: int, cols: int, indptr: list, indices: list,
                 data: list):
        self.rows = rows
        self.cols = cols
        self.indptr = indptr
        self.indices = indices
        self.data = data

    @property
    def nnz(self) -> int:
        return len(self.data)

    def row_entries(self, r: int) -> list:
        """``(position, col, value)`` of row ``r`` in CSR order."""
        lo, hi = self.indptr[r], self.indptr[r + 1]
        return [(k, self.indices[k], self.data[k]) for k in range(lo, hi)]

    def colmajor_entries(self) -> list:
        """``(col, row, position, value)`` sorted by (col, row, position).

        This is exactly the entry order scipy's ``tocsc()`` conversion
        produces (stable per column in row order, duplicates kept), so
        accumulating in this order reproduces ``csc_matvec`` bitwise.
        """
        entries = []
        for r in range(self.rows):
            for k in range(self.indptr[r], self.indptr[r + 1]):
                entries.append((self.indices[k], r, k, self.data[k]))
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        return entries

    def to_dense(self) -> np.ndarray:
        """Dense copy (duplicates summed) — for differential tests."""
        dense = np.zeros((self.rows, self.cols))
        for r in range(self.rows):
            for k in range(self.indptr[r], self.indptr[r + 1]):
                dense[r, self.indices[k]] += self.data[k]
        return dense


def random_matrix(rows: int, cols: int, avg_nnz: int = 6,
                  ordering: str = "sorted", seed: int = 29,
                  empty_row_every: int = 7,
                  duplicate_rate: float = 0.15) -> SparseMatrix:
    """Seeded sparse matrix with controllable column-index locality.

    * ``sorted`` — per-row columns drawn from a diagonal band and sorted
      ascending (the best case for bank spread and cache reuse);
    * ``random`` — uniform over all columns, left in draw order;
    * ``clustered`` — power-law concentration on a hot column subset
      (the worst case for bank conflicts, the best for a cache).

    Every ``empty_row_every``-th row is empty and ``duplicate_rate``
    repeats the previous column in place of a fresh draw, so the CSR
    shapes the fuzz strategies stress (empty rows, duplicate-heavy
    rows) occur in every generated matrix.
    """
    if ordering not in ORDERINGS:
        raise ExecutionError(f"unknown ordering {ordering!r}")
    rng = random.Random(seed)
    indptr = [0]
    indices: list = []
    data: list = []
    window = max(2, cols // 8)
    for r in range(rows):
        if empty_row_every and (r + 1) % empty_row_every == 0:
            indptr.append(len(indices))
            continue
        degree = max(1, round(rng.gauss(avg_nnz, avg_nnz / 4)))
        row_cols = []
        for j in range(degree):
            if j and duplicate_rate and rng.random() < duplicate_rate:
                row_cols.append(row_cols[-1])
                continue
            if ordering == "clustered":
                c = min(cols - 1, int(cols * rng.random() ** 4))
            elif ordering == "sorted":
                center = r * cols // max(1, rows)
                c = min(cols - 1,
                        max(0, center + rng.randint(-window, window)))
            else:
                c = rng.randrange(cols)
            row_cols.append(c)
        if ordering == "sorted":
            row_cols.sort()
        for c in row_cols:
            indices.append(c)
            data.append(rng.uniform(0.5, 1.5))
        indptr.append(len(indices))
    return SparseMatrix(rows, cols, indptr, indices, data)


def dense_vector(cols: int, seed: int = 31) -> list:
    rng = random.Random(seed)
    return [rng.uniform(0.5, 1.5) for _ in range(cols)]


def reference_matvec_csr(matrix: SparseMatrix, x: list) -> list:
    """``A @ x`` accumulated per row in CSR entry order.

    This is the float-operation order of scipy's ``csr_matvec``, so the
    scipy differential can assert exact equality.
    """
    y = [0.0] * matrix.rows
    for r in range(matrix.rows):
        acc = 0.0
        for k in range(matrix.indptr[r], matrix.indptr[r + 1]):
            acc = acc + matrix.data[k] * x[matrix.indices[k]]
        y[r] = acc
    return y


def reference_matvec_csc(matrix: SparseMatrix, x: list) -> list:
    """``A @ x`` accumulated in column-major order (``csc_matvec``)."""
    y = [0.0] * matrix.rows
    for c, r, _k, a in matrix.colmajor_entries():
        y[r] = y[r] + a * x[c]
    return y


class SpmvBenchmark:
    """Runs SpMV in one format on one machine configuration."""

    def __init__(self, config: MachineConfig, matrix: SparseMatrix,
                 x: list, fmt: str = "csr",
                 strip_rows: "int | None" = None):
        if fmt not in FORMATS:
            raise ExecutionError(f"unknown SpMV format {fmt!r}")
        self.config = config
        self.matrix = matrix
        self.x = [float(v) for v in x]
        if len(self.x) != matrix.cols:
            raise ExecutionError("dense vector length != matrix cols")
        self.fmt = fmt
        self.proc = make_processor(config)
        self._indexed = config.supports_indexing
        lanes = config.lanes
        if strip_rows is None:
            strip_rows = max(lanes, -(-matrix.rows // 3))
        strip_rows = -(-strip_rows // lanes) * lanes
        self.strip_rows = strip_rows
        self.rows_per_lane = strip_rows // lanes
        self.strips = [
            (r0, min(r0 + strip_rows, matrix.rows))
            for r0 in range(0, matrix.rows, strip_rows)
        ]
        self._acc: dict = {}
        self._guard = None
        self._x_task = None
        self.result_slots: list = []
        self._inlane_y = self._indexed and fmt == "csc"
        colmajor = matrix.colmajor_entries() if fmt == "csc" else None
        self._layouts = [
            self._layout_strip(strip, colmajor) for strip in self.strips
        ]
        self._row_layouts = [
            self._layout_rows(strip) for strip in self.strips
        ]
        self._setup_memory()
        self._setup_arrays()
        self._build_kernels()

    # ------------------------------------------------------------------
    # Per-strip data layout
    # ------------------------------------------------------------------
    def _round_width(self, width: int) -> int:
        """Round per-lane stream lengths up to whole SRF access groups."""
        m = self.proc.srf.geometry.words_per_lane_access
        return max(m, -(-width // m) * m)

    def _layout_strip(self, strip: tuple, colmajor: "list | None") -> dict:
        """Per-lane ``(row, col, value)`` entry streams for one strip.

        CSR deals rows round-robin and keeps CSR entry order; CSC gives
        lane ``L`` the contiguous rows ``[row0 + L*rpl, row0 + (L+1)*rpl)``
        and keeps global column-major order within the lane.
        """
        row0, row1 = strip
        lanes = self.config.lanes
        per_lane: list = [[] for _ in range(lanes)]
        if self.fmt == "csr":
            for position, r in enumerate(range(row0, row1)):
                lane = position % lanes
                for _k, c, a in self.matrix.row_entries(r):
                    per_lane[lane].append((r, c, a))
        else:
            rpl = self.rows_per_lane
            for c, r, _k, a in colmajor or ():
                if row0 <= r < row1:
                    per_lane[(r - row0) // rpl].append((r, c, a))
        useful = [len(lst) for lst in per_lane]
        width = self._round_width(max(useful) if useful else 0)
        padded = [
            lst + [(-1, 0, 0.0)] * (width - len(lst)) for lst in per_lane
        ]
        return {"per_lane": padded, "useful": useful, "width": width}

    def _layout_rows(self, strip: tuple) -> dict:
        """Phase-B row streams: strip rows dealt round-robin to lanes."""
        row0, row1 = strip
        lanes = self.config.lanes
        per_lane: list = [[] for _ in range(lanes)]
        for position, r in enumerate(range(row0, row1)):
            per_lane[position % lanes].append(r)
        useful = [len(lst) for lst in per_lane]
        width = self._round_width(max(useful) if useful else 0)
        padded = [lst + [-1] * (width - len(lst)) for lst in per_lane]
        return {"per_lane": padded, "useful": useful, "width": width}

    # ------------------------------------------------------------------
    def _setup_memory(self) -> None:
        cfg = self.config
        matrix = self.matrix
        if self._indexed:
            self.x_region = self.proc.memory.allocate(
                matrix.cols, f"spmv_x_{self.fmt}_{cfg.name}"
            )
            self.proc.memory.load_region(self.x_region, list(self.x))
        else:
            # Combined gather source: x values, then float row ids, then
            # a (0.0, -1.0) sentinel pair for lockstep padding.
            image = list(self.x)
            image.extend(float(r) for r in range(matrix.rows))
            image.extend((0.0, -1.0))
            self.xrow_region = self.proc.memory.allocate(
                len(image), f"spmv_xrow_{self.fmt}_{cfg.name}"
            )
            self.proc.memory.load_region(self.xrow_region, image)
            self._rowid_base = matrix.cols
            self._sentinel = matrix.cols + matrix.rows
        if self._inlane_y:
            self.y_records = self._round_width(self.rows_per_lane)
            self.y_words = self.y_records * cfg.lanes
            self.zeros_region = self.proc.memory.allocate(
                self.y_words, f"spmv_zeros_{cfg.name}"
            )
            self.proc.memory.load_region(
                self.zeros_region, [0.0] * self.y_words
            )

    def _setup_arrays(self) -> None:
        lanes = self.config.lanes
        srf = self.proc.srf
        width_e = max(layout["width"] for layout in self._layouts)
        if self._indexed:
            self.x_arr = SrfArray(srf, self.matrix.cols, "spmv_x")
            self.key_arrays = [SrfArray(srf, width_e * lanes, f"spmv_k{i}")
                               for i in (0, 1)]
            self.col_arrays = [SrfArray(srf, width_e * lanes, f"spmv_c{i}")
                               for i in (0, 1)]
            if self._inlane_y:
                self.y_arrays = [SrfArray(srf, self.y_words, f"spmv_y{i}")
                                 for i in (0, 1)]
        else:
            self.gather_arrays = [
                SrfArray(srf, 2 * width_e * lanes, f"spmv_g{i}")
                for i in (0, 1)
            ]
        self.val_arrays = [SrfArray(srf, width_e * lanes, f"spmv_v{i}")
                           for i in (0, 1)]
        if not self._inlane_y:
            width_n = max(layout["width"] for layout in self._row_layouts)
            self.rows_in_arrays = [
                SrfArray(srf, width_n * lanes, f"spmv_r{i}") for i in (0, 1)
            ]
            self.y_out_arrays = [
                SrfArray(srf, width_n * lanes, f"spmv_o{i}") for i in (0, 1)
            ]

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _accumulate(self, row_id, contribution) -> float:
        rid = int(row_id)
        if rid >= 0:
            self._acc[rid] = self._acc.get(rid, 0.0) + contribution
        return 0.0

    def _row_result(self, row_id):
        if row_id >= 0:
            return self._acc.get(int(row_id), 0.0)
        return 0.0

    def _build_kernels(self) -> None:
        if self._inlane_y:
            self.main_kernel = self._build_isrf_csc_kernel()
        elif self._indexed:
            self.main_kernel = self._build_isrf_csr_kernel()
        else:
            self.main_kernel = self._build_gather_kernel()
        self.update_kernel = (
            None if self._inlane_y else self._build_update_kernel()
        )

    def _build_isrf_csr_kernel(self) -> Kernel:
        """One entry per lane per iteration; x via cross-lane gather."""
        b = KernelBuilder("spmv_csr_isrf")
        rows_s = b.istream("rows")
        cols_s = b.istream("cols")
        vals_s = b.istream("vals")
        x_s = b.idx_istream("x")
        r = b.read(rows_s, name="row")
        c = b.read(cols_s, name="col")
        a = b.read(vals_s, name="aval")
        valid = b.logic(lambda rr: rr >= 0, r, name="valid")
        idx = b.clamp(c, b.const(0), b.const(self.matrix.cols - 1),
                      name="xidx")
        xv = b.idx_read(x_s, idx, predicate=valid, name="xval")
        prod = b.mul(a, xv, name="prod")
        b.arith(self._accumulate, r, prod, name="accum")
        return b.build()

    def _build_isrf_csc_kernel(self) -> Kernel:
        """Column-major entries; ``y`` accumulated in-lane via the
        read-write indexed stream (read, add, write back)."""
        b = KernelBuilder("spmv_csc_isrf")
        locs_s = b.istream("locs")
        cols_s = b.istream("cols")
        vals_s = b.istream("vals")
        x_s = b.idx_istream("x")
        y_s = b.idxl_iostream("y")
        loc = b.read(locs_s, name="loc")
        c = b.read(cols_s, name="col")
        a = b.read(vals_s, name="aval")
        valid = b.logic(lambda v: v >= 0, loc, name="valid")
        xidx = b.clamp(c, b.const(0), b.const(self.matrix.cols - 1),
                       name="xidx")
        xv = b.idx_read(x_s, xidx, predicate=valid, name="xval")
        prod = b.mul(a, xv, name="prod")
        yidx = b.clamp(loc, b.const(0), b.const(self.y_records - 1),
                       name="yidx")
        old = b.idx_read(y_s, yidx, predicate=valid, name="yold")
        new = b.add(old, prod, name="ynew")
        b.idx_write(y_s, yidx, new, predicate=valid, name="ywrite")
        return b.build()

    def _build_gather_kernel(self) -> Kernel:
        """Base/Cache: x values arrive replicated in a gathered stream."""
        b = KernelBuilder(f"spmv_{self.fmt}_gather")
        gathered = b.istream("gathered")
        vals_s = b.istream("vals")
        xv = b.read(gathered, name="xval")
        rid = b.read(gathered, name="rowid")
        a = b.read(vals_s, name="aval")
        prod = b.mul(a, xv, name="prod")
        b.arith(self._accumulate, rid, prod, name="accum")
        return b.build()

    def _build_update_kernel(self) -> Kernel:
        """Phase B: one ``y`` element per lane per iteration."""
        b = KernelBuilder("spmv_update")
        rows_in = b.istream("rows_in")
        out = b.ostream("y")
        r = b.read(rows_in, name="row")
        y = b.arith(self._row_result, r, name="yval")
        b.write(out, y)
        return b.build()

    # ------------------------------------------------------------------
    def build_program(self, rep: int) -> StreamProgram:
        cfg = self.config
        lanes = cfg.lanes
        buf = rep % 2
        sidx = rep % len(self.strips)
        layout = self._layouts[sidx]
        width_e = layout["width"]
        per_lane = layout["per_lane"]
        prog = StreamProgram(f"spmv_{self.fmt}_{cfg.name}_{rep}")
        guard = [self._guard] if self._guard is not None else []
        deps_a: list = []
        bindings: dict = {}
        if self._indexed:
            if self._x_task is None:
                self._x_task = prog.add_memory(
                    load_op(self.x_arr.seq_read(self.matrix.cols),
                            self.x_region),
                    deps=guard,
                )
            deps_a.append(self._x_task)
            bindings["x"] = self.x_arr.crosslane_read(self.matrix.cols)
            if self.fmt == "csr":
                key_name = "rows"
                key_words = [[r for (r, _c, _a) in lst] for lst in per_lane]
            else:
                key_name = "locs"
                row0 = self.strips[sidx][0]
                rpl = self.rows_per_lane
                key_words = [
                    [(r - row0) % rpl if r >= 0 else -1
                     for (r, _c, _a) in lst]
                    for lst in per_lane
                ]
            col_words = [[c for (_r, c, _a) in lst] for lst in per_lane]
            streams = (
                (self.key_arrays[buf], key_name, key_words),
                (self.col_arrays[buf], "cols", col_words),
            )
            for arr, name, words in streams:
                region = self.proc.memory.allocate(
                    max(1, width_e * lanes),
                    f"spmv_{name}_{cfg.name}_{rep}",
                )
                self.proc.memory.load_region(
                    region, arr.stream_image_per_lane(words)
                )
                deps_a.append(prog.add_memory(
                    load_op(arr.seq_read(width_e * lanes), region),
                    deps=guard,
                ))
                bindings[name] = arr.seq_read(width_e * lanes)
            if self._inlane_y:
                y_arr = self.y_arrays[buf]
                deps_a.append(prog.add_memory(
                    load_op(y_arr.seq_read(self.y_words),
                            self.zeros_region),
                    deps=guard,
                ))
                bindings["y"] = y_arr.inlane_readwrite(self.y_records)
        else:
            gather_arr = self.gather_arrays[buf]
            rbase, sentinel = self._rowid_base, self._sentinel
            per_lane_offsets = [
                [
                    w
                    for (r, c, _a) in lst
                    for w in (
                        (c, rbase + r) if r >= 0
                        else (sentinel, sentinel + 1)
                    )
                ]
                for lst in per_lane
            ]
            offsets = gather_arr.stream_image_per_lane(per_lane_offsets)
            deps_a.append(prog.add_memory(gather_op(
                gather_arr.seq_read(2 * width_e * lanes), self.xrow_region,
                offsets, cacheable=cfg.has_cache,
                name=f"spmv_gather{rep}",
            ), deps=guard))
            bindings["gathered"] = gather_arr.seq_read(2 * width_e * lanes)
        val_arr = self.val_arrays[buf]
        val_words = [[a for (_r, _c, a) in lst] for lst in per_lane]
        val_region = self.proc.memory.allocate(
            max(1, width_e * lanes), f"spmv_vals_{cfg.name}_{rep}"
        )
        self.proc.memory.load_region(
            val_region, val_arr.stream_image_per_lane(val_words)
        )
        deps_a.append(prog.add_memory(
            load_op(val_arr.seq_read(width_e * lanes), val_region),
            deps=guard,
        ))
        bindings["vals"] = val_arr.seq_read(width_e * lanes)

        def on_start():
            self._acc = {}

        t_main = prog.add_kernel(KernelInvocation(
            self.main_kernel, bindings, iterations=width_e,
            useful_iterations=layout["useful"],
            name=f"{self.main_kernel.name}_s{rep}",
            on_start=None if self._inlane_y else on_start,
        ), deps=deps_a)

        if self._inlane_y:
            y_arr = self.y_arrays[buf]
            y_region = self.proc.memory.allocate(
                self.y_words, f"spmv_y_{cfg.name}_{rep}"
            )
            t_store = prog.add_memory(store_op(
                y_arr.seq_write(self.y_words, name=f"spmv_st{rep}"),
                y_region,
            ), deps=[t_main])
            self.result_slots.append(("inlane", sidx, y_region, buf))
        else:
            row_layout = self._row_layouts[sidx]
            width_n = row_layout["width"]
            rows_in_arr = self.rows_in_arrays[buf]
            out_arr = self.y_out_arrays[buf]
            rows_region = self.proc.memory.allocate(
                max(1, width_n * lanes), f"spmv_rowsin_{cfg.name}_{rep}"
            )
            self.proc.memory.load_region(
                rows_region,
                rows_in_arr.stream_image_per_lane(row_layout["per_lane"]),
            )
            t_rows = prog.add_memory(
                load_op(rows_in_arr.seq_read(width_n * lanes), rows_region),
                deps=guard,
            )
            y_region = self.proc.memory.allocate(
                max(1, width_n * lanes), f"spmv_yout_{cfg.name}_{rep}"
            )
            t_update = prog.add_kernel(KernelInvocation(
                self.update_kernel,
                {"rows_in": rows_in_arr.seq_read(width_n * lanes),
                 "y": out_arr.seq_write(width_n * lanes)},
                iterations=width_n,
                useful_iterations=row_layout["useful"],
                name=f"spmv_update_s{rep}",
            ), deps=[t_main, t_rows])
            t_store = prog.add_memory(store_op(
                out_arr.seq_write(width_n * lanes, name=f"spmv_st{rep}"),
                y_region,
            ), deps=[t_update])
            self.result_slots.append(("update", sidx, y_region, buf))
        self._guard = t_store
        return prog

    # ------------------------------------------------------------------
    def reference(self) -> list:
        if self.fmt == "csr":
            return reference_matvec_csr(self.matrix, self.x)
        return reference_matvec_csc(self.matrix, self.x)

    def verify(self) -> bool:
        """Exact (bitwise) equality against the format's reference."""
        reference = self.reference()
        for kind, sidx, region, buf in self.result_slots:
            words = self.proc.memory.dump_region(region)
            if kind == "update":
                row_layout = self._row_layouts[sidx]
                per_lane = self.y_out_arrays[buf].per_lane_from_stream_image(
                    words, row_layout["width"]
                )
                for lane, lst in enumerate(row_layout["per_lane"]):
                    for position, r in enumerate(lst):
                        if r < 0:
                            continue
                        if per_lane[lane][position] != reference[r]:
                            return False
            else:
                per_lane = self.y_arrays[buf].per_lane_from_stream_image(
                    words, self.y_records
                )
                row0, row1 = self.strips[sidx]
                for lane in range(self.config.lanes):
                    for loc in range(self.rows_per_lane):
                        r = row0 + lane * self.rows_per_lane + loc
                        if r >= row1:
                            break
                        if per_lane[lane][loc] != reference[r]:
                            return False
        return True


def run(config: MachineConfig, fmt: str = "csr", rows: int = 96,
        cols: int = 96, avg_nnz: int = 6, ordering: str = "sorted",
        strips_to_run: int = 3, warmup: int = 1, seed: int = 29,
        strip_rows: "int | None" = None) -> AppResult:
    """Run SpMV in one format; returns verified steady-state stats.

    ``ordering`` selects the column-index locality regime the locality
    sweep compares; harness comparisons normalise per nonzero
    (``details["nnz_processed"]``).
    """
    matrix = random_matrix(rows, cols, avg_nnz=avg_nnz, ordering=ordering,
                           seed=seed)
    x = dense_vector(cols, seed=seed + 2)
    bench = SpmvBenchmark(config, matrix, x, fmt=fmt,
                          strip_rows=strip_rows)
    stats = steady_state_run(bench.proc, bench.build_program,
                             repeats=strips_to_run, warmup=warmup)
    verified = bench.verify()
    nnz_processed = sum(
        sum(bench._layouts[rep % len(bench.strips)]["useful"])
        for rep in range(warmup + strips_to_run)
    )
    return AppResult(
        benchmark=f"SpMV_{fmt.upper()}",
        config_name=config.name,
        stats=stats,
        verified=verified,
        details={
            "format": fmt,
            "rows": rows,
            "cols": cols,
            "nnz": matrix.nnz,
            "ordering": ordering,
            "nnz_processed": nnz_processed,
            "strips": len(bench.strips),
        },
    )
