"""AES-128 (Rijndael), implemented from scratch.

The paper's Rijndael benchmark uses "an optimized implementation that
relies on large numbers of lookups into pre-computed tables" ([25]) in
cipher block chaining mode ([26]). This module provides that exact
formulation: the four 256-entry 32-bit T-tables for the main rounds, the
S-box for the final round, key expansion, block encryption, and CBC —
all built from the GF(2^8) definitions in FIPS-197, with no library
dependencies. The stream benchmark (:mod:`repro.apps.rijndael`) places
these tables in the SRF (indexed machines) or in DRAM (Base/Cache) and
performs the identical lookups through the simulated machine.
"""

from __future__ import annotations

from repro.errors import ExecutionError

MASK32 = 0xFFFFFFFF


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) mod x^8+x^4+x^3+x+1."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Full GF(2^8) multiplication (used to build the S-box)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); 0 maps to 0 (FIPS-197 §5.1.1)."""
    if a == 0:
        return 0
    # a^254 = a^-1 in GF(2^8).
    result, power, exponent = 1, a, 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, power)
        power = _gf_mul(power, power)
        exponent >>= 1
    return result


def _build_sbox() -> list:
    """The AES S-box: GF(2^8) inverse followed by the affine transform."""
    sbox = []
    for value in range(256):
        inv = _gf_inverse(value)
        transformed = 0
        for bit in range(8):
            parity = (
                (inv >> bit) ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8)) ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8)) ^ (0x63 >> bit)
            ) & 1
            transformed |= parity << bit
        sbox.append(transformed)
    return sbox


SBOX = _build_sbox()


def _build_t_tables() -> tuple:
    """The four encryption T-tables (one byte-rotation apart)."""
    te0 = []
    for value in range(256):
        s = SBOX[value]
        word = (
            (_xtime(s) << 24) | (s << 16) | (s << 8) | (_xtime(s) ^ s)
        ) & MASK32
        te0.append(word)

    def ror8(word: int) -> int:
        return ((word >> 8) | (word << 24)) & MASK32

    te1 = [ror8(w) for w in te0]
    te2 = [ror8(w) for w in te1]
    te3 = [ror8(w) for w in te2]
    return te0, te1, te2, te3


TE0, TE1, TE2, TE3 = _build_t_tables()
T_TABLES = (TE0, TE1, TE2, TE3)

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

ROUNDS = 10
BLOCK_WORDS = 4
BLOCK_BYTES = 16


def expand_key(key: bytes) -> list:
    """AES-128 key schedule: 44 32-bit round-key words (FIPS-197 §5.2)."""
    if len(key) != 16:
        raise ExecutionError("AES-128 needs a 16-byte key")
    words = [
        int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(4)
    ]
    for i in range(4, 44):
        temp = words[i - 1]
        if i % 4 == 0:
            temp = ((temp << 8) | (temp >> 24)) & MASK32  # RotWord
            temp = (  # SubWord
                (SBOX[(temp >> 24) & 0xFF] << 24)
                | (SBOX[(temp >> 16) & 0xFF] << 16)
                | (SBOX[(temp >> 8) & 0xFF] << 8)
                | SBOX[temp & 0xFF]
            )
            temp ^= RCON[i // 4 - 1] << 24
        words.append(words[i - 4] ^ temp)
    return words


def encrypt_block_words(state: tuple, round_keys: list) -> tuple:
    """Encrypt one block given as four big-endian 32-bit words.

    This is the T-table formulation: each of the 9 main rounds performs
    16 table lookups (4 tables x 4 state words); the final round uses 16
    S-box lookups. 160 lookups per block total — the access pattern the
    stream benchmark reproduces on the simulated machine.
    """
    s0, s1, s2, s3 = (
        state[0] ^ round_keys[0], state[1] ^ round_keys[1],
        state[2] ^ round_keys[2], state[3] ^ round_keys[3],
    )
    for rnd in range(1, ROUNDS):
        rk = round_keys[4 * rnd : 4 * rnd + 4]
        t0 = (TE0[(s0 >> 24) & 0xFF] ^ TE1[(s1 >> 16) & 0xFF]
              ^ TE2[(s2 >> 8) & 0xFF] ^ TE3[s3 & 0xFF] ^ rk[0])
        t1 = (TE0[(s1 >> 24) & 0xFF] ^ TE1[(s2 >> 16) & 0xFF]
              ^ TE2[(s3 >> 8) & 0xFF] ^ TE3[s0 & 0xFF] ^ rk[1])
        t2 = (TE0[(s2 >> 24) & 0xFF] ^ TE1[(s3 >> 16) & 0xFF]
              ^ TE2[(s0 >> 8) & 0xFF] ^ TE3[s1 & 0xFF] ^ rk[2])
        t3 = (TE0[(s3 >> 24) & 0xFF] ^ TE1[(s0 >> 16) & 0xFF]
              ^ TE2[(s1 >> 8) & 0xFF] ^ TE3[s2 & 0xFF] ^ rk[3])
        s0, s1, s2, s3 = t0, t1, t2, t3
    rk = round_keys[40:44]
    out0 = ((SBOX[(s0 >> 24) & 0xFF] << 24) | (SBOX[(s1 >> 16) & 0xFF] << 16)
            | (SBOX[(s2 >> 8) & 0xFF] << 8) | SBOX[s3 & 0xFF]) ^ rk[0]
    out1 = ((SBOX[(s1 >> 24) & 0xFF] << 24) | (SBOX[(s2 >> 16) & 0xFF] << 16)
            | (SBOX[(s3 >> 8) & 0xFF] << 8) | SBOX[s0 & 0xFF]) ^ rk[1]
    out2 = ((SBOX[(s2 >> 24) & 0xFF] << 24) | (SBOX[(s3 >> 16) & 0xFF] << 16)
            | (SBOX[(s0 >> 8) & 0xFF] << 8) | SBOX[s1 & 0xFF]) ^ rk[2]
    out3 = ((SBOX[(s3 >> 24) & 0xFF] << 24) | (SBOX[(s0 >> 16) & 0xFF] << 16)
            | (SBOX[(s1 >> 8) & 0xFF] << 8) | SBOX[s2 & 0xFF]) ^ rk[3]
    return (out0 & MASK32, out1 & MASK32, out2 & MASK32, out3 & MASK32)


def encrypt_block(plaintext: bytes, key: bytes) -> bytes:
    """Encrypt one 16-byte block (convenience wrapper)."""
    if len(plaintext) != BLOCK_BYTES:
        raise ExecutionError("AES blocks are 16 bytes")
    round_keys = expand_key(key)
    words = tuple(
        int.from_bytes(plaintext[4 * i : 4 * i + 4], "big") for i in range(4)
    )
    out = encrypt_block_words(words, round_keys)
    return b"".join(w.to_bytes(4, "big") for w in out)


def cbc_encrypt(plaintext: bytes, key: bytes, iv: bytes) -> bytes:
    """AES-128-CBC over a whole-block message (no padding)."""
    if len(plaintext) % BLOCK_BYTES:
        raise ExecutionError("CBC input must be whole blocks")
    if len(iv) != BLOCK_BYTES:
        raise ExecutionError("IV must be 16 bytes")
    round_keys = expand_key(key)
    chain = tuple(
        int.from_bytes(iv[4 * i : 4 * i + 4], "big") for i in range(4)
    )
    out = bytearray()
    for offset in range(0, len(plaintext), BLOCK_BYTES):
        block = plaintext[offset : offset + BLOCK_BYTES]
        words = tuple(
            int.from_bytes(block[4 * i : 4 * i + 4], "big") ^ chain[i]
            for i in range(4)
        )
        chain = encrypt_block_words(words, round_keys)
        for word in chain:
            out += word.to_bytes(4, "big")
    return bytes(out)


def lookup_trace_block(state: tuple, round_keys: list) -> list:
    """The (table, index) sequence of one block encryption.

    Returns 160 ``(table_id, byte_index)`` pairs in issue order —
    table_id 0..3 for TE0..TE3 in the main rounds and 4 for the final
    round's S-box. The Base/Cache variants of the stream benchmark
    gather exactly these addresses from memory.
    """
    trace = []
    s = [state[i] ^ round_keys[i] for i in range(4)]
    for rnd in range(1, ROUNDS):
        rk = round_keys[4 * rnd : 4 * rnd + 4]
        t = []
        for col in range(4):
            b0 = (s[col] >> 24) & 0xFF
            b1 = (s[(col + 1) % 4] >> 16) & 0xFF
            b2 = (s[(col + 2) % 4] >> 8) & 0xFF
            b3 = s[(col + 3) % 4] & 0xFF
            trace.extend([(0, b0), (1, b1), (2, b2), (3, b3)])
            t.append(TE0[b0] ^ TE1[b1] ^ TE2[b2] ^ TE3[b3] ^ rk[col])
        s = t
    for col in range(4):
        trace.extend([
            (4, (s[col] >> 24) & 0xFF),
            (4, (s[(col + 1) % 4] >> 16) & 0xFF),
            (4, (s[(col + 2) % 4] >> 8) & 0xFF),
            (4, s[(col + 3) % 4] & 0xFF),
        ])
    return trace


#: Lookups per block in the T-table formulation (9*16 + 16).
LOOKUPS_PER_BLOCK = 160
