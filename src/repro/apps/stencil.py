"""SARIS-style 2D stencils through indirect stream registers.

SARIS ("Stream Register Allocation for Iterative Stencils", 2404.05303)
drives stencil grids through indirect stream registers; this app
reproduces the access pattern on the indexed SRF with two classic
patterns over a 3x3 window: the 5-point **star** and the 9-point
**box**.

Layout is lane-banded with a halo exchange, like the Filter benchmark:
each lane holds a vertical band of the grid — its output columns plus a
``RADIUS``-column halo replicated from the neighbouring lanes (or
edge-padded at the grid boundary). Strips of rows are double-buffered
through the SRF, each strip carrying ``RADIUS`` halo rows above and
below.

* **ISRF**: the kernel scans every band position with an induction
  counter and reads each tap at ``base + dr*band_width + dc`` — a pure
  affine address, so ``repro.analyze``'s affine domain proves every
  indexed access in bounds *exactly* (contrast Filter, whose opaque
  address closures only get hull notes). The halo columns of each
  output row are computed and discarded; verification checks the
  interior columns.
* **Base/Cache**: the band streams through sequentially while the taps
  come from scratchpad closures, paying the paper's §3.2 state
  management cost (bookkeeping ops) like the Filter benchmark.

Both variants produce bit-identical output: the reference accumulates
taps in exactly the kernel's ``mac_chain`` order, so verification (and
the NumPy differential test) can assert exact equality.
"""

from __future__ import annotations

import numpy as np

from repro.apps.common import AppResult, make_processor, steady_state_run
from repro.config.machine import MachineConfig
from repro.core.arrays import SrfArray
from repro.errors import ExecutionError
from repro.kernel.builder import KernelBuilder
from repro.machine.program import KernelInvocation, StreamProgram
from repro.memory.ops import load_op, store_op

#: Window radius: a 3x3 window reaches 1 pixel in every direction.
RADIUS = 1

#: Tap patterns: ``((dr, dc), coefficient)`` with offsets relative to
#: the top-left of the (2*RADIUS+1)^2 window, in fixed mac_chain order.
PATTERNS = {
    "star": (
        ((0, 1), 0.125),
        ((1, 0), 0.125),
        ((1, 1), 0.5),
        ((1, 2), 0.125),
        ((2, 1), 0.125),
    ),
    "box": tuple(
        ((dr, dc), weight / 16.0)
        for dr, row in enumerate(((1.0, 2.0, 1.0),
                                  (2.0, 4.0, 2.0),
                                  (1.0, 2.0, 1.0)))
        for dc, weight in enumerate(row)
    ),
}


def reference_stencil(image: np.ndarray, pattern: str) -> np.ndarray:
    """Golden model: valid rows, edge-padded columns.

    Accumulates the taps in exactly the kernel's ``mac_chain`` order so
    the comparison is bit-identical, not approximate.
    """
    taps = PATTERNS[pattern]
    padded = np.pad(image, ((0, 0), (RADIUS, RADIUS)), mode="edge")
    height = image.shape[0] - 2 * RADIUS
    width = image.shape[1]
    (dr, dc), coeff = taps[0]
    out = padded[dr:dr + height, dc:dc + width] * coeff
    for (dr, dc), coeff in taps[1:]:
        out = out + padded[dr:dr + height, dc:dc + width] * coeff
    return out


class StencilBenchmark:
    """Runs one stencil pattern on one machine configuration."""

    def __init__(self, config: MachineConfig, pattern: str = "star",
                 height: int = 16, width: int = 32, seed: int = 37,
                 rows_per_strip: "int | None" = None):
        if pattern not in PATTERNS:
            raise ExecutionError(f"unknown stencil pattern {pattern!r}")
        lanes = config.lanes
        if width % lanes:
            raise ExecutionError("grid width must divide across lanes")
        self.config = config
        self.pattern = pattern
        self.taps = PATTERNS[pattern]
        self.height = height
        self.width = width
        self.cols_per_lane = width // lanes
        self.band_width = self.cols_per_lane + 2 * RADIUS
        self.out_rows = height - 2 * RADIUS
        if self.out_rows <= 0:
            raise ExecutionError("grid too short for the window")
        self.proc = make_processor(config)
        self.rng = np.random.default_rng(seed)
        self.image = self.rng.normal(size=(height, width))
        self._indexed = config.supports_indexing
        if rows_per_strip is None:
            rows_per_strip = max(1, -(-self.out_rows // 2))
        if not 1 <= rows_per_strip <= self.out_rows:
            raise ExecutionError("rows_per_strip out of range")
        self.rows_per_strip = rows_per_strip
        self.n_strips = -(-self.out_rows // rows_per_strip)
        self.out_regions: dict = {}
        self._guards = {"kernel": {0: None, 1: None},
                        "store": {0: None, 1: None}}
        self._setup_arrays()
        self._build_kernel()

    # ------------------------------------------------------------------
    def _round_width(self, width: int) -> int:
        """Round per-lane stream lengths up to whole SRF access groups."""
        m = self.proc.srf.geometry.words_per_lane_access
        return max(m, -(-width // m) * m)

    def _iterations(self, strip_rows: int) -> int:
        """Trip count for one strip: a full scan of the band (halo
        columns included), padded to whole access groups so every
        per-lane stream extent stays block-aligned."""
        return self._round_width(strip_rows * self.band_width)

    def _in_records(self, strip_rows: int) -> int:
        """Per-lane band words for one strip: one word per scan
        position plus the reach of the bottom-right tap."""
        return self._iterations(strip_rows) + 2 * RADIUS * self.band_width \
            + 2 * RADIUS

    def _setup_arrays(self) -> None:
        lanes = self.config.lanes
        srf = self.proc.srf
        in_words = self._round_width(
            self._in_records(self.rows_per_strip)
        ) * lanes
        out_words = self._iterations(self.rows_per_strip) * lanes
        self.in_arrays = [SrfArray(srf, in_words, f"stn_in{i}")
                          for i in (0, 1)]
        self.out_arrays = [SrfArray(srf, out_words, f"stn_out{i}")
                           for i in (0, 1)]

    # ------------------------------------------------------------------
    def _build_kernel(self) -> None:
        if self._indexed:
            self._build_isrf_kernel()
        else:
            self._build_scratchpad_kernel()

    def _build_isrf_kernel(self) -> None:
        """Affine tap addressing: ``base + dr*band_width + dc`` where
        ``base`` is the induction counter — exactly provable."""
        b = KernelBuilder(f"stencil_{self.pattern}_isrf")
        out_s = b.ostream("out")
        grid = b.idxl_istream("grid")
        it = b.carry(0, "it")
        b.update(it, b.add(it, b.const(1), name="it_next"))
        taps = []
        for (dr, dc), coeff in self.taps:
            addr = b.add(it, b.const(dr * self.band_width + dc),
                         name=f"tap{dr}_{dc}")
            value = b.idx_read(grid, addr, name=f"px{dr}_{dc}")
            taps.append((value, b.const(float(coeff))))
        acc = b.mac_chain(taps)
        b.write(out_s, acc)
        self.kernel = b.build()

    def _build_scratchpad_kernel(self) -> None:
        """Sequential scan with scratchpad taps and bookkeeping cost."""
        b = KernelBuilder(f"stencil_{self.pattern}_scratch")
        in_s = b.istream("in")
        out_s = b.ostream("out")
        it = b.carry(0, "it")
        lane = b.laneid()
        b.update(it, b.logic(lambda i: i + 1, it, name="it_next"))
        px_in = b.read(in_s, name="px_in")
        taps = []
        for (dr, dc), coeff in self.taps:
            offset = dr * self.band_width + dc
            scratch = b.logic(
                (lambda off: lambda ln, t: self._scratch_read(
                    int(ln), int(t), off))(offset),
                lane, it, name=f"scr{dr}_{dc}",
            )
            taps.append((scratch, b.const(float(coeff))))
        # Window-shift / halo-seam bookkeeping ops plus the scratchpad
        # write-back of the streamed-in pixel (§3.2 state management).
        bookkeeping = b.logic(lambda _px: 0, px_in, name="book0")
        for k in range(1, 10):
            bookkeeping = b.logic(lambda v: v, bookkeeping, name=f"book{k}")
        acc = b.mac_chain(taps)
        acc = b.arith(lambda a, _bk: a, acc, bookkeeping, name="join")
        b.write(out_s, acc)
        self.kernel = b.build()

    def _scratch_read(self, lane: int, iteration: int, offset: int):
        """Functional scratchpad contents for the Base/Cache variant."""
        return self._current_bands[lane][iteration + offset]

    # ------------------------------------------------------------------
    def _band(self, rows: np.ndarray, lane: int) -> np.ndarray:
        """Lane ``lane``'s vertical band including the halo columns."""
        padded = np.pad(rows, ((0, 0), (RADIUS, RADIUS)), mode="edge")
        start = lane * self.cols_per_lane
        return padded[:, start:start + self.band_width]

    def _strip_rows(self, rep: int) -> tuple:
        """(first output row, output rows) of strip ``rep``."""
        row0 = (rep % self.n_strips) * self.rows_per_strip
        rows = min(self.rows_per_strip, self.out_rows - row0)
        return row0, rows

    def build_program(self, rep: int) -> StreamProgram:
        cfg = self.config
        lanes = cfg.lanes
        buf = rep % 2
        row0, strip_rows = self._strip_rows(rep)
        strip_image = self.image[row0:row0 + strip_rows + 2 * RADIUS]
        in_arr, out_arr = self.in_arrays[buf], self.out_arrays[buf]
        iterations = self._iterations(strip_rows)
        in_records = self._in_records(strip_rows)
        in_alloc = self._round_width(in_records)
        out_words = iterations * lanes
        bands = [
            [float(v) for v in self._band(strip_image, lane).ravel()]
            for lane in range(lanes)
        ]
        for band in bands:
            band.extend([0.0] * (in_records - len(band)))
        in_region = self.proc.memory.allocate(
            in_alloc * lanes, f"stn_in_{cfg.name}_{rep}"
        )
        self.proc.memory.load_region(
            in_region, in_arr.stream_image_per_lane(bands)
        )
        out_region = self.proc.memory.allocate(
            out_words, f"stn_out_{cfg.name}_{rep}"
        )
        self.out_regions[rep] = out_region
        prog = StreamProgram(f"stencil_{self.pattern}_{cfg.name}_{rep}")
        guard_k = self._guards["kernel"][buf]
        guard_s = self._guards["store"][buf]
        t_load = prog.add_memory(
            load_op(in_arr.seq_read(in_alloc * lanes), in_region),
            deps=[guard_k] if guard_k is not None else [],
        )
        if self._indexed:
            bindings = {"grid": in_arr.inlane_read(in_records),
                        "out": out_arr.seq_write(out_words)}
            on_start = None
        else:
            bindings = {"in": in_arr.seq_read(out_words),
                        "out": out_arr.seq_write(out_words)}

            def on_start(bands=bands):
                self._current_bands = bands

        t_kernel = prog.add_kernel(
            KernelInvocation(self.kernel, bindings, iterations=iterations,
                             useful_iterations=[
                                 strip_rows * self.cols_per_lane
                             ] * lanes,
                             name=f"stencil_{rep}", on_start=on_start),
            deps=[t_load] + ([guard_s] if guard_s is not None else []),
        )
        t_store = prog.add_memory(
            store_op(out_arr.seq_write(out_words, name=f"stn_st{rep}"),
                     out_region),
            deps=[t_kernel],
        )
        self._guards["kernel"][buf] = t_kernel
        self._guards["store"][buf] = t_store
        return prog

    # ------------------------------------------------------------------
    def verify(self, rep: int) -> bool:
        """Exact (bitwise) equality on the interior output columns."""
        row0, strip_rows = self._strip_rows(rep)
        expected = reference_stencil(self.image, self.pattern)[
            row0:row0 + strip_rows
        ]
        words = self.proc.memory.dump_region(self.out_regions[rep])
        per_lane = self.out_arrays[rep % 2].per_lane_from_stream_image(
            words, self._iterations(strip_rows)
        )
        cpl = self.cols_per_lane
        for lane in range(self.config.lanes):
            band_out = np.array(
                per_lane[lane][:strip_rows * self.band_width]
            ).reshape(strip_rows, self.band_width)
            got = band_out[:, :cpl]
            if not np.array_equal(got, expected[:, lane * cpl:(lane + 1) * cpl]):
                return False
        return True


def run(config: MachineConfig, pattern: str = "star", height: int = 16,
        width: int = 32, repeats: "int | None" = None, warmup: int = 1,
        seed: int = 37,
        rows_per_strip: "int | None" = None) -> AppResult:
    """Run one stencil pattern; returns verified steady-state stats.

    ``repeats`` defaults to one full pass over the grid's strips;
    harness comparisons normalise per output pixel
    (``details["pixels_processed"]``).
    """
    bench = StencilBenchmark(config, pattern, height, width, seed,
                             rows_per_strip=rows_per_strip)
    if repeats is None:
        repeats = max(2, bench.n_strips)
    stats = steady_state_run(bench.proc, bench.build_program,
                             repeats=repeats, warmup=warmup)
    verified = all(bench.verify(rep) for rep in range(warmup + repeats))
    pixels = sum(
        bench._strip_rows(rep)[1] * width
        for rep in range(warmup + repeats)
    )
    return AppResult(
        benchmark=f"Stencil_{pattern.upper()}",
        config_name=config.name,
        stats=stats,
        verified=verified,
        details={
            "pattern": pattern,
            "height": height,
            "width": width,
            "pixels_processed": pixels,
            "strips": bench.n_strips,
        },
    )
