"""Benchmark applications of the paper's evaluation (§5.2), plus the
sparse & stencil workload suite (ISSUE 10).

==========  =======================================================
Module      Benchmark
==========  =======================================================
fft         2D FFT on a 64x64 complex array
rijndael    AES-128-CBC with T-table lookups (tables in SRF/DRAM)
sort        Merge sort of 4096 values (conditional accesses)
filter2d    5x5 convolution over a 2D image (neighbour accesses)
igraph      Irregular-graph neighbour interactions (Table 4)
microbench  Random-access SRF throughput (Figures 17 and 18)
spmv        Sparse matrix-vector product, CSR and CSC (scipy-checked
            gather/scatter through the indexed SRF)
stencil     2D star/box stencils with lane-banded halos (NumPy-checked
            indirect neighbour reads)
==========  =======================================================

Every application module exposes ``run(config, **params) -> AppResult``.
"""

from repro.apps.common import AppResult, make_processor, steady_state_run

__all__ = ["AppResult", "make_processor", "steady_state_run"]
