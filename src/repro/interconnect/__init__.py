"""Inter-lane crossbars for cross-lane indexed SRF access (paper §4.5)."""

from repro.interconnect.crossbar import (
    AddressNetwork,
    CrossbarStats,
    ReturnNetwork,
    RingAddressNetwork,
)

__all__ = [
    "AddressNetwork",
    "CrossbarStats",
    "ReturnNetwork",
    "RingAddressNetwork",
]
