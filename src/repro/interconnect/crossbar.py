"""Inter-lane networks for cross-lane indexed SRF access (paper §4.5).

Two fully connected crossbars link the lanes (Figure 8c):

* the **address network** carries indices from the issuing cluster to the
  target SRF bank — each source cluster injects at most
  ``crosslane_indexed_bandwidth`` (= 1) index per cycle, and each bank
  accepts at most ``crosslane_ports_per_bank`` accesses per cycle (the
  knob swept in Figure 18);
* the **data return network** carries the accessed words back from the
  bank to the requesting lane's indexed stream buffer. Returns share the
  inter-cluster network with explicit (statically scheduled) cluster
  communication, which has priority. Because SRF banks and stream
  buffers have their own network ports (Figure 8c), a full crossbar
  leaves returns and comms contending only weakly: we model an explicit
  comm cycle as halving the per-destination return slots.

The paper's conclusion — that SRF-port contention, not inter-cluster
traffic, dominates cross-lane throughput loss — emerges from exactly
this structure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SrfError


@dataclass
class CrossbarStats:
    """Traffic counters for one network."""

    words_delivered: int = 0
    deferred_word_cycles: int = 0
    comm_cycles: int = 0
    #: Routes refused while the network was transiently faulted
    #: (repro.faults grant-drop windows).
    dropped_routes: int = 0


@dataclass
class _Return:
    destination_lane: int
    ticket: int
    value: object
    stream_id: int
    fill: object = field(repr=False)  # callable(ticket, value)


class ReturnNetwork:
    """Bank -> lane data-return crossbar for cross-lane indexed reads.

    Completed accesses are enqueued per source bank; each cycle the
    network delivers up to ``slots_per_destination`` words to every
    destination lane (halved, rounding up, on explicit-comm cycles).
    Banks whose return queue is full exert backpressure on local
    arbitration via :meth:`bank_has_space`.
    """

    def __init__(
        self,
        lanes: int,
        slots_per_destination: int = 2,
        bank_queue_depth: int = 4,
    ):
        if lanes <= 0:
            raise SrfError("ReturnNetwork needs at least one lane")
        if slots_per_destination <= 0 or bank_queue_depth <= 0:
            raise SrfError("network capacities must be positive")
        self.lanes = lanes
        self.slots_per_destination = slots_per_destination
        self.bank_queue_depth = bank_queue_depth
        self._queues = [deque() for _ in range(lanes)]
        self._reserved = [0] * lanes
        self.stats = CrossbarStats()

    def install_observer(self, observer, prefix: str = "return_network") -> None:
        """Expose this network's stats through an observer's registry."""
        if observer is None or observer.metrics is None:
            return
        stats = self.stats
        observer.metrics.add_provider(lambda: {
            f"{prefix}.words_delivered": stats.words_delivered,
            f"{prefix}.deferred_word_cycles": stats.deferred_word_cycles,
            f"{prefix}.comm_cycles": stats.comm_cycles,
            f"{prefix}.dropped_routes": stats.dropped_routes,
        })

    def bank_has_space(self, bank: int) -> bool:
        """Whether bank ``bank`` may accept another cross-lane access.

        Counts both queued words and reservations for accesses still in
        the bank's access pipeline.
        """
        return (
            len(self._queues[bank]) + self._reserved[bank]
            < self.bank_queue_depth
        )

    def reserve(self, bank: int) -> None:
        """Claim a return slot at grant time (released by enqueue)."""
        if not self.bank_has_space(bank):
            raise SrfError(f"return queue of bank {bank} is full")
        self._reserved[bank] += 1

    def enqueue(
        self, bank: int, destination_lane: int, ticket: int, value, stream_id: int, fill
    ) -> None:
        """Queue a completed access at its bank for return delivery."""
        if self._reserved[bank] > 0:
            self._reserved[bank] -= 1
        elif not self.bank_has_space(bank):
            raise SrfError(f"return queue of bank {bank} is full")
        self._queues[bank].append(
            _Return(destination_lane, ticket, value, stream_id, fill)
        )

    def pending(self) -> int:
        """Total words waiting in bank return queues."""
        return sum(len(q) for q in self._queues)

    def tick(self, comm_busy: bool) -> int:
        """Deliver queued returns for one cycle; returns words delivered.

        Each destination lane receives at most ``slots_per_destination``
        words. Explicit (statically scheduled) inter-cluster
        communication has absolute network priority (§4.5), so a comm
        cycle delivers no returns — deferred words back up in the bank
        return queues and, when those fill, throttle cross-lane grants.
        """
        slots = self.slots_per_destination
        if comm_busy:
            self.stats.comm_cycles += 1
            slots = 0
        if slots == 0:
            waiting = self.pending()
            self.stats.deferred_word_cycles += waiting
            return 0
        if not any(self._queues):
            return 0
        remaining = [slots] * self.lanes
        delivered = 0
        for queue in self._queues:
            undeliverable = deque()
            while queue:
                item = queue.popleft()
                if remaining[item.destination_lane] > 0:
                    remaining[item.destination_lane] -= 1
                    item.fill(item.ticket, item.value)
                    delivered += 1
                else:
                    undeliverable.append(item)
                    self.stats.deferred_word_cycles += 1
            queue.extend(undeliverable)
        self.stats.words_delivered += delivered
        return delivered


class AddressNetwork:
    """Per-cycle accounting for the dedicated cross-lane index crossbar.

    The network itself is non-blocking; the limits are at its ports:
    each source cluster can inject ``source_bandwidth`` indices per
    cycle and each SRF bank exposes ``ports_per_bank`` access ports.
    :meth:`begin_cycle` resets the port budgets; local arbitration calls
    :meth:`try_route` for each candidate cross-lane access.
    """

    def __init__(self, lanes: int, ports_per_bank: int = 1, source_bandwidth: int = 1):
        if lanes <= 0:
            raise SrfError("AddressNetwork needs at least one lane")
        if ports_per_bank <= 0 or source_bandwidth <= 0:
            raise SrfError("network port counts must be positive")
        self.lanes = lanes
        self.ports_per_bank = ports_per_bank
        self.source_bandwidth = source_bandwidth
        self._source_budget = [0] * lanes
        self._bank_budget = [0] * lanes
        #: Transient fault state (repro.faults): while set, every route
        #: attempt is refused — the grant retries on a later cycle, as a
        #: real network would after a dropped flit.
        self._fault_down = False
        self.stats = CrossbarStats()

    def install_observer(self, observer, prefix: str = "address_network") -> None:
        """Expose this network's stats through an observer's registry."""
        if observer is None or observer.metrics is None:
            return
        stats = self.stats
        observer.metrics.add_provider(lambda: {
            f"{prefix}.words_delivered": stats.words_delivered,
            f"{prefix}.dropped_routes": stats.dropped_routes,
        })

    def set_fault_drop(self, down: bool) -> None:
        """Mark the network faulted (dropping all grants) or healthy."""
        self._fault_down = down

    def begin_cycle(self) -> None:
        """Reset per-cycle port budgets."""
        for lane in range(self.lanes):
            self._source_budget[lane] = self.source_bandwidth
            self._bank_budget[lane] = self.ports_per_bank

    def can_route(self, source_lane: int, bank: int) -> bool:
        return (
            self._source_budget[source_lane] > 0
            and self._bank_budget[bank] > 0
        )

    def try_route(self, source_lane: int, bank: int) -> bool:
        """Consume one source slot and one bank port if both are free."""
        if self._fault_down:
            self.stats.dropped_routes += 1
            return False
        if not self.can_route(source_lane, bank):
            return False
        self._source_budget[source_lane] -= 1
        self._bank_budget[bank] -= 1
        self.stats.words_delivered += 1
        return True


class RingAddressNetwork(AddressNetwork):
    """Sparse alternative to the full address crossbar (paper §7).

    "We also intend to evaluate the impact of sparse interconnects for
    the address and data networks used for cross-lane accesses." This
    ring routes each index over the shortest arc of a bidirectional
    ring of lanes; every directed link carries at most
    ``link_bandwidth`` indices per cycle. The wiring cost is O(N)
    instead of the crossbar's O(N^2), at the price of link contention
    under all-to-all traffic — quantified by
    ``benchmarks/bench_ablation_sparse_network.py``.
    """

    def __init__(self, lanes: int, ports_per_bank: int = 1,
                 source_bandwidth: int = 1, link_bandwidth: int = 1):
        super().__init__(lanes, ports_per_bank, source_bandwidth)
        if link_bandwidth <= 0:
            raise SrfError("link bandwidth must be positive")
        self.link_bandwidth = link_bandwidth
        # Directed links: (lane, direction) with direction +1 or -1.
        self._link_budget = {}

    def begin_cycle(self) -> None:
        super().begin_cycle()
        self._link_budget = {}

    def _path(self, source_lane: int, bank: int) -> list:
        """Directed links of the shortest arc from source to bank."""
        n = self.lanes
        forward = (bank - source_lane) % n
        backward = (source_lane - bank) % n
        direction = 1 if forward <= backward else -1
        hops = min(forward, backward)
        links = []
        lane = source_lane
        for _ in range(hops):
            links.append((lane, direction))
            lane = (lane + direction) % n
        return links

    def can_route(self, source_lane: int, bank: int) -> bool:
        if not super().can_route(source_lane, bank):
            return False
        return all(
            self._link_budget.get(link, 0) < self.link_bandwidth
            for link in self._path(source_lane, bank)
        )

    def try_route(self, source_lane: int, bank: int) -> bool:
        if self._fault_down:
            self.stats.dropped_routes += 1
            return False
        if not self.can_route(source_lane, bank):
            return False
        for link in self._path(source_lane, bank):
            self._link_budget[link] = self._link_budget.get(link, 0) + 1
        self._source_budget[source_lane] -= 1
        self._bank_budget[bank] -= 1
        self.stats.words_delivered += 1
        return True
