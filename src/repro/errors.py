"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent machine configuration was supplied."""


class SrfError(ReproError):
    """An illegal stream-register-file operation was attempted."""


class SrfAllocationError(SrfError):
    """SRF space could not be allocated (capacity exceeded / overlap)."""


class SrfAccessError(SrfError):
    """An SRF access fell outside an allocated stream or the array."""


class KernelBuildError(ReproError):
    """A kernel dataflow graph was constructed incorrectly."""


class KernelVerifyError(KernelBuildError):
    """The static kernel IR verifier rejected a dataflow graph.

    Raised by :func:`repro.analyze.verify_kernel` when asked to enforce
    its diagnostics; carries the failing
    :class:`repro.analyze.Diagnostic` list in ``diagnostics``.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class AnalysisError(ReproError):
    """The static stream-program analyzer rejected a program.

    Carries the error-level :class:`repro.analyze.Diagnostic` list in
    ``diagnostics``.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)


class ScheduleError(ReproError):
    """The modulo scheduler could not produce a legal schedule."""


class ExecutionError(ReproError):
    """A stream program performed an illegal operation at run time."""


class DeadlockError(ExecutionError):
    """The deadlock watchdog fired: no forward progress for too long.

    Carries a :class:`repro.machine.diagnostics.DeadlockReport` in
    ``report`` (when the processor could build one) whose rendering is
    appended to the message, so the exception text alone names the
    blocked tasks, their unmet dependencies, in-flight memory operations
    and SRF occupancy.
    """

    def __init__(self, message: str, report=None):
        if report is not None:
            message = f"{message}\n{report.describe()}"
        super().__init__(message)
        self.report = report


class SanitizerError(ExecutionError):
    """The machine-state sanitizer found a broken cycle-level invariant.

    Only raised with :attr:`repro.config.MachineConfig.sanitize` on.
    Carries a :class:`repro.analyze.sanitize.SanitizerReport` in
    ``report`` whose rendering is appended to the message, so the
    exception text alone names the violated invariant, the component,
    and the machine state around it.
    """

    def __init__(self, message: str, report=None):
        if report is not None:
            message = f"{message}\n{report.describe()}"
        super().__init__(message)
        self.report = report


class MemorySystemError(ReproError):
    """An illegal memory-system request was issued."""


class StoreError(ReproError):
    """The durable store or its manifest journal is unusable.

    Raised by :mod:`repro.store` for conditions a caller cannot recover
    from by recomputing one entry — an unwritable directory, a manifest
    journal corrupted beyond its torn tail, or a lock that cannot be
    acquired. Per-entry corruption never raises: corrupt entries are
    quarantined and reads report a miss.
    """


class LockTimeout(StoreError):
    """An advisory store lock could not be acquired within the timeout.

    Carries the lock ``path`` and, when readable, the ``owner`` record
    (pid/host/timestamp) of the current live holder, so the error text
    alone identifies who is blocking the store.
    """

    def __init__(self, message: str, path: str = "", owner=None):
        super().__init__(message)
        self.path = path
        self.owner = owner


class SweepInterrupted(ReproError):
    """A harness sweep was stopped by SIGINT/SIGTERM and drained.

    The runner terminated every worker process group, journaled the
    interruption, and re-raised as this error. ``results``/``timings``
    carry everything completed before the drain; the sweep journal
    (when one was configured) allows ``--resume`` to continue exactly
    where the drain stopped.
    """

    def __init__(self, message: str, results=None, timings=None):
        super().__init__(message)
        self.results = dict(results) if results is not None else {}
        self.timings = dict(timings) if timings is not None else {}


class ReplayError(ReproError):
    """A recorded kernel trace does not match the run replaying it.

    Raised by :mod:`repro.machine.replay` when a trace bundle disagrees
    with the program being re-timed — wrong program shape, kernel name,
    iteration count or stream-op signature. Always indicates a stale or
    foreign trace (the store keys should have prevented the pairing),
    never a timing divergence.
    """
