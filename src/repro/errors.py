"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent machine configuration was supplied."""


class SrfError(ReproError):
    """An illegal stream-register-file operation was attempted."""


class SrfAllocationError(SrfError):
    """SRF space could not be allocated (capacity exceeded / overlap)."""


class SrfAccessError(SrfError):
    """An SRF access fell outside an allocated stream or the array."""


class KernelBuildError(ReproError):
    """A kernel dataflow graph was constructed incorrectly."""


class ScheduleError(ReproError):
    """The modulo scheduler could not produce a legal schedule."""


class ExecutionError(ReproError):
    """A stream program performed an illegal operation at run time."""


class MemorySystemError(ReproError):
    """An illegal memory-system request was issued."""
