"""Functional main (off-chip) memory.

Word-addressed backing store for everything that lives outside the SRF.
Benchmarks allocate named arrays here and the stream memory operations of
:mod:`repro.memory.controller` move data between this store and the SRF.
Timing is *not* modelled here — that is :class:`repro.memory.dram.DramModel`'s
job; this class only guarantees that the bytes a benchmark computes are
the bytes the simulated machine actually moved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MemorySystemError


@dataclass(frozen=True)
class MemoryRegion:
    """A named allocation of main memory."""

    name: str
    base: int
    words: int

    @property
    def end(self) -> int:
        return self.base + self.words

    def addr(self, offset: int) -> int:
        """Absolute word address of ``offset`` within the region."""
        if not 0 <= offset < self.words:
            raise MemorySystemError(
                f"{self.name}: offset {offset} outside region of {self.words}"
            )
        return self.base + offset


class MainMemory:
    """Sparse, word-granular main memory with a bump allocator.

    The address space is effectively unbounded (DRAM capacity is never
    the constraint in the paper's experiments); addresses are handed out
    row-aligned so that distinct arrays never share a DRAM row, keeping
    row-locality effects attributable to the access pattern itself.
    """

    def __init__(self, row_words: int = 512):
        if row_words <= 0:
            raise MemorySystemError("row_words must be positive")
        self.row_words = row_words
        self._words = {}
        self._next_base = 0
        self._regions = {}

    def allocate(self, words: int, name: str) -> MemoryRegion:
        """Allocate a row-aligned region of ``words`` words."""
        if words <= 0:
            raise MemorySystemError(f"{name}: allocation must be positive")
        if name in self._regions:
            raise MemorySystemError(f"region name {name!r} already in use")
        base = self._next_base
        rows = (words + self.row_words - 1) // self.row_words
        self._next_base += rows * self.row_words
        region = MemoryRegion(name, base, words)
        self._regions[name] = region
        return region

    def region(self, name: str) -> MemoryRegion:
        try:
            return self._regions[name]
        except KeyError:
            raise MemorySystemError(f"no region named {name!r}") from None

    def read(self, addr: int):
        """Read one word (uninitialised memory reads as 0)."""
        if addr < 0:
            raise MemorySystemError(f"negative memory address {addr}")
        return self._words.get(addr, 0)

    def write(self, addr: int, value) -> None:
        if addr < 0:
            raise MemorySystemError(f"negative memory address {addr}")
        self._words[addr] = value

    def read_range(self, base: int, count: int) -> list:
        return [self.read(base + i) for i in range(count)]

    def write_range(self, base: int, values) -> None:
        for i, value in enumerate(values):
            self.write(base + i, value)

    def load_region(self, region: MemoryRegion, values) -> None:
        """Initialise a region's contents from a sequence."""
        values = list(values)
        if len(values) > region.words:
            raise MemorySystemError(
                f"{region.name}: {len(values)} values exceed region size "
                f"{region.words}"
            )
        self.write_range(region.base, values)

    def dump_region(self, region: MemoryRegion) -> list:
        """Read back a whole region."""
        return self.read_range(region.base, region.words)
