"""The stream memory controller.

Executes :class:`~repro.memory.ops.StreamMemoryOp` transfers cycle by
cycle, mediating between three rate-limited resources:

* DRAM bus budget and row-buffer locality (:class:`DramModel`);
* optional on-chip cache bandwidth (``Cache`` configuration);
* the SRF port, which memory streams share with kernel streams via their
  own stream-buffer ports (paper §4.3) — modelled by registering a
  :class:`MemoryPort` per active op with the SRF arbiter.

Data staged between DRAM and the SRF lives in a bounded per-op staging
buffer (the memory-side stream buffer), so a stalled SRF port throttles
DRAM fetches and vice versa, exactly the decoupling the paper relies on
to overlap memory transfers with kernel execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import BankedCache
from repro.config.machine import MachineConfig
from repro.core.srf import StreamRegisterFile
from repro.errors import MemorySystemError
from repro.memory.dram import DramModel
from repro.memory.mainmem import MainMemory
from repro.memory.ops import StreamMemoryOp


def _accrual_cycles_until_positive(credit: float, step: float,
                                   cap: float) -> int:
    """Idle cycles before a per-cycle ``min(credit + step, cap)`` refill
    lifts ``credit`` above zero (0 = the very next accrual suffices)."""
    accruals = 0
    while True:
        credit = min(credit + step, cap)
        accruals += 1
        if credit > 0.0:
            return accruals - 1


@dataclass
class MemoryStats:
    """Aggregate controller statistics."""

    ops_completed: int = 0
    offchip_words: int = 0
    cache_hit_words: int = 0
    busy_cycles: int = 0


class MemoryPort:
    """SRF-port adapter for one active memory stream op.

    Implements the same ``wants_grant``/``on_grant`` protocol as kernel
    :class:`~repro.core.srf.SequentialPort` objects, so the single SRF
    port arbitrates between kernel and memory streams uniformly.
    """

    def __init__(self, op: "_ActiveOp", srf: StreamRegisterFile):
        self._op = op
        self._srf = srf
        self._into_srf = op.op.into_srf
        geometry = srf.geometry
        self.block_words = geometry.block_words
        self._total_blocks = geometry.blocks_spanned(
            op.op.srf.base, op.op.words
        )
        self._blocks_done = 0

    @property
    def srf_done(self) -> bool:
        return self._blocks_done >= self._total_blocks

    def _block_window(self) -> tuple:
        base = self._op.op.srf.base + self._blocks_done * self.block_words
        width = min(
            self.block_words,
            self._op.op.words - self._blocks_done * self.block_words,
        )
        return base, width

    def wants_grant(self) -> bool:
        if self._blocks_done >= self._total_blocks:
            return False
        _base, width = self._block_window()
        if self._into_srf:
            return self._op.staged_available() >= width
        return self._op.staging_space() >= width

    def on_grant(self, cycle: int) -> int:
        base, width = self._block_window()
        if self._into_srf:
            values = self._op.consume_staged(width)
            self._srf.storage.write_range(base, values)
        else:
            values = self._srf.filter_words(
                self._srf.storage.read_range(base, width)
            )
            self._op.stage(values)
        self._blocks_done += 1
        return width


class _ActiveOp:
    """Runtime state of one in-flight stream memory operation."""

    #: Staging (memory-side stream buffer) capacity in words: two full
    #: SRF blocks of decoupling per op.
    STAGING_BLOCKS = 2

    def __init__(self, op: StreamMemoryOp, srf: StreamRegisterFile,
                 issue_cycle: int, ready_cycle: int):
        self.op = op
        self.into_srf = op.into_srf
        self.issue_cycle = issue_cycle
        self.ready_cycle = ready_cycle
        self.mem_cursor = 0  # words moved on the DRAM/cache side
        self._staging = []
        self._staging_consumed = 0
        self.port = MemoryPort(self, srf)
        self.staging_capacity = self.STAGING_BLOCKS * self.port.block_words
        self.complete_cycle = None

    # -- staging buffer ---------------------------------------------------
    def staged_available(self) -> int:
        return len(self._staging) - self._staging_consumed

    def staging_space(self) -> int:
        return self.staging_capacity - self.staged_available()

    def stage(self, values) -> None:
        self._staging.extend(values)

    def consume_staged(self, count: int) -> list:
        start = self._staging_consumed
        if self.staged_available() < count:
            raise MemorySystemError(f"{self.op.describe()}: staging underrun")
        self._staging_consumed += count
        values = self._staging[start : start + count]
        if self._staging_consumed >= 4 * self.staging_capacity:
            del self._staging[: self._staging_consumed]
            self._staging_consumed = 0
        return values

    # -- progress ----------------------------------------------------------
    @property
    def mem_done(self) -> bool:
        return self.mem_cursor >= self.op.words

    @property
    def done(self) -> bool:
        if self.into_srf:
            return self.mem_done and self.port.srf_done
        return self.port.srf_done and self.mem_done and (
            self.staged_available() == 0
        )


class MemoryController:
    """Cycle-steppable controller for all stream memory traffic.

    ``issue`` starts an op (registering its SRF port); ``tick`` advances
    DRAM/cache transfers by one cycle; ``is_complete`` reports
    completion for the machine's stream-op dependency tracking.
    """

    def __init__(self, config: MachineConfig, srf: StreamRegisterFile,
                 memory: MainMemory):
        self.config = config
        self.srf = srf
        self.memory = memory
        self.dram = DramModel(config)
        self.cache = BankedCache(config) if config.has_cache else None
        self._cache_credit = 0.0
        self._active = []
        self._round_robin = 0
        self._completed = {}
        self.stats = MemoryStats()
        # Fault injection (repro.faults); both None when disabled.
        self._dram_injector = None
        self._delay_schedule = None
        # Observability (repro.observe); None when disabled.
        self._tracer = None
        self._ops_counter = None

    # ------------------------------------------------------------------
    # Observability (repro.observe)
    # ------------------------------------------------------------------
    def install_observer(self, observer) -> None:
        """Attach an :class:`repro.observe.Observer`; None is a no-op.

        Each stream memory op becomes an async trace span on the
        ``memory`` track (async because transfers overlap), paired by
        ``op_id``. The metrics registry sees the controller and DRAM
        aggregates via providers and, at any level, a live counter of
        issued ops used by the trace/metrics reconciliation tests.
        """
        if observer is None:
            return
        self._tracer = observer.tracer
        self.dram.install_observer(observer)
        if observer.metrics is not None:
            observer.metrics.add_provider(self._metrics_provider)
            self._ops_counter = observer.metrics.counter("memory.ops_issued")

    def _metrics_provider(self) -> dict:
        s = self.stats
        return {
            "memory.ops_completed": s.ops_completed,
            "memory.offchip_words": s.offchip_words,
            "memory.cache_hit_words": s.cache_hit_words,
            "memory.busy_cycles": s.busy_cycles,
        }

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------
    def install_faults(self, injector=None, delay_schedule=None) -> None:
        """Attach a DRAM-word bit-flip injector and/or a response-delay
        schedule (:class:`repro.faults.BitFlipInjector` /
        :class:`repro.faults.DelaySchedule`)."""
        self._dram_injector = injector
        self._delay_schedule = delay_schedule

    def _filter_dram(self, value):
        injector = self._dram_injector
        if injector is None or not injector.armed:
            return value
        return injector.filter(value)

    # ------------------------------------------------------------------
    def issue(self, op: StreamMemoryOp, cycle: int) -> None:
        """Begin executing a stream memory op at ``cycle``.

        ``cacheable`` is a hint: on machines without a cache it simply
        degrades to a plain DRAM access pattern.
        """
        ready = cycle + (
            self.cache.hit_latency
            if self.cache is not None and op.cacheable
            else self.config.dram_latency_cycles
        )
        if self._delay_schedule is not None:
            # Faulted memory part: responses issued after a delay event's
            # cycle arrive late by the event's duration.
            ready += self._delay_schedule.extra_latency(cycle)
        active = _ActiveOp(op, self.srf, cycle, ready)
        self._active.append(active)
        self.srf.attach_port(active.port)
        if self._tracer is not None:
            self._tracer.async_begin(
                "memory", op.describe(), cycle, event_id=op.op_id,
                words=op.words, into_srf=op.into_srf,
                cacheable=op.cacheable,
            )
        if self._ops_counter is not None:
            self._ops_counter.add()

    def is_complete(self, op_id: int) -> bool:
        return op_id in self._completed

    def completion_cycle(self, op_id: int) -> int:
        return self._completed[op_id]

    @property
    def busy(self) -> bool:
        return bool(self._active)

    @property
    def completed_ops(self) -> int:
        """Total stream memory ops retired so far (monotonic)."""
        return len(self._completed)

    # ------------------------------------------------------------------
    # Fast-forward support
    # ------------------------------------------------------------------
    def next_event_cycle(self, cycle: int) -> "int | None":
        """Earliest cycle at which :meth:`tick` could change state.

        Returns ``cycle`` itself when the upcoming tick may do real work
        (a retirement is pending, or a ready transfer can move a word),
        a future cycle when every active op is waiting out a fixed
        latency or a bandwidth-credit refill, and ``None`` when any
        remaining activity is driven purely from the SRF side (or there
        is none). Callers may skip the intervening cycles provided they
        route them through :meth:`fast_forward` so credit accrual and
        busy accounting stay bit-identical to per-cycle stepping.
        """
        nxt = None
        for active in self._active:
            if active.done:
                return cycle  # retirement pending at the next tick
            if active.mem_done:
                continue  # progress now comes through the SRF port
            if active.ready_cycle > cycle:
                candidate = active.ready_cycle
            else:
                wait = self._transfer_stall_cycles(active)
                if wait is None:
                    continue  # blocked on the SRF side, not on memory
                if wait == 0:
                    return cycle
                candidate = cycle + wait
            if nxt is None or candidate < nxt:
                nxt = candidate
        return nxt

    def _transfer_stall_cycles(self, active: _ActiveOp) -> "int | None":
        """Cycles before ``active`` could move its next word, or None.

        Mirrors the gating of :meth:`_move_one_word` without side
        effects. ``None`` means the op waits on SRF-port progress (its
        stream-buffer staging), which the SRF reports separately; an
        integer means the op is bandwidth-bound and unblocks after that
        many credit-accrual cycles.
        """
        op = active.op
        if active.into_srf:
            if active.staging_space() <= 0:
                return None
        elif active.staged_available() <= 0:
            return None
        if op.cacheable and self.cache is not None:
            wait = _accrual_cycles_until_positive(
                self._cache_credit,
                self.cache.words_per_cycle,
                4.0 * self.cache.words_per_cycle,
            )
            addr = op.mem_addrs[active.mem_cursor]
            if not self.cache.probe(addr):
                wait = max(wait, self.dram.cycles_until_can_access())
            return wait
        return self.dram.cycles_until_can_access()

    def fast_forward(self, cycles: int) -> None:
        """Apply ``cycles`` ticks of counter-only bookkeeping in bulk.

        Only valid when :meth:`next_event_cycle` reported no possible
        state change for the whole window: accrues DRAM/cache bandwidth
        credit exactly as ``cycles`` calls to :meth:`tick` would and
        charges busy-cycle accounting, without scanning transfers.
        """
        self.dram.accrue_idle_cycles(cycles)
        if self.cache is not None:
            credit = self._cache_credit
            step = self.cache.words_per_cycle
            cap = 4.0 * step
            for _ in range(cycles):
                if credit == cap:
                    break
                credit = min(credit + step, cap)
            self._cache_credit = credit
        if self._active:
            self.stats.busy_cycles += cycles

    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> None:
        """Advance DRAM/cache transfers by one cycle."""
        if self._dram_injector is not None:
            self._dram_injector.advance(cycle)
        self.dram.begin_cycle()
        if self.cache is not None:
            self._cache_credit = min(
                self._cache_credit + self.cache.words_per_cycle,
                4.0 * self.cache.words_per_cycle,
            )
        if self._active:
            self.stats.busy_cycles += 1
        self._transfer_round(cycle)
        self._retire(cycle)

    def _transfer_round(self, cycle: int) -> None:
        """Move words for active ops, oldest op first.

        The stream controller drains its command queue in issue order,
        so the oldest transfer gets the full remaining bus — this is
        what lets a dependent kernel start as early as possible while
        later (prefetch) transfers fill leftover bandwidth.
        """
        progressing = True
        while progressing:
            progressing = False
            for active in self._active:  # issue order
                if cycle < active.ready_cycle or active.mem_done:
                    continue
                if self._move_one_word(active):
                    progressing = True
                    break

    def _move_one_word(self, active: _ActiveOp) -> bool:
        """Try to move the next word of ``active`` on the memory side."""
        op = active.op
        into_srf = active.into_srf
        if into_srf:
            if active.staging_space() <= 0:
                return False
        elif active.staged_available() <= 0:
            return False
        addr = op.mem_addrs[active.mem_cursor]
        is_write = not into_srf
        if op.cacheable and self.cache is not None:
            if self._cache_credit <= 0.0:
                return False
            if not self.cache.probe(addr) and not self.dram.can_access():
                return False  # a miss needs DRAM budget for the fill
            result = self.cache.access(addr, is_write)
            self._cache_credit -= 1.0
            if result.hit:
                self.stats.cache_hit_words += 1
            else:
                for k in range(result.dram_read_words):
                    self.dram.charge(result.fill_base + k, False)
                for k in range(result.dram_writeback_words):
                    self.dram.charge(result.writeback_base + k, True)
                self.stats.offchip_words += result.dram_words
        else:
            if not self.dram.try_access(addr, is_write):
                return False
            self.stats.offchip_words += 1
        # Functional transfer.
        if into_srf:
            active.stage([self._filter_dram(self.memory.read(addr))])
        else:
            value = active.consume_staged(1)[0]
            self.memory.write(addr, value)
        active.mem_cursor += 1
        return True

    def _retire(self, cycle: int) -> None:
        finished = [a for a in self._active if a.done]
        for active in finished:
            self._active.remove(active)
            self.srf.detach_port(active.port)
            self._completed[active.op.op_id] = cycle
            self.stats.ops_completed += 1
            if self._tracer is not None:
                self._tracer.async_end(
                    "memory", active.op.describe(), cycle,
                    event_id=active.op.op_id,
                )

    # ------------------------------------------------------------------
    def inflight_report(self) -> list:
        """Human-readable lines for each active op (deadlock forensics)."""
        lines = []
        for active in self._active:
            direction = "mem->SRF" if active.into_srf else "SRF->mem"
            lines.append(
                f"{active.op.describe()} ({direction}): issued cycle "
                f"{active.issue_cycle}, ready cycle {active.ready_cycle}, "
                f"{active.mem_cursor}/{active.op.words} words moved, "
                f"{active.staged_available()} staged"
            )
        return lines

    @property
    def offchip_traffic_words(self) -> int:
        """Total words moved on the off-chip interface so far."""
        return self.dram.stats.total_words
