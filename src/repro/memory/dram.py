"""Off-chip DRAM timing model.

The paper's machines see 9.14 GB/s of peak DRAM bandwidth (Table 3).
Sequential stream loads and stores approach that peak, while gathers and
scatters with poor locality fall well short — this gap is what makes the
Base configuration memory-bound on Rijndael's table lookups and on the
2D FFT's rotation through memory, and it is modelled here with a classic
open-row (row-buffer) policy:

* the data bus supplies ``words_per_cycle`` words of *cost budget* per
  cycle (a fractional credit accumulator);
* each word access costs 1 budget unit when it hits its bank's open row;
* a row miss additionally charges the activate/precharge time, amortised
  over the bank-level parallelism: ``row_miss_penalty * words_per_cycle /
  banks`` budget units.

Banks are interleaved at row granularity, so a small lookup table spans
few rows and keeps them open (high hit rate), while wide random traffic
thrashes rows. Sequential bursts miss once per row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.machine import MachineConfig
from repro.errors import MemorySystemError


@dataclass
class DramStats:
    """Traffic and locality counters."""

    word_accesses: int = 0
    row_hits: int = 0
    row_misses: int = 0
    read_words: int = 0
    write_words: int = 0

    @property
    def total_words(self) -> int:
        return self.read_words + self.write_words

    @property
    def row_hit_rate(self) -> float:
        if not self.word_accesses:
            return 0.0
        return self.row_hits / self.word_accesses


class DramModel:
    """Credit-based DRAM bandwidth with per-bank open-row state.

    Use :meth:`begin_cycle` once per simulated cycle, then
    :meth:`try_access` for each word the memory controller wants to move;
    it returns False when this cycle's budget is exhausted.
    """

    def __init__(self, config: MachineConfig):
        self.words_per_cycle = config.dram_words_per_cycle
        self.banks = config.dram_banks
        self.row_words = config.dram_row_words
        self.latency = config.dram_latency_cycles
        if self.words_per_cycle <= 0:
            raise MemorySystemError("DRAM bandwidth must be positive")
        #: Extra budget charged on a row miss (activate/precharge time
        #: amortised over bank-level parallelism).
        self.row_miss_cost = (
            config.dram_row_miss_penalty * self.words_per_cycle / self.banks
        )
        self._open_rows = [None] * self.banks
        self._credit = 0.0
        #: Budget never accumulates beyond one cycle's worth times this,
        #: so idle periods cannot bank unbounded bandwidth.
        self._max_credit = 4.0 * self.words_per_cycle
        self.stats = DramStats()
        # Observability (repro.observe): per-bank row-miss counters
        # installed only at metrics level 2; None keeps charge() clean.
        self._bank_misses = None

    def install_observer(self, observer) -> None:
        """Expose DRAM locality metrics through an observer's registry."""
        if observer is None or observer.metrics is None:
            return
        metrics = observer.metrics
        metrics.add_provider(self._metrics_provider)
        if metrics.level >= 2:
            self._bank_misses = [
                metrics.counter(f"dram.bank{bank}.row_misses")
                for bank in range(self.banks)
            ]

    def _metrics_provider(self) -> dict:
        s = self.stats
        return {
            "dram.word_accesses": s.word_accesses,
            "dram.row_hits": s.row_hits,
            "dram.row_misses": s.row_misses,
            "dram.row_hit_rate": s.row_hit_rate,
            "dram.read_words": s.read_words,
            "dram.write_words": s.write_words,
        }

    def begin_cycle(self) -> None:
        """Accrue one cycle of bus budget."""
        self._credit = min(self._credit + self.words_per_cycle, self._max_credit)

    def accrue_idle_cycles(self, cycles: int) -> None:
        """Apply ``cycles`` consecutive :meth:`begin_cycle` calls in bulk.

        Replays the per-cycle ``min`` update (same float operations, so
        the resulting credit is bit-identical to stepping), stopping
        early once the credit saturates at the cap — after which further
        cycles are no-ops.
        """
        credit = self._credit
        cap = self._max_credit
        step = self.words_per_cycle
        for _ in range(cycles):
            if credit == cap:
                break
            credit = min(credit + step, cap)
        self._credit = credit

    def cycles_until_can_access(self) -> int:
        """Whole cycles to skip before an access could be admitted.

        0 means the very next :meth:`begin_cycle` already lifts the
        credit above zero (an access can go ahead this cycle). The
        prediction replays the exact per-cycle accrual, so skipping that
        many idle cycles and then ticking normally admits the access on
        precisely the same cycle as per-cycle stepping would.
        """
        credit = self._credit
        cap = self._max_credit
        step = self.words_per_cycle
        accruals = 0
        while True:
            credit = min(credit + step, cap)
            accruals += 1
            if credit > 0.0:
                return accruals - 1

    def can_access(self) -> bool:
        """Whether the bus has budget for another access this cycle.

        Budget may be driven (slightly) negative by a single multi-word
        charge such as a cache-line fill; the debt is repaid from future
        cycles, which keeps sustained throughput exact while keeping the
        per-access code simple.
        """
        return self._credit > 0.0

    def try_access(self, addr: int, is_write: bool) -> bool:
        """Attempt to move one word; returns False if budget is exhausted.

        A successful call updates row-buffer state, budget, and stats.
        """
        if self._credit <= 0.0:
            return False
        self.charge(addr, is_write)
        return True

    def charge(self, addr: int, is_write: bool) -> None:
        """Unconditionally account one word access (overdraft allowed).

        Used for indivisible multi-word transfers (cache-line fills and
        writebacks) once they have been admitted: the bus debt simply
        delays subsequent accesses, which keeps sustained bandwidth exact.
        """
        if addr < 0:
            raise MemorySystemError(f"negative DRAM address {addr}")
        row = addr // self.row_words
        bank = row % self.banks
        cost = 1.0
        if self._open_rows[bank] == row:
            self.stats.row_hits += 1
        else:
            self.stats.row_misses += 1
            self._open_rows[bank] = row
            cost += self.row_miss_cost
            if self._bank_misses is not None:
                self._bank_misses[bank].add()
        self._credit -= cost
        self.stats.word_accesses += 1
        if is_write:
            self.stats.write_words += 1
        else:
            self.stats.read_words += 1

    def reset_rows(self) -> None:
        """Close all open rows (e.g. between benchmark phases)."""
        self._open_rows = [None] * self.banks
