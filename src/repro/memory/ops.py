"""Stream-level memory operations (paper Section 2).

A single stream instruction loads or stores an entire stream, "and
therefore a handful of instructions are sufficient to launch enough
accesses to cover very long memory latencies". Four kinds exist:

* **LOAD** — contiguous memory region -> sequential SRF stream;
* **STORE** — sequential SRF stream -> contiguous memory region;
* **GATHER** — arbitrary memory addresses -> sequential SRF stream
  (indexed load); this is how a machine *without* SRF indexing reorders
  data through memory;
* **SCATTER** — sequential SRF stream -> arbitrary memory addresses
  (indexed store).

An op carries the exact word-address trace it will present to DRAM (or
the cache, when marked cacheable), so the timing model sees the access
pattern the benchmark really generates — row-buffer locality and cache
behaviour are consequences, not parameters.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.core.descriptors import StreamDescriptor
from repro.errors import MemorySystemError
from repro.memory.mainmem import MemoryRegion


class MemoryOpKind(enum.Enum):
    LOAD = "load"
    STORE = "store"
    GATHER = "gather"
    SCATTER = "scatter"

    @property
    def into_srf(self) -> bool:
        """True when data flows memory -> SRF."""
        return self in (MemoryOpKind.LOAD, MemoryOpKind.GATHER)


_op_ids = itertools.count()


@dataclass
class StreamMemoryOp:
    """One stream transfer between main memory and the SRF.

    ``mem_addrs`` gives the memory word address of each stream word, in
    stream order; stream word ``j`` corresponds to SRF global address
    ``srf.base + j``. ``cacheable`` marks streams with reuse potential —
    the Cache configuration routes only those through the cache (§5).
    """

    kind: MemoryOpKind
    srf: StreamDescriptor
    mem_addrs: list
    cacheable: bool = False
    name: str = ""
    op_id: int = field(default_factory=lambda: next(_op_ids))

    def __post_init__(self) -> None:
        if len(self.mem_addrs) > self.srf.length_words:
            raise MemorySystemError(
                f"{self.describe()}: {len(self.mem_addrs)} memory words do "
                f"not fit the {self.srf.length_words}-word SRF stream"
            )
        if not self.mem_addrs:
            raise MemorySystemError(f"{self.describe()}: empty transfer")
        if not self.name:
            self.name = f"{self.kind.value}:{self.srf.name}"

    def describe(self) -> str:
        return self.name or f"{self.kind.value}:{self.srf.name}"

    @property
    def words(self) -> int:
        return len(self.mem_addrs)

    @property
    def into_srf(self) -> bool:
        return self.kind.into_srf


def load_op(
    srf_stream: StreamDescriptor,
    region: MemoryRegion,
    offset: int = 0,
    words: "int | None" = None,
    cacheable: bool = False,
    name: str = "",
) -> StreamMemoryOp:
    """Contiguous load: ``region[offset:offset+words]`` -> SRF stream."""
    words = srf_stream.length_words if words is None else words
    _check_window(region, offset, words)
    return StreamMemoryOp(
        MemoryOpKind.LOAD, srf_stream,
        list(range(region.base + offset, region.base + offset + words)),
        cacheable=cacheable, name=name,
    )


def store_op(
    srf_stream: StreamDescriptor,
    region: MemoryRegion,
    offset: int = 0,
    words: "int | None" = None,
    cacheable: bool = False,
    name: str = "",
) -> StreamMemoryOp:
    """Contiguous store: SRF stream -> ``region[offset:offset+words]``."""
    words = srf_stream.length_words if words is None else words
    _check_window(region, offset, words)
    return StreamMemoryOp(
        MemoryOpKind.STORE, srf_stream,
        list(range(region.base + offset, region.base + offset + words)),
        cacheable=cacheable, name=name,
    )


def gather_op(
    srf_stream: StreamDescriptor,
    region: MemoryRegion,
    offsets,
    cacheable: bool = False,
    name: str = "",
) -> StreamMemoryOp:
    """Indexed load: ``region[offsets[j]]`` becomes stream word ``j``."""
    addrs = [region.addr(int(off)) for off in offsets]
    return StreamMemoryOp(
        MemoryOpKind.GATHER, srf_stream, addrs, cacheable=cacheable, name=name
    )


def scatter_op(
    srf_stream: StreamDescriptor,
    region: MemoryRegion,
    offsets,
    cacheable: bool = False,
    name: str = "",
) -> StreamMemoryOp:
    """Indexed store: stream word ``j`` lands at ``region[offsets[j]]``."""
    addrs = [region.addr(int(off)) for off in offsets]
    return StreamMemoryOp(
        MemoryOpKind.SCATTER, srf_stream, addrs, cacheable=cacheable, name=name
    )


def _check_window(region: MemoryRegion, offset: int, words: int) -> None:
    if words <= 0:
        raise MemorySystemError(f"{region.name}: empty transfer window")
    if offset < 0 or offset + words > region.words:
        raise MemorySystemError(
            f"{region.name}: window [{offset},{offset + words}) outside "
            f"region of {region.words} words"
        )
