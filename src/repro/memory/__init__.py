"""Off-chip memory system: DRAM model, main memory, stream memory ops."""

from repro.memory.controller import MemoryController, MemoryPort, MemoryStats
from repro.memory.dram import DramModel, DramStats
from repro.memory.mainmem import MainMemory, MemoryRegion
from repro.memory.ops import (
    MemoryOpKind,
    StreamMemoryOp,
    gather_op,
    load_op,
    scatter_op,
    store_op,
)

__all__ = [
    "DramModel",
    "DramStats",
    "MainMemory",
    "MemoryController",
    "MemoryOpKind",
    "MemoryPort",
    "MemoryRegion",
    "MemoryStats",
    "StreamMemoryOp",
    "gather_op",
    "load_op",
    "scatter_op",
    "store_op",
]
