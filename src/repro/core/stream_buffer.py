"""Stream buffers: the rate-matching FIFOs between SRF and clusters.

The SRF port moves ``N x m`` words per access while compute clusters
consume/produce one word per lane per stream access, so every stream is
fronted by a buffer (paper Section 4.3, Figure 8).

Two buffer flavours are provided:

* :class:`LaneFifo` — the classic sequential stream buffer: one FIFO per
  lane, filled/drained ``m`` words per lane by SRF block accesses and
  popped/pushed one word per lane by the (SIMD lock-stepped) clusters.
* :class:`ReorderBuffer` — the data-side buffer of an *indexed* stream
  (Section 4.4). Slots are reserved in program order when addresses
  issue, filled out of order as bank/sub-array arbitration completes
  accesses, and popped strictly in order so the cluster sees the same
  interface as a sequential stream.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SrfError


class LaneFifo:
    """Per-lane word FIFOs with a shared capacity, for sequential streams.

    All lanes fill and drain at the same rate because clusters execute in
    SIMD lockstep, so occupancy is tracked once and asserted uniform.

    ``occupancy_probe``, when given, is called with the per-lane
    occupancy after every push; the observability layer points it at a
    histogram so buffer-depth distributions cost one call only when
    metrics are enabled.
    """

    def __init__(self, lanes: int, capacity_words: int, occupancy_probe=None):
        if lanes <= 0 or capacity_words <= 0:
            raise SrfError("LaneFifo needs positive lanes and capacity")
        self.lanes = lanes
        self.capacity = capacity_words
        self._fifos = [deque() for _ in range(lanes)]
        self._occupancy_probe = occupancy_probe

    @property
    def occupancy(self) -> int:
        """Words currently buffered per lane."""
        return len(self._fifos[0])

    @property
    def space(self) -> int:
        """Free word slots per lane."""
        return self.capacity - self.occupancy

    def can_push(self, words: int = 1) -> bool:
        return self.space >= words

    def can_pop(self, words: int = 1) -> bool:
        return self.occupancy >= words

    def push_block(self, per_lane_words) -> None:
        """Push ``m`` words into every lane (an SRF-side fill).

        ``per_lane_words`` is a sequence of ``lanes`` sequences, each the
        same length.
        """
        if len(per_lane_words) != self.lanes:
            raise SrfError("push_block needs one word list per lane")
        width = len(per_lane_words[0])
        if any(len(ws) != width for ws in per_lane_words):
            raise SrfError("push_block requires uniform lane widths")
        if not self.can_push(width):
            raise SrfError("stream buffer overflow")
        for fifo, words in zip(self._fifos, per_lane_words):
            fifo.extend(words)
        if self._occupancy_probe is not None:
            self._occupancy_probe(self.occupancy)

    def pop_block(self, words: int) -> list:
        """Pop ``words`` words from every lane (an SRF-side drain)."""
        if not self.can_pop(words):
            raise SrfError("stream buffer underflow")
        return [
            [fifo.popleft() for _ in range(words)] for fifo in self._fifos
        ]

    def push_simd(self, lane_values) -> None:
        """Push one word per lane (a cluster-side write)."""
        if len(lane_values) != self.lanes:
            raise SrfError("push_simd needs one value per lane")
        if not self.can_push(1):
            raise SrfError("stream buffer overflow")
        for fifo, value in zip(self._fifos, lane_values):
            fifo.append(value)
        if self._occupancy_probe is not None:
            self._occupancy_probe(self.occupancy)

    def pop_simd(self) -> list:
        """Pop one word per lane (a cluster-side read)."""
        if not self.can_pop(1):
            raise SrfError("stream buffer underflow")
        return [fifo.popleft() for fifo in self._fifos]

    def clear(self) -> None:
        for fifo in self._fifos:
            fifo.clear()


class _Slot:
    """One reorder-buffer slot: reserved at issue, filled at completion."""

    __slots__ = ("value", "valid")

    def __init__(self):
        self.value = None
        self.valid = False


class ReorderBuffer:
    """In-order delivery buffer for one indexed stream in one lane.

    ``reserve`` claims the next slot at address-issue time and returns a
    ticket; ``fill`` deposits data into that ticket's slot whenever the
    SRF access completes; ``pop`` succeeds only when the *oldest*
    reserved slot has been filled. This reproduces the stall behaviour of
    Figure 9: a cluster trying to read data whose access was delayed by a
    sub-array conflict stalls even if younger accesses completed.

    Invariant relied on by the columnar timing engine
    (:mod:`repro.machine.columnar`): tickets are dense and ascending, so
    the slot at position ``k`` (oldest first) always holds ticket
    ``_head_ticket + k``.
    """

    def __init__(self, capacity_words: int):
        if capacity_words <= 0:
            raise SrfError("ReorderBuffer needs positive capacity")
        self.capacity = capacity_words
        self._slots = deque()  # of _Slot, oldest first
        self._next_ticket = 0
        self._head_ticket = 0
        self._live = {}  # ticket -> _Slot

    @property
    def occupancy(self) -> int:
        """Slots currently reserved (filled or not)."""
        return len(self._slots)

    @property
    def space(self) -> int:
        return self.capacity - self.occupancy

    def can_reserve(self, words: int = 1) -> bool:
        return self.space >= words

    def reserve(self) -> int:
        """Reserve the next in-order slot; returns a fill ticket."""
        if not self.can_reserve():
            raise SrfError("reorder buffer full")
        slot = _Slot()
        self._slots.append(slot)
        ticket = self._next_ticket
        self._live[ticket] = slot
        self._next_ticket += 1
        return ticket

    def fill(self, ticket: int, value) -> None:
        """Deposit data for a previously reserved ticket."""
        slot = self._live.pop(ticket, None)
        if slot is None:
            raise SrfError(f"unknown or already-filled ticket {ticket}")
        slot.value = value
        slot.valid = True

    def head_ready(self) -> bool:
        """True when the oldest reserved slot has been filled."""
        return bool(self._slots) and self._slots[0].valid

    def head_ready_n(self, count: int) -> bool:
        """True when the ``count`` oldest reserved slots are all filled.

        Used for multi-word records: the cluster reads a record only once
        every one of its words has returned.
        """
        if count > len(self._slots):
            return False
        return all(self._slots[k].valid for k in range(count))

    def pop(self):
        """Pop the oldest slot's value; raises if it is not filled yet."""
        if not self.head_ready():
            raise SrfError("reorder buffer head not ready")
        self._head_ticket += 1
        return self._slots.popleft().value

    def clear(self) -> None:
        self._slots.clear()
        self._live.clear()
