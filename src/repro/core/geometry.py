"""Physical geometry of the stream register file SRAM.

The SRF of an N-lane stream processor (paper Figure 6) is built from N
banks, one per lane. Each bank holds ``bank_words`` words and is composed
of ``s`` sub-arrays. A sequential SRF access moves one *block* of
``N x m`` logically contiguous words — ``m`` consecutive words in every
lane — out of a single sub-array per bank. Indexed accesses (Figure 7)
read or write single words, and two indexed accesses conflict when they
target the same sub-array of the same bank in the same cycle.

Two address spaces are used throughout the library:

* **global word addresses** ``0 .. srf_words-1``: the linear space seen by
  the stream allocator and by sequential block transfers;
* **bank-local word addresses** ``0 .. bank_words-1``: the space seen by a
  single lane's indexed accesses.

The mapping stripes each ``N x m``-word block across all lanes, ``m``
words per lane, so a sequential block access touches every bank once:

``global = super_block * (N*m) + lane * m + offset``

where ``bank_local = super_block * m + offset``.  Within a bank,
consecutive ``m``-word groups are interleaved across sub-arrays
(``sub_array = (bank_local // m) % s``) so that a sequential block stays
inside one sub-array while fine-grained indexed accesses spread across
sub-arrays — the property the ISRF4 design of Section 4.2 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SrfAccessError


@dataclass(frozen=True)
class SrfGeometry:
    """Address arithmetic for an SRF with ``lanes`` banks of ``s`` sub-arrays.

    Parameters mirror the paper's notation: ``lanes`` is N,
    ``words_per_lane_access`` is m, and ``subarrays_per_bank`` is s.
    """

    lanes: int
    bank_words: int
    words_per_lane_access: int
    subarrays_per_bank: int

    def __post_init__(self) -> None:
        # Derived quantities, cached because address arithmetic sits on
        # the per-word hot path of the simulator.
        #: Total SRF capacity in words across all banks.
        object.__setattr__(self, "total_words", self.lanes * self.bank_words)
        #: Words moved by one sequential SRF access (N x m).
        object.__setattr__(
            self, "block_words", self.lanes * self.words_per_lane_access
        )
        #: Capacity of one sub-array in words.
        object.__setattr__(
            self, "subarray_words",
            self.bank_words // self.subarrays_per_bank,
        )

    # ------------------------------------------------------------------
    # Global <-> bank-local mapping
    # ------------------------------------------------------------------
    def split(self, global_addr: int) -> tuple:
        """Map a global word address to ``(lane, bank_local_addr)``."""
        self._check_global(global_addr)
        m = self.words_per_lane_access
        super_block, rem = divmod(global_addr, self.block_words)
        lane, offset = divmod(rem, m)
        return lane, super_block * m + offset

    def join(self, lane: int, bank_local: int) -> int:
        """Map ``(lane, bank_local_addr)`` back to a global word address."""
        if not 0 <= lane < self.lanes:
            raise SrfAccessError(f"lane {lane} out of range [0,{self.lanes})")
        self._check_local(bank_local)
        m = self.words_per_lane_access
        super_block, offset = divmod(bank_local, m)
        return super_block * self.block_words + lane * m + offset

    def lane_of(self, global_addr: int) -> int:
        """Lane (bank) holding a global word address."""
        return self.split(global_addr)[0]

    def subarray_of(self, bank_local: int) -> int:
        """Sub-array within a bank holding a bank-local word address."""
        self._check_local(bank_local)
        m = self.words_per_lane_access
        return (bank_local // m) % self.subarrays_per_bank

    def row_of(self, bank_local: int) -> int:
        """Row within the sub-array (used by the area/energy model)."""
        self._check_local(bank_local)
        m = self.words_per_lane_access
        s = self.subarrays_per_bank
        return bank_local // (m * s)

    # ------------------------------------------------------------------
    # Block helpers for sequential access
    # ------------------------------------------------------------------
    def block_of(self, global_addr: int) -> int:
        """Index of the N x m block containing a global address."""
        self._check_global(global_addr)
        return global_addr // self.block_words

    def block_base(self, block: int) -> int:
        """First global word address of block ``block``."""
        base = block * self.block_words
        self._check_global(base)
        return base

    def blocks_spanned(self, base: int, length: int) -> int:
        """Number of N x m blocks touched by ``length`` words at ``base``."""
        if length <= 0:
            return 0
        first = self.block_of(base)
        last = self.block_of(base + length - 1)
        return last - first + 1

    # ------------------------------------------------------------------
    def _check_global(self, addr: int) -> None:
        if not 0 <= addr < self.total_words:
            raise SrfAccessError(
                f"global SRF address {addr} out of range [0,{self.total_words})"
            )

    def _check_local(self, addr: int) -> None:
        if not 0 <= addr < self.bank_words:
            raise SrfAccessError(
                f"bank-local SRF address {addr} out of range "
                f"[0,{self.bank_words})"
            )
