"""Stream descriptors and the indexed stream types of paper Table 1.

A :class:`StreamDescriptor` names a region of SRF space holding a stream
of fixed-size records, together with the access discipline a kernel uses
for it. The three indexed disciplines mirror Table 1 of the paper:

==================  ====================  ==========================
Access type         Paper stream type     Descriptor ``kind``
==================  ====================  ==========================
Sequential read     ``istream<T>``        ``SEQUENTIAL_READ``
Sequential write    ``ostream<T>``        ``SEQUENTIAL_WRITE``
In-lane idx read    ``idxl_istream<T>``   ``INLANE_INDEXED_READ``
In-lane idx write   ``idxl_ostream<T>``   ``INLANE_INDEXED_WRITE``
Cross-lane idx read ``idx_istream<T>``    ``CROSSLANE_INDEXED_READ``
==================  ====================  ==========================

Cross-lane indexed *writes* are not supported, exactly as in the paper
(Section 4.7: "Currently we do not support cross-lane indexed write
streams").
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import SrfError


class StreamKind(enum.Enum):
    """Access discipline of a kernel stream (paper Table 1).

    ``INLANE_INDEXED_READWRITE`` implements the extension sketched in
    the paper's future work (§7): "read-write data structures allow
    even more flexibility for application-specific tasks as well as
    system-level uses such as spilling local registers to the SRF."
    Reads and writes of a read-write stream share one address FIFO, so
    their relative order — and hence read-after-write consistency
    within a kernel — is preserved by the FIFO itself.
    """

    SEQUENTIAL_READ = "istream"
    SEQUENTIAL_WRITE = "ostream"
    INLANE_INDEXED_READ = "idxl_istream"
    INLANE_INDEXED_WRITE = "idxl_ostream"
    INLANE_INDEXED_READWRITE = "idxl_iostream"
    CROSSLANE_INDEXED_READ = "idx_istream"

    @property
    def is_sequential(self) -> bool:
        return self in (StreamKind.SEQUENTIAL_READ, StreamKind.SEQUENTIAL_WRITE)

    @property
    def is_indexed(self) -> bool:
        return not self.is_sequential

    @property
    def is_read(self) -> bool:
        return self in (
            StreamKind.SEQUENTIAL_READ,
            StreamKind.INLANE_INDEXED_READ,
            StreamKind.INLANE_INDEXED_READWRITE,
            StreamKind.CROSSLANE_INDEXED_READ,
        )

    @property
    def is_write(self) -> bool:
        return self in (
            StreamKind.SEQUENTIAL_WRITE,
            StreamKind.INLANE_INDEXED_WRITE,
            StreamKind.INLANE_INDEXED_READWRITE,
        )

    @property
    def is_crosslane(self) -> bool:
        return self is StreamKind.CROSSLANE_INDEXED_READ


class IndexSpace(enum.Enum):
    """What an indexed stream's record index refers to.

    ``PER_LANE`` indices address records within the lane's own bank (used
    for replicated lookup tables and per-lane partitions); ``GLOBAL``
    indices address records of a stream striped across all banks (used by
    cross-lane access).
    """

    PER_LANE = "per-lane"
    GLOBAL = "global"


_stream_ids = itertools.count()


@dataclass(frozen=True)
class StreamDescriptor:
    """A named region of SRF space accessed as a stream of records.

    ``base`` is a global SRF word address (block aligned by the
    allocator); ``length_records`` and ``record_words`` size the stream;
    ``kind`` fixes the access discipline for the duration of one kernel.
    The same underlying allocation may be wrapped by several descriptors
    across kernels (e.g. written sequentially by one kernel, then read
    with in-lane indexing by the next) — that is exactly the reordered
    reuse the paper's SRF indexing captures.
    """

    name: str
    kind: StreamKind
    base: int
    length_records: int
    record_words: int = 1
    index_space: IndexSpace = IndexSpace.PER_LANE
    stream_id: int = field(default_factory=lambda: next(_stream_ids))

    def __post_init__(self) -> None:
        if self.length_records < 0:
            raise SrfError(f"stream {self.name}: negative length")
        if self.record_words <= 0:
            raise SrfError(f"stream {self.name}: record_words must be >= 1")
        if self.base < 0:
            raise SrfError(f"stream {self.name}: negative base address")
        if self.kind is StreamKind.CROSSLANE_INDEXED_READ:
            if self.index_space is not IndexSpace.GLOBAL:
                raise SrfError(
                    f"stream {self.name}: cross-lane streams use GLOBAL "
                    "record indices"
                )
        if self.kind in (
            StreamKind.INLANE_INDEXED_READ,
            StreamKind.INLANE_INDEXED_WRITE,
            StreamKind.INLANE_INDEXED_READWRITE,
        ) and self.index_space is not IndexSpace.PER_LANE:
            raise SrfError(
                f"stream {self.name}: in-lane streams use PER_LANE indices"
            )

    @property
    def length_words(self) -> int:
        """Total stream footprint in words."""
        return self.length_records * self.record_words

    def with_kind(
        self, kind: StreamKind, index_space: "IndexSpace | None" = None
    ) -> "StreamDescriptor":
        """A new descriptor over the same data with a different discipline."""
        if index_space is None:
            if kind is StreamKind.CROSSLANE_INDEXED_READ:
                index_space = IndexSpace.GLOBAL
            else:
                index_space = IndexSpace.PER_LANE
        return StreamDescriptor(
            name=self.name,
            kind=kind,
            base=self.base,
            length_records=self.length_records,
            record_words=self.record_words,
            index_space=index_space,
        )
