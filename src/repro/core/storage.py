"""SRF backing storage and stream allocation.

:class:`SrfStorage` holds the actual word values of the SRF (the
functional state the timing model moves around), addressed either
globally or per ``(lane, bank_local)`` via :class:`SrfGeometry`.

:class:`SrfAllocator` hands out block-aligned regions of the global SRF
address space, the way the Imagine stream scheduler assigns SRF space to
streams. Benchmarks allocate their working set once and reuse it across
outer-loop iterations (strip-mined execution, paper Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.geometry import SrfGeometry
from repro.errors import SrfAccessError, SrfAllocationError


@dataclass(frozen=True)
class SrfAllocation:
    """A contiguous, block-aligned region of global SRF address space."""

    name: str
    base: int
    words: int

    @property
    def end(self) -> int:
        """One past the last word of the region."""
        return self.base + self.words


class SrfAllocator:
    """First-fit allocator over the global SRF word space.

    Allocations are rounded up to whole ``N x m`` blocks because a
    sequential SRF access always moves a full block; this mirrors how
    stream base addresses are block-aligned in hardware.
    """

    def __init__(self, geometry: SrfGeometry):
        self._geometry = geometry
        self._regions: list = []  # sorted list of SrfAllocation

    @property
    def allocated_words(self) -> int:
        """Total words currently allocated (including alignment padding)."""
        return sum(region.words for region in self._regions)

    @property
    def free_words(self) -> int:
        """Words not currently allocated."""
        return self._geometry.total_words - self.allocated_words

    def allocate(self, words: int, name: str = "stream") -> SrfAllocation:
        """Allocate ``words`` of SRF space, rounded up to whole blocks."""
        if words <= 0:
            raise SrfAllocationError(f"{name}: allocation must be positive")
        block = self._geometry.block_words
        size = ((words + block - 1) // block) * block
        cursor = 0
        for position, region in enumerate(self._regions):
            if region.base - cursor >= size:
                allocation = SrfAllocation(name, cursor, size)
                self._regions.insert(position, allocation)
                return allocation
            cursor = region.end
        if self._geometry.total_words - cursor >= size:
            allocation = SrfAllocation(name, cursor, size)
            self._regions.append(allocation)
            return allocation
        raise SrfAllocationError(
            f"{name}: cannot allocate {size} words "
            f"({self.free_words} free of {self._geometry.total_words})"
        )

    def free(self, allocation: SrfAllocation) -> None:
        """Return a region to the free pool."""
        try:
            self._regions.remove(allocation)
        except ValueError:
            raise SrfAllocationError(
                f"{allocation.name}: not an active allocation"
            ) from None

    def reset(self) -> None:
        """Free every allocation."""
        self._regions.clear()


class SrfStorage:
    """Word-granular functional contents of the SRF.

    Words hold arbitrary Python values (floats, ints, or small tuples for
    packed records); the timing model never interprets them, only the
    kernel interpreter does.
    """

    def __init__(self, geometry: SrfGeometry):
        self._geometry = geometry
        self._words = [0] * geometry.total_words
        # Mapping factors inlined into the lane accessors, which sit on
        # the per-word hot path of indexed access.
        self._lanes = geometry.lanes
        self._bank_words = geometry.bank_words
        self._lane_stride = geometry.words_per_lane_access
        self._block_words = geometry.block_words

    @property
    def geometry(self) -> SrfGeometry:
        return self._geometry

    # -- global addressing ---------------------------------------------
    def read(self, global_addr: int):
        """Read the word at a global SRF address."""
        self._check(global_addr)
        return self._words[global_addr]

    def write(self, global_addr: int, value) -> None:
        """Write the word at a global SRF address."""
        self._check(global_addr)
        self._words[global_addr] = value

    def read_range(self, base: int, count: int) -> list:
        """Read ``count`` consecutive global words starting at ``base``."""
        if count < 0:
            raise SrfAccessError("negative read_range count")
        self._check(base)
        if count:
            self._check(base + count - 1)
        return self._words[base : base + count]

    def write_range(self, base: int, values) -> None:
        """Write consecutive global words starting at ``base``."""
        values = list(values)
        if values:
            self._check(base)
            self._check(base + len(values) - 1)
            self._words[base : base + len(values)] = values

    # -- bank-local addressing -------------------------------------------
    def read_lane(self, lane: int, bank_local: int):
        """Read one word of a lane's bank by bank-local address."""
        if not (0 <= lane < self._lanes and 0 <= bank_local < self._bank_words):
            self._geometry.join(lane, bank_local)  # raises the precise error
        m = self._lane_stride
        super_block, offset = divmod(bank_local, m)
        return self._words[super_block * self._block_words + lane * m + offset]

    def write_lane(self, lane: int, bank_local: int, value) -> None:
        """Write one word of a lane's bank by bank-local address."""
        if not (0 <= lane < self._lanes and 0 <= bank_local < self._bank_words):
            self._geometry.join(lane, bank_local)  # raises the precise error
        m = self._lane_stride
        super_block, offset = divmod(bank_local, m)
        self._words[super_block * self._block_words + lane * m + offset] = value

    def _check(self, addr: int) -> None:
        if not 0 <= addr < len(self._words):
            raise SrfAccessError(
                f"SRF address {addr} out of range [0,{len(self._words)})"
            )
