"""Per-lane address FIFOs for indexed SRF streams (paper Section 4.4).

Clusters compute *record* addresses with their ALUs and push them into a
dedicated FIFO per indexed stream per lane. A counter at the head of the
FIFO breaks each record access into a sequence of single-word accesses,
"significantly reducing the address generation overhead imposed on the
compute clusters". The SRF's local arbitration only ever consumes the
head word access of each FIFO, which is what produces the head-of-line
blocking studied in Figure 17.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple

from repro.errors import SrfError


class RecordAccess:
    """One record-granular entry of an address FIFO.

    ``words`` lists the record's single-word targets in order as
    ``(target_lane, bank_local_addr)`` pairs — for in-lane streams every
    target lane equals the issuing lane, while a cross-lane record
    striped across banks may straddle lanes. ``tickets`` lists the
    reorder-buffer tickets the words fill (reads); ``values`` lists the
    words to store (writes). Exactly one of the two is set.
    """

    __slots__ = ("words", "tickets", "values")

    def __init__(self, words, tickets=None, values=None):
        if (tickets is None) == (values is None):
            raise SrfError("a record access is either a read or a write")
        payload = tickets if tickets is not None else values
        if len(payload) != len(words):
            raise SrfError("one ticket/value per word required")
        self.words = words  # of (target_lane, bank_local_addr)
        self.tickets = tickets  # reads
        self.values = values  # writes

    @property
    def is_read(self) -> bool:
        return self.tickets is not None


class WordAccess(NamedTuple):
    """A single-word access peeled off the head of an address FIFO."""

    bank_local_addr: int
    target_lane: int
    source_lane: int
    stream_id: int
    ticket: "int | None"  # reads: reorder ticket; writes: None
    value: object  # writes: the word to store; reads: None

    @property
    def is_read(self) -> bool:
        return self.ticket is not None


#: Sentinel marking the head-word cache as needing recomputation (None is
#: a valid cached value — it means "FIFO empty").
_STALE = object()


class AddressFifo:
    """FIFO of pending record accesses for one indexed stream in one lane.

    Capacity is counted in *record entries*, matching Table 3's
    "Address FIFO size (per lane per stream)" parameter; the head counter
    that expands records into words is free.
    """

    def __init__(self, capacity_entries: int, stream_id: int, lane: int):
        if capacity_entries <= 0:
            raise SrfError("AddressFifo needs positive capacity")
        self.capacity = capacity_entries
        self.stream_id = stream_id
        self.lane = lane
        self._entries = deque()
        self._head_word = 0  # expansion counter at the FIFO head
        # Arbitration re-peeks blocked heads every cycle, so the head
        # word access is cached until push/advance/clear move the head.
        self._head_cache = _STALE

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def push(self, access: RecordAccess) -> None:
        """Enqueue a record access (cluster-side)."""
        if self.is_full:
            raise SrfError("address FIFO overflow")
        if not access.words:
            raise SrfError("empty record access")
        if not self._entries:
            self._head_cache = _STALE  # pushing onto an empty FIFO moves the head
        self._entries.append(access)

    def peek_word(self) -> "WordAccess | None":
        """The head single-word access, or None when the FIFO is empty."""
        cached = self._head_cache
        if cached is not _STALE:
            return cached
        if not self._entries:
            word = None
        else:
            head = self._entries[0]
            index = self._head_word
            target_lane, addr = head.words[index]
            word = WordAccess(
                bank_local_addr=addr,
                target_lane=target_lane,
                source_lane=self.lane,
                stream_id=self.stream_id,
                ticket=head.tickets[index] if head.tickets is not None else None,
                value=head.values[index] if head.values is not None else None,
            )
        self._head_cache = word
        return word

    def advance(self) -> None:
        """Consume the head word access (it was granted this cycle)."""
        if not self._entries:
            raise SrfError("advance on empty address FIFO")
        head = self._entries[0]
        self._head_word += 1
        if self._head_word >= len(head.words):
            self._entries.popleft()
            self._head_word = 0
        self._head_cache = _STALE

    def clear(self) -> None:
        self._entries.clear()
        self._head_word = 0
        self._head_cache = _STALE
