"""The stream register file with indexed access — the paper's contribution.

:class:`StreamRegisterFile` assembles the pieces of Sections 4.1–4.5 into
one cycle-steppable device:

* a single time-multiplexed port that each cycle serves *either* one
  sequential ``N x m``-word block access *or* all indexed streams
  (two-stage arbitration, §4.4);
* per-lane sequential stream buffers (:class:`SequentialPort`);
* per-lane, per-stream address FIFOs and reorder buffers for indexed
  streams (:class:`IndexedStream`);
* per-bank local arbitration with sub-array conflict detection and
  head-of-line blocking (§4.2, Figure 17);
* cross-lane access through dedicated address and data-return crossbars
  (§4.5, Figure 18).

Clients (the kernel executor and the memory controller) interact through
small, explicit protocols: sequential ports expose ``wants_grant`` /
``on_grant``; indexed streams expose ``can_issue`` / ``issue_read`` /
``issue_write`` / ``data_ready`` / ``pop_data``. Everything functional
(actual word values) lives in :class:`~repro.core.storage.SrfStorage`,
so the timing model and the data model can never diverge.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass

from repro.config.machine import MachineConfig
from repro.core.address_fifo import AddressFifo, RecordAccess, WordAccess
from repro.core.arbiter import RoundRobinArbiter
from repro.core.descriptors import IndexSpace, StreamDescriptor
from repro.core.geometry import SrfGeometry
from repro.core.storage import SrfAllocator, SrfStorage
from repro.core.stream_buffer import LaneFifo, ReorderBuffer
from repro.errors import SrfError
from repro.interconnect.crossbar import (
    AddressNetwork,
    ReturnNetwork,
    RingAddressNetwork,
)


class PortDirection(enum.Enum):
    """Direction of a sequential port relative to its client."""

    #: SRF -> client (the client pops words the port fetched).
    READ = "read"
    #: client -> SRF (the client pushes words the port drains).
    WRITE = "write"


@dataclass
class SrfStats:
    """Per-run SRF traffic and arbitration counters."""

    cycles: int = 0
    sequential_grants: int = 0
    sequential_words: int = 0
    inlane_grants: int = 0
    crosslane_grants: int = 0
    indexed_write_grants: int = 0
    indexed_cycles: int = 0
    #: Indexed-group cycles in which zero accesses were granted.
    empty_indexed_cycles: int = 0
    #: Head word accesses present but not granted in an indexed cycle
    #: (sub-array conflicts, port limits, network backpressure).
    blocked_heads: int = 0

    @property
    def indexed_words(self) -> int:
        return self.inlane_grants + self.crosslane_grants + self.indexed_write_grants


class SequentialPort:
    """One sequential stream's connection to the SRF port.

    The port fetches (reads) or drains (writes) whole ``N x m`` blocks
    between :class:`~repro.core.storage.SrfStorage` and a per-lane stream
    buffer; the client moves one word per lane per access on the other
    side. Streams whose length is not a whole number of blocks are padded
    with zeros on the final block, as the block-aligned allocator
    guarantees the space exists.
    """

    _ids = itertools.count()

    def __init__(self, srf: "StreamRegisterFile", descriptor: StreamDescriptor,
                 direction: PortDirection, buffer_words: "int | None" = None):
        self.port_id = next(SequentialPort._ids)
        self.srf = srf
        self.descriptor = descriptor
        self.direction = direction
        geometry = srf.geometry
        self.block_words = geometry.block_words
        self.words_per_lane = geometry.words_per_lane_access
        self.total_blocks = geometry.blocks_spanned(
            descriptor.base, descriptor.length_words
        )
        self.fifo = LaneFifo(
            geometry.lanes, buffer_words or srf.config.stream_buffer_words,
            occupancy_probe=srf._stream_buffer_probe,
        )
        self._blocks_done = 0
        #: Words per lane granted but not yet delivered (pipelined reads
        #: must reserve buffer space at grant time or back-to-back grants
        #: would overflow the stream buffer when they land).
        self._inflight_words = 0
        self._flush_requested = direction is PortDirection.READ

    # -- client side ------------------------------------------------------
    def can_pop(self) -> bool:
        return self.direction is PortDirection.READ and self.fifo.can_pop(1)

    def pop_simd(self) -> list:
        """Pop one word per lane (cluster-side sequential read)."""
        return self.fifo.pop_simd()

    def can_push(self) -> bool:
        return self.direction is PortDirection.WRITE and self.fifo.can_push(1)

    def push_simd(self, lane_values) -> None:
        """Push one word per lane (cluster-side sequential write)."""
        self.fifo.push_simd(lane_values)

    def flush(self) -> None:
        """Request that buffered write data be drained even if partial."""
        self._flush_requested = True

    @property
    def drained(self) -> bool:
        """True when all stream data has moved through the port."""
        if self.direction is PortDirection.READ:
            return self._blocks_done >= self.total_blocks
        return self._blocks_done >= self.total_blocks or (
            self._flush_requested and self.fifo.occupancy == 0
            and not self._partial_pending()
        )

    # -- arbiter side ------------------------------------------------------
    def wants_grant(self) -> bool:
        if self._blocks_done >= self.total_blocks:
            return False
        if self.direction is PortDirection.READ:
            return (
                self.fifo.space - self._inflight_words >= self.words_per_lane
            )
        occupancy = self.fifo.occupancy
        if occupancy >= self.words_per_lane:
            return True
        return self._flush_requested and occupancy > 0

    def on_grant(self, cycle: int) -> int:
        """Perform one block transfer; returns words moved."""
        base = self.descriptor.base + self._blocks_done * self.block_words
        if self.direction is PortDirection.READ:
            per_lane = self.srf.filter_block([
                self.srf.storage.read_range(
                    base + lane * self.words_per_lane, self.words_per_lane
                )
                for lane in range(self.fifo.lanes)
            ])
            self.srf.schedule_fill(
                cycle + self.srf.config.srf_sequential_latency, self, per_lane
            )
            self._blocks_done += 1
            self._inflight_words += self.words_per_lane
            return self.block_words
        width = min(self.words_per_lane, self.fifo.occupancy)
        per_lane = self.fifo.pop_block(width)
        for lane, words in enumerate(per_lane):
            self.srf.storage.write_range(
                base + lane * self.words_per_lane, words
            )
        if width == self.words_per_lane or self._flush_requested:
            self._blocks_done += 1
        return width * self.fifo.lanes

    def deliver_fill(self, per_lane) -> None:
        """Complete a pipelined read block (called by the SRF)."""
        self._inflight_words -= len(per_lane[0])
        self.fifo.push_block(per_lane)

    def _partial_pending(self) -> bool:
        return self._blocks_done < self.total_blocks and self.fifo.occupancy > 0


class IndexedStream:
    """Timing and data state for one indexed stream (Table 1 kinds).

    A read stream owns, per lane, an address FIFO and a reorder buffer;
    issuing a record reserves reorder slots so data returns in issue
    order (Figure 9's stall semantics). A write stream's FIFO entries
    carry the data words; ``outstanding_writes`` lets the executor
    barrier on write drain at kernel end.
    """

    #: Reorder-buffer class hook: timing-engine subclasses (see
    #: :mod:`repro.machine.columnar`) substitute a due-tracking variant.
    ROB_CLS = ReorderBuffer

    def __init__(self, srf: "StreamRegisterFile", descriptor: StreamDescriptor):
        if descriptor.kind.is_sequential:
            raise SrfError(f"{descriptor.name}: not an indexed stream kind")
        self.srf = srf
        self.descriptor = descriptor
        lanes = srf.geometry.lanes
        cfg = srf.config
        self.fifos = [
            AddressFifo(cfg.address_fifo_words, descriptor.stream_id, lane)
            for lane in range(lanes)
        ]
        if descriptor.kind.is_read:
            self.robs = [
                self.ROB_CLS(cfg.stream_buffer_words) for _ in range(lanes)
            ]
        else:
            self.robs = None
        self.outstanding_writes = 0
        #: Word accesses queued across all lane FIFOs (kept as a counter
        #: so per-cycle arbitration polls are O(1), not O(lanes)).
        self.pending_words = 0
        # Immutable per-stream facts, cached off the hot arbitration path.
        self.is_crosslane = descriptor.kind.is_crosslane
        self.is_read = descriptor.kind.is_read
        self._local_base = self._compute_local_base()
        self._per_lane_single = (
            descriptor.index_space is IndexSpace.PER_LANE
            and descriptor.record_words == 1
        )

    def _compute_local_base(self) -> int:
        geometry = self.srf.geometry
        base = self.descriptor.base
        if base % geometry.block_words:
            raise SrfError(
                f"{self.descriptor.name}: indexed streams need block-aligned "
                f"bases (got {base})"
            )
        return (base // geometry.block_words) * geometry.words_per_lane_access

    # -- address resolution ------------------------------------------------
    def resolve(self, lane: int, record_index: int) -> list:
        """Word targets ``(target_lane, bank_local_addr)`` of a record."""
        descriptor = self.descriptor
        if not 0 <= record_index < descriptor.length_records:
            raise SrfError(
                f"{descriptor.name}: record index {record_index} out of "
                f"range [0,{descriptor.length_records})"
            )
        if self._per_lane_single:
            return [(lane, self._local_base + record_index)]
        rw = descriptor.record_words
        if descriptor.index_space is IndexSpace.PER_LANE:
            start = self._local_base + record_index * rw
            return [(lane, start + j) for j in range(rw)]
        geometry = self.srf.geometry
        start = descriptor.base + record_index * rw
        return [geometry.split(start + j) for j in range(rw)]

    # -- client (cluster) side ----------------------------------------------
    def can_issue(self, lane: int) -> bool:
        """Whether ``lane`` may enqueue another record access now."""
        if self.fifos[lane].is_full:
            return False
        if self.robs is not None:
            return self.robs[lane].can_reserve(self.descriptor.record_words)
        return True

    def issue_read(self, lane: int, record_index: int) -> None:
        """Enqueue a record read; reserves in-order reorder slots."""
        if not self.is_read:
            raise SrfError(f"{self.descriptor.name}: not a read stream")
        words = self.resolve(lane, record_index)
        tickets = [self.robs[lane].reserve() for _ in words]
        self.fifos[lane].push(RecordAccess(words=words, tickets=tickets))
        self.pending_words += len(words)
        hist = self.srf._addr_fifo_hist
        if hist is not None:
            hist.record(self.fifos[lane].occupancy)

    def issue_write(self, lane: int, record_index: int, values) -> None:
        """Enqueue a record write carrying its data words."""
        if not self.descriptor.kind.is_write:
            raise SrfError(f"{self.descriptor.name}: not a write stream")
        words = self.resolve(lane, record_index)
        values = list(values)
        if len(values) != len(words):
            raise SrfError(
                f"{self.descriptor.name}: record needs "
                f"{self.descriptor.record_words} words"
            )
        self.fifos[lane].push(RecordAccess(words=words, values=values))
        self.pending_words += len(words)
        self.outstanding_writes += len(words)
        hist = self.srf._addr_fifo_hist
        if hist is not None:
            hist.record(self.fifos[lane].occupancy)

    def data_ready(self, lane: int) -> bool:
        """Whether the oldest issued record's next word is readable."""
        return self.robs is not None and self.robs[lane].head_ready()

    def record_ready(self, lane: int) -> bool:
        """Whether a full record (``record_words`` words) is readable."""
        return self.robs is not None and self.robs[lane].head_ready_n(
            self.descriptor.record_words
        )

    def pop_record(self, lane: int):
        """Pop one full record; single-word records return the bare word."""
        words = [
            self.pop_data(lane) for _ in range(self.descriptor.record_words)
        ]
        return words[0] if len(words) == 1 else tuple(words)

    def pop_data(self, lane: int):
        """Pop the next in-order data word for ``lane``."""
        if self.robs is None:
            raise SrfError(f"{self.descriptor.name}: write streams have no data")
        return self.robs[lane].pop()

    @property
    def quiescent(self) -> bool:
        """True when no addresses or writes remain in flight."""
        return self.pending_words == 0 and self.outstanding_writes == 0

    def pending_addresses(self) -> bool:
        return self.pending_words > 0


class StreamRegisterFile:
    """Cycle-steppable SRF with sequential and indexed access.

    Construct one per simulated machine; register sequential ports and
    indexed streams, then call :meth:`tick` once per cycle. ``comm_busy``
    tells the SRF whether the inter-cluster network carries an explicit
    (statically scheduled) communication this cycle, which takes priority
    over cross-lane data returns (§4.5).
    """

    #: Indexed-stream class hook: timing-engine subclasses (see
    #: :mod:`repro.machine.columnar`) substitute a variant whose reorder
    #: buffers track fill due cycles.
    INDEXED_STREAM_CLS = IndexedStream

    def __init__(self, config: MachineConfig):
        config.validate()
        self.config = config
        self.geometry = SrfGeometry(
            lanes=config.lanes,
            bank_words=config.bank_words,
            words_per_lane_access=config.words_per_lane_access,
            subarrays_per_bank=config.subarrays_per_bank,
        )
        self.storage = SrfStorage(self.geometry)
        self.allocator = SrfAllocator(self.geometry)
        self.stats = SrfStats()
        self._seq_ports = []
        self._indexed = {}  # stream_id -> IndexedStream
        self._indexed_list = []  # same streams, in registration order
        self._global_arbiter = RoundRobinArbiter()
        self._seq_arbiter = RoundRobinArbiter()
        self._bank_arbiters = [RoundRobinArbiter() for _ in range(config.lanes)]
        network_cls = (
            RingAddressNetwork if config.crosslane_network == "ring"
            else AddressNetwork
        )
        self.address_network = network_cls(
            lanes=config.lanes,
            ports_per_bank=config.crosslane_ports_per_bank,
            source_bandwidth=max(1, config.crosslane_indexed_bandwidth or 1),
        )
        self.return_network = ReturnNetwork(lanes=config.lanes)
        # Sub-array decode factors, inlined on the per-word grant path
        # (addresses there were already range-checked at issue time).
        self._subarray_stride = self.geometry.words_per_lane_access
        self._subarray_count = self.geometry.subarrays_per_bank
        self._in_flight = []  # heap of (due, sequence, action) tuples
        self._sequence = itertools.count()
        self._comm_busy = False
        # Fault injection (repro.faults); all None/False when disabled so
        # the hot paths pay a single predicated check at most.
        self._fault_injector = None
        self._drop_schedule = None
        self._faults_enabled = False
        self._drops_active = False
        # Observability (repro.observe); same inertness contract.
        self._tracer = None
        self._bank_conflicts = None
        self._addr_fifo_hist = None
        self._stream_buffer_probe = None
        self._occupancy_policy = config.indexed_arbitration == "occupancy"
        self._shared_network = config.shared_interlane_network
        #: Per-bank grant cap for indexed word accesses per cycle.
        self._bank_cap = (
            min(config.inlane_indexed_bandwidth, config.subarrays_per_bank)
            if config.supports_indexing
            else 0
        )

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def open_sequential(
        self,
        descriptor: StreamDescriptor,
        direction: "PortDirection | None" = None,
        buffer_words: "int | None" = None,
    ) -> SequentialPort:
        """Attach a sequential stream to the SRF port."""
        if direction is None:
            direction = (
                PortDirection.READ
                if descriptor.kind.is_read
                else PortDirection.WRITE
            )
        port = SequentialPort(self, descriptor, direction, buffer_words)
        self._seq_ports.append(port)
        if self._tracer is not None:
            self._tracer.instant(
                "srf", f"open:{descriptor.name}", self.stats.cycles,
                direction=direction.value,
                length_words=descriptor.length_words,
            )
        return port

    def close_sequential(self, port: SequentialPort) -> None:
        """Detach a sequential port (its stream finished)."""
        self._seq_ports.remove(port)

    def attach_port(self, port) -> None:
        """Register a duck-typed sequential requester (memory-system port).

        ``port`` must expose ``wants_grant() -> bool`` and
        ``on_grant(cycle) -> int`` (words moved), like
        :class:`SequentialPort`.
        """
        self._seq_ports.append(port)

    def detach_port(self, port) -> None:
        """Unregister a port attached with :meth:`attach_port`."""
        self._seq_ports.remove(port)

    def open_indexed(self, descriptor: StreamDescriptor) -> IndexedStream:
        """Attach an indexed stream (requires an ISRF machine)."""
        if not self.config.supports_indexing:
            raise SrfError(
                f"machine '{self.config.name}' has a sequential-only SRF; "
                f"cannot open indexed stream {descriptor.name}"
            )
        stream = self.INDEXED_STREAM_CLS(self, descriptor)
        self._indexed[descriptor.stream_id] = stream
        self._indexed_list.append(stream)
        if self._tracer is not None:
            self._tracer.instant(
                "srf", f"open:{descriptor.name}", self.stats.cycles,
                kind=descriptor.kind.name,
                length_records=descriptor.length_records,
            )
        return stream

    def close_indexed(self, stream: IndexedStream) -> None:
        if not stream.quiescent:
            raise SrfError(
                f"{stream.descriptor.name}: closing with accesses in flight"
            )
        del self._indexed[stream.descriptor.stream_id]
        self._indexed_list.remove(stream)

    # ------------------------------------------------------------------
    # Observability (repro.observe)
    # ------------------------------------------------------------------
    def install_observer(self, observer) -> None:
        """Attach an :class:`repro.observe.Observer`; None is a no-op.

        Observation never alters SRF behaviour: the tracer records
        stream open/close events, the metrics registry reads the
        existing :class:`SrfStats` through a provider, and metrics level
        2 additionally counts per-bank arbitration conflicts and samples
        address-FIFO / stream-buffer occupancy on issue paths.
        """
        if observer is None:
            return
        self._tracer = observer.tracer
        metrics = observer.metrics
        if metrics is None:
            return
        metrics.add_provider(self._metrics_provider)
        if metrics.level >= 2:
            self._bank_conflicts = [
                metrics.counter(f"srf.bank{bank}.blocked_heads")
                for bank in range(self.geometry.lanes)
            ]
            self._addr_fifo_hist = metrics.histogram("srf.addr_fifo.depth")
            hist = metrics.histogram("srf.stream_buffer.occupancy")
            self._stream_buffer_probe = hist.record

    def _metrics_provider(self) -> dict:
        s = self.stats
        return {
            "srf.cycles": s.cycles,
            "srf.sequential_grants": s.sequential_grants,
            "srf.sequential_words": s.sequential_words,
            "srf.inlane_grants": s.inlane_grants,
            "srf.crosslane_grants": s.crosslane_grants,
            "srf.indexed_write_grants": s.indexed_write_grants,
            "srf.indexed_cycles": s.indexed_cycles,
            "srf.empty_indexed_cycles": s.empty_indexed_cycles,
            "srf.blocked_heads": s.blocked_heads,
        }

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------
    def install_faults(self, injector=None, drop_schedule=None) -> None:
        """Attach a bit-flip injector and/or a crossbar drop schedule.

        ``injector`` is a :class:`repro.faults.BitFlipInjector` applied
        to words read out of the SRF banks; ``drop_schedule`` a
        :class:`repro.faults.DropSchedule` whose active windows take the
        cross-lane address network down.
        """
        self._fault_injector = injector
        self._drop_schedule = drop_schedule
        self._faults_enabled = injector is not None or drop_schedule is not None

    def _advance_faults(self, cycle: int) -> None:
        injector = self._fault_injector
        if injector is not None:
            injector.advance(cycle)
        drops = self._drop_schedule
        if drops is not None:
            active = drops.active(cycle)
            if active != self._drops_active:
                self._drops_active = active
                self.address_network.set_fault_drop(active)

    def filter_word(self, value):
        """Route one word read from a bank through any armed strike."""
        injector = self._fault_injector
        if injector is None or not injector.armed:
            return value
        return injector.filter(value)

    def filter_words(self, values):
        """Route a flat list of read words through any armed strikes."""
        injector = self._fault_injector
        if injector is None or not injector.armed:
            return values
        return [injector.filter(v) for v in values]

    def filter_block(self, per_lane):
        """Route a per-lane block read through any armed strikes."""
        injector = self._fault_injector
        if injector is None or not injector.armed:
            return per_lane
        return [[injector.filter(v) for v in words] for words in per_lane]

    # ------------------------------------------------------------------
    # Cycle stepping
    # ------------------------------------------------------------------
    def tick(self, cycle: int, comm_busy: bool = False) -> None:
        """Advance the SRF by one cycle.

        ``comm_busy`` marks a cycle carrying an explicit (statically
        scheduled) inter-cluster communication: it pre-empts cross-lane
        data returns and, on machines with a shared inter-lane network
        (§4.5's preferred option), cross-lane index injection as well.
        """
        self.stats.cycles += 1
        self._comm_busy = comm_busy
        if self._faults_enabled:
            self._advance_faults(cycle)
        self._complete_due(cycle)
        self.return_network.tick(comm_busy)
        self._arbitrate(cycle)

    def next_event_cycle(self, cycle: int) -> "int | None":
        """Earliest cycle at which :meth:`tick` could change state.

        ``cycle`` itself when the next tick may arbitrate an access (a
        port wants a grant, indexed addresses are queued, or return data
        is waiting), the due cycle of the oldest pipelined completion
        otherwise, and ``None`` when the SRF is fully quiescent. Cycles
        before the returned value may be skipped via :meth:`fast_forward`
        with results bit-identical to per-cycle ticking.
        """
        for port in self._seq_ports:
            if port.wants_grant():
                return cycle
        for stream in self._indexed.values():
            if stream.pending_words:
                return cycle
        if self.return_network.pending():
            return cycle
        if self._in_flight:
            return self._in_flight[0][0]
        return None

    def fast_forward(self, cycles: int) -> None:
        """Account ``cycles`` ticks in bulk across a quiescent window.

        Only valid when :meth:`next_event_cycle` reported no possible
        state change for the whole window (so arbitration, pipelined
        completions, and the return network would all have been no-ops).
        """
        self.stats.cycles += cycles
        self._comm_busy = False

    def schedule_fill(self, due: int, port: SequentialPort, per_lane) -> None:
        """Register a pipelined sequential read completion."""
        self._push_in_flight(due, lambda: port.deliver_fill(per_lane))

    def _push_in_flight(self, due: int, action) -> None:
        heapq.heappush(
            self._in_flight, (due, next(self._sequence), action)
        )

    def _complete_due(self, cycle: int) -> None:
        heap = self._in_flight
        while heap and heap[0][0] <= cycle:
            heapq.heappop(heap)[2]()

    # ------------------------------------------------------------------
    # Arbitration (two-stage, §4.4)
    # ------------------------------------------------------------------
    _INDEXED_GROUP = "indexed"

    def _arbitrate(self, cycle: int) -> None:
        """Two-stage arbitration (§4.4): the global stage selects either
        ONE sequential stream or ALL indexed streams, alternating fairly
        between the two classes; a second round-robin picks which
        sequential stream when that class wins."""
        sequential = [p for p in self._seq_ports if p.wants_grant()]
        indexed_wanted = False
        for s in self._indexed_list:
            if s.pending_words:
                indexed_wanted = True
                break
        if not sequential and not indexed_wanted:
            return
        if sequential and indexed_wanted:
            classes = ["sequential", self._INDEXED_GROUP]
            winner_class = self._global_arbiter.pick(classes, lambda _c: True)
        elif sequential:
            winner_class = "sequential"
        else:
            winner_class = self._INDEXED_GROUP
        if winner_class is self._INDEXED_GROUP:
            self._grant_indexed(cycle)
        else:
            port = self._seq_arbiter.pick(sequential, lambda _p: True)
            self.stats.sequential_grants += 1
            self.stats.sequential_words += port.on_grant(cycle)

    def _grant_indexed(self, cycle: int) -> None:
        self.stats.indexed_cycles += 1
        self.address_network.begin_cycle()
        granted_total = 0
        blocked_total = 0
        # Candidate heads per bank: in-lane heads live at their own bank;
        # cross-lane heads are offered by their source lane to the target
        # bank of their head word access.
        streams = self._indexed_list
        for bank in range(self.geometry.lanes):
            granted, blocked = self._grant_bank(bank, streams, cycle)
            granted_total += granted
            blocked_total += blocked
        if granted_total == 0:
            self.stats.empty_indexed_cycles += 1
        self.stats.blocked_heads += blocked_total

    def _grant_bank(self, bank: int, streams, cycle: int) -> tuple:
        """Local arbitration for one bank; returns (granted, blocked)."""
        heads = []
        lanes = self.geometry.lanes
        for stream in streams:
            if not stream.pending_words:
                continue
            if stream.is_crosslane:
                fifos = stream.fifos
                for lane in range(lanes):
                    word = fifos[lane].peek_word()
                    if word is not None and word.target_lane == bank:
                        heads.append((stream, lane, word))
            else:
                word = stream.fifos[bank].peek_word()
                if word is not None:
                    heads.append((stream, bank, word))
        if not heads:
            return 0, 0
        used_subarrays = set()
        granted = 0
        if self._occupancy_policy:
            # Stall-aware policy (§5.4): serve the fullest address FIFOs
            # first — the streams most likely to stall the clusters.
            order = sorted(
                range(len(heads)),
                key=lambda p: -heads[p][0].fifos[heads[p][1]].occupancy,
            )
        else:
            order = self._bank_arbiters[bank].rotation(len(heads))
        for position in order:
            stream, lane, word = heads[position]
            if granted >= self._bank_cap:
                break
            subarray = (
                word.bank_local_addr // self._subarray_stride
            ) % self._subarray_count
            if self._bank_cap > 1 and subarray in used_subarrays:
                continue
            if stream.is_crosslane:
                if self._shared_network and self._comm_busy:
                    continue  # the shared network carries the comm
                if not self.return_network.bank_has_space(bank):
                    continue
                if not self.address_network.try_route(lane, bank):
                    continue
                self.return_network.reserve(bank)
            used_subarrays.add(subarray)
            stream.fifos[lane].advance()
            stream.pending_words -= 1
            self._launch(stream, word, bank, cycle)
            granted += 1
        self._bank_arbiters[bank].advance(len(heads))
        blocked = len(heads) - granted
        if self._bank_conflicts is not None and blocked:
            self._bank_conflicts[bank].add(blocked)
        return granted, blocked

    def _launch(self, stream: IndexedStream, word: WordAccess, bank: int,
                cycle: int) -> None:
        """Start the pipelined completion of one granted word access."""
        cfg = self.config
        if word.is_read:
            value = self.filter_word(
                self.storage.read_lane(bank, word.bank_local_addr)
            )
            if stream.is_crosslane:
                self.stats.crosslane_grants += 1
                rob = stream.robs[word.source_lane]
                due = cycle + max(1, cfg.crosslane_indexed_latency - 1)
                self._push_in_flight(
                    due,
                    lambda: self.return_network.enqueue(
                        bank, word.source_lane, word.ticket, value,
                        word.stream_id, rob.fill,
                    ),
                )
            else:
                self.stats.inlane_grants += 1
                rob = stream.robs[word.source_lane]
                self._push_in_flight(
                    cycle + cfg.inlane_indexed_latency,
                    lambda: rob.fill(word.ticket, value),
                )
        else:
            self.stats.indexed_write_grants += 1
            self.storage.write_lane(bank, word.bank_local_addr, word.value)
            self._push_in_flight(
                cycle + cfg.inlane_indexed_latency,
                lambda: self._retire_write(stream),
            )

    @staticmethod
    def _retire_write(stream: IndexedStream) -> None:
        stream.outstanding_writes -= 1

    # ------------------------------------------------------------------
    def occupancy_report(self) -> list:
        """Human-readable lines describing current SRF occupancy.

        Used by deadlock forensics: which ports/streams hold state and
        how much is still in flight.
        """
        lines = []
        for port in self._seq_ports:
            fifo = getattr(port, "fifo", None)
            if fifo is not None:
                lines.append(
                    f"sequential port {port.descriptor.name}: "
                    f"{port._blocks_done}/{port.total_blocks} blocks, "
                    f"buffer {fifo.occupancy}/{fifo.capacity} words/lane"
                )
            else:
                op = getattr(port, "_op", None)
                if op is not None:
                    lines.append(
                        f"memory-stream port {op.op.describe()}: "
                        f"{port._blocks_done}/{port._total_blocks} blocks"
                    )
        for stream in self._indexed_list:
            lines.append(
                f"indexed stream {stream.descriptor.name}: "
                f"{stream.pending_words} queued words, "
                f"{stream.outstanding_writes} outstanding writes"
            )
        lines.extend(self._inflight_lines())
        if self.return_network.pending():
            lines.append(
                f"{self.return_network.pending()} words waiting in "
                f"return-network queues"
            )
        return lines

    def _inflight_lines(self) -> list:
        """Forensic lines about pipelined completions still in flight."""
        if not self._in_flight:
            return []
        return [
            f"{len(self._in_flight)} pipelined accesses in flight "
            f"(next due cycle {self._in_flight[0][0]})"
        ]

    @property
    def idle(self) -> bool:
        """True when nothing is in flight anywhere in the SRF."""
        if self._in_flight or self.return_network.pending():
            return False
        if any(p.wants_grant() for p in self._seq_ports):
            return False
        return all(s.quiescent for s in self._indexed.values())
