"""Layout-aware SRF arrays: the bridge between data and descriptors.

An :class:`SrfArray` owns one block-aligned SRF allocation and
manufactures the stream descriptors that view it — sequentially (for
memory transfers and sequential kernel streams), with per-lane indexing
(replicated lookup tables, per-lane partitions), or with global
cross-lane indexing. It also converts between three data layouts:

* **stream order** — the linear word order of loads/stores and global
  addressing (word ``j`` at global address ``base + j``);
* **per-lane order** — what one lane's bank sees at consecutive
  bank-local addresses (how ``idxl_*`` streams address records);
* **record order** — whole records of ``record_words`` words.

Getting these conversions right in one place is essential: the paper's
indexed benchmarks (replicated Rijndael T-tables, per-lane FFT columns,
cross-lane graph node arrays) all depend on agreeing about where word
``k`` of lane ``l`` lives.
"""

from __future__ import annotations

from repro.core.descriptors import IndexSpace, StreamDescriptor, StreamKind
from repro.core.srf import StreamRegisterFile
from repro.errors import SrfError


class SrfArray:
    """One allocated SRF region plus descriptor/layout helpers."""

    def __init__(self, srf: StreamRegisterFile, words: int, name: str):
        self.srf = srf
        self.name = name
        self.allocation = srf.allocator.allocate(words, name)
        self._geometry = srf.geometry

    @property
    def base(self) -> int:
        return self.allocation.base

    @property
    def words(self) -> int:
        """Allocated size (rounded up to whole blocks)."""
        return self.allocation.words

    @property
    def words_per_lane(self) -> int:
        return self.words // self._geometry.lanes

    def free(self) -> None:
        self.srf.allocator.free(self.allocation)

    # ------------------------------------------------------------------
    # Descriptor factories
    # ------------------------------------------------------------------
    def seq_read(self, words: "int | None" = None,
                 name: str = "") -> StreamDescriptor:
        """Sequential read stream over the first ``words`` words."""
        return self._sequential(StreamKind.SEQUENTIAL_READ, words, name)

    def seq_write(self, words: "int | None" = None,
                  name: str = "") -> StreamDescriptor:
        """Sequential write stream over the first ``words`` words."""
        return self._sequential(StreamKind.SEQUENTIAL_WRITE, words, name)

    def _sequential(self, kind, words, name) -> StreamDescriptor:
        words = self.words if words is None else words
        if words > self.words:
            raise SrfError(
                f"{self.name}: {words} words exceed the {self.words}-word "
                "allocation"
            )
        return StreamDescriptor(
            name or self.name, kind, self.base, length_records=words
        )

    def inlane_read(self, records_per_lane: "int | None" = None,
                    record_words: int = 1, name: str = "") -> StreamDescriptor:
        """In-lane indexed read view: each lane indexes its own bank."""
        return self._inlane(
            StreamKind.INLANE_INDEXED_READ, records_per_lane, record_words,
            name,
        )

    def inlane_write(self, records_per_lane: "int | None" = None,
                     record_words: int = 1, name: str = "") -> StreamDescriptor:
        """In-lane indexed write view."""
        return self._inlane(
            StreamKind.INLANE_INDEXED_WRITE, records_per_lane, record_words,
            name,
        )

    def inlane_readwrite(self, records_per_lane: "int | None" = None,
                         record_words: int = 1,
                         name: str = "") -> StreamDescriptor:
        """In-lane indexed read-write view (paper §7 future work)."""
        return self._inlane(
            StreamKind.INLANE_INDEXED_READWRITE, records_per_lane,
            record_words, name,
        )

    def _inlane(self, kind, records_per_lane, record_words, name):
        capacity = self.words_per_lane // record_words
        records = capacity if records_per_lane is None else records_per_lane
        if records > capacity:
            raise SrfError(
                f"{self.name}: {records} records/lane exceed per-lane "
                f"capacity {capacity}"
            )
        return StreamDescriptor(
            name or self.name, kind, self.base,
            length_records=records, record_words=record_words,
            index_space=IndexSpace.PER_LANE,
        )

    def crosslane_read(self, records: "int | None" = None,
                       record_words: int = 1,
                       name: str = "") -> StreamDescriptor:
        """Cross-lane indexed read view over globally striped records."""
        capacity = self.words // record_words
        records = capacity if records is None else records
        if records > capacity:
            raise SrfError(
                f"{self.name}: {records} records exceed capacity {capacity}"
            )
        return StreamDescriptor(
            name or self.name, StreamKind.CROSSLANE_INDEXED_READ, self.base,
            length_records=records, record_words=record_words,
            index_space=IndexSpace.GLOBAL,
        )

    # ------------------------------------------------------------------
    # Functional contents (direct storage access, no timing)
    # ------------------------------------------------------------------
    def fill_stream_order(self, values) -> None:
        """Write values at consecutive global (stream-order) addresses."""
        values = list(values)
        if len(values) > self.words:
            raise SrfError(f"{self.name}: too many values")
        self.srf.storage.write_range(self.base, values)

    def read_stream_order(self, count: "int | None" = None) -> list:
        count = self.words if count is None else count
        return self.srf.storage.read_range(self.base, count)

    def fill_per_lane(self, lane_tables) -> None:
        """Write one word list per lane at that lane's bank-local layout."""
        geometry = self._geometry
        if len(lane_tables) != geometry.lanes:
            raise SrfError(f"{self.name}: need one table per lane")
        local_base = self._local_base()
        for lane, table in enumerate(lane_tables):
            if len(table) > self.words_per_lane:
                raise SrfError(
                    f"{self.name}: lane {lane} table exceeds per-lane space"
                )
            for offset, value in enumerate(table):
                self.srf.storage.write_lane(lane, local_base + offset, value)

    def fill_replicated(self, table) -> None:
        """Replicate one table into every lane (Rijndael-style tables)."""
        self.fill_per_lane([list(table)] * self._geometry.lanes)

    def read_per_lane(self, lane: int,
                      count: "int | None" = None) -> list:
        count = self.words_per_lane if count is None else count
        local_base = self._local_base()
        return [
            self.srf.storage.read_lane(lane, local_base + offset)
            for offset in range(count)
        ]

    def _local_base(self) -> int:
        geometry = self._geometry
        return (self.base // geometry.block_words) * \
            geometry.words_per_lane_access

    # ------------------------------------------------------------------
    # Memory-image construction (stream-order words for loads)
    # ------------------------------------------------------------------
    def stream_image_per_lane(self, lane_tables) -> list:
        """Stream-order word list that, when loaded sequentially into
        this array, places ``lane_tables[l]`` at lane ``l``'s bank."""
        geometry = self._geometry
        lanes = geometry.lanes
        m = geometry.words_per_lane_access
        if len(lane_tables) != lanes:
            raise SrfError(f"{self.name}: need one table per lane")
        per_lane = max(len(t) for t in lane_tables)
        blocks = -(-per_lane // m)
        image = []
        for block in range(blocks):
            for lane in range(lanes):
                table = lane_tables[lane]
                for off in range(m):
                    local = block * m + off
                    image.append(table[local] if local < len(table) else 0)
        return image

    def stream_image_replicated(self, table) -> list:
        """Stream-order image replicating ``table`` into every lane."""
        return self.stream_image_per_lane(
            [list(table)] * self._geometry.lanes
        )

    def per_lane_from_stream_image(self, image, words_per_lane: int) -> list:
        """Invert :meth:`stream_image_per_lane`: split a stream-order
        word list back into per-lane word lists."""
        geometry = self._geometry
        lanes = geometry.lanes
        m = geometry.words_per_lane_access
        tables = [[] for _ in range(lanes)]
        blocks = -(-words_per_lane // m)
        for block in range(blocks):
            for lane in range(lanes):
                for off in range(m):
                    local = block * m + off
                    position = block * lanes * m + lane * m + off
                    if local < words_per_lane and position < len(image):
                        tables[lane].append(image[position])
        return tables
