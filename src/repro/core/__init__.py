"""The indexed stream register file — the paper's core contribution.

This package implements Sections 4.1–4.5 of the paper: SRF geometry with
banks and sub-arrays, sequential block access through stream buffers,
indexed access through address FIFOs and reorder buffers, two-stage
round-robin arbitration with sub-array conflict detection, and
cross-lane access over dedicated crossbars.
"""

from repro.core.address_fifo import AddressFifo, RecordAccess, WordAccess
from repro.core.arbiter import RoundRobinArbiter
from repro.core.arrays import SrfArray
from repro.core.descriptors import IndexSpace, StreamDescriptor, StreamKind
from repro.core.geometry import SrfGeometry
from repro.core.srf import (
    IndexedStream,
    PortDirection,
    SequentialPort,
    SrfStats,
    StreamRegisterFile,
)
from repro.core.storage import SrfAllocation, SrfAllocator, SrfStorage
from repro.core.stream_buffer import LaneFifo, ReorderBuffer

__all__ = [
    "AddressFifo",
    "IndexSpace",
    "IndexedStream",
    "LaneFifo",
    "PortDirection",
    "RecordAccess",
    "ReorderBuffer",
    "RoundRobinArbiter",
    "SequentialPort",
    "SrfAllocation",
    "SrfAllocator",
    "SrfArray",
    "SrfGeometry",
    "SrfStats",
    "SrfStorage",
    "StreamDescriptor",
    "StreamKind",
    "StreamRegisterFile",
    "WordAccess",
]
