"""Round-robin arbitration primitives for the SRF port (paper §4.4).

Arbitration for the single SRF port is a two-stage process: *global*
arbitration selects either one sequential stream or all indexed streams;
*local* arbitration in each lane then picks which indexed accesses
proceed, subject to sub-array conflicts. Section 5.4 notes that a simple
round-robin scheme is within 10% of complex stall-aware arbiters, so
round-robin is what both stages use here.
"""

from __future__ import annotations

from repro.errors import SrfError


class RoundRobinArbiter:
    """Fair pick among a dynamic set of requesters.

    :meth:`pick` returns the first requester at or after the rotating
    pointer for which ``predicate`` holds, then advances the pointer past
    the winner.
    """

    def __init__(self):
        self._pointer = 0

    def pick(self, candidates, predicate):
        """Select the next eligible candidate, or None.

        ``candidates`` is an indexable sequence; ``predicate`` maps a
        candidate to bool. The rotation pointer is interpreted modulo the
        current candidate count, so the candidate list may change size
        between calls.
        """
        count = len(candidates)
        if count == 0:
            return None
        start = self._pointer % count
        for step in range(count):
            position = (start + step) % count
            candidate = candidates[position]
            if predicate(candidate):
                self._pointer = position + 1
                return candidate
        return None

    def rotation(self, count: int) -> list:
        """Index order for scanning ``count`` items starting at the pointer."""
        if count < 0:
            raise SrfError("negative candidate count")
        if count == 0:
            return []
        start = self._pointer % count
        return [(start + step) % count for step in range(count)]

    def advance(self, count: int) -> None:
        """Rotate the pointer by one position over ``count`` items."""
        if count > 0:
            self._pointer = (self._pointer + 1) % count
