"""Stream-program static analysis: bindings, bounds, extents, hazards.

Where the kernel verifier looks at one dataflow graph in isolation,
this pass sees the whole :class:`~repro.machine.program.StreamProgram`
— concrete stream descriptors bound to formal parameters, trip counts,
and the task dependence graph — and checks what only that view can:

* **binding discipline** — every binding's kind/record-width matches
  the formal parameter, indexed streams only appear on machines whose
  SRF supports indexing, and no stream's footprint falls outside the
  SRF;
* **bounds proofs** — each indexed access's record index is evaluated
  over the :mod:`~repro.analyze.intervals` domain against the *bound*
  stream's length. Indices proven inside are counted; an exact affine
  index that escapes the bound is a hard error (the access provably
  faults); everything else is a cannot-prove note, never an error;
* **stream extents** — a kernel popping more sequential words per lane
  than the bound stream holds will starve its port and deadlock the
  lock-stepped machine; that is decidable from op counts × trip count;
* **hazards** — unordered tasks whose SRF footprints overlap with at
  least one writer race in the simulator. Memory transfers genuinely
  run concurrently, so those overlaps are errors; kernel pairs
  serialise on the single microcontroller (order may still be
  timing-dependent), so those are warnings.

Footprints are block-aligned: the allocator hands out whole N×m
blocks, so block granularity is conservative *within* an allocation
but can never merge two distinct allocations — which is what keeps the
hazard check free of false positives.
"""

from __future__ import annotations

from repro.analyze.banks import bank_estimates
from repro.analyze.diagnostics import AnalysisReport, error, info, warning
from repro.analyze.intervals import IndexEvaluator
from repro.analyze.verifier import verify_kernel
from repro.config.machine import MachineConfig
from repro.core.descriptors import IndexSpace, StreamDescriptor
from repro.core.geometry import SrfGeometry
from repro.kernel.ops import OpKind
from repro.machine.program import StreamProgram


def _geometry(config: MachineConfig) -> SrfGeometry:
    return SrfGeometry(
        lanes=config.lanes,
        bank_words=config.bank_words,
        words_per_lane_access=config.words_per_lane_access,
        subarrays_per_bank=config.subarrays_per_bank,
    )


def footprint(descriptor: StreamDescriptor,
              geometry: SrfGeometry) -> tuple:
    """Block-aligned global word range ``[start, end)`` of a stream.

    ``PER_LANE`` streams hold ``length_words`` words in *every* bank, so
    their global footprint spans one block per ``m`` per-lane words;
    sequential and ``GLOBAL`` streams span their word range directly.
    """
    block = geometry.block_words
    m = geometry.words_per_lane_access
    first = (descriptor.base // block) * block
    if descriptor.kind.is_indexed and \
            descriptor.index_space is IndexSpace.PER_LANE:
        blocks = -(-descriptor.length_words // m)
    else:
        span = descriptor.base + descriptor.length_words - first
        blocks = -(-span // block)
    return first, first + max(1, blocks) * block


def analyze_program(program: StreamProgram, config: MachineConfig,
                    bank_pressure: bool = True) -> AnalysisReport:
    """Run every program-level check; returns the aggregate report."""
    report = AnalysisReport(subject=f"{program.name} on {config.name}")
    geometry = _geometry(config)
    report.extend(_check_dependencies(program))
    verified = set()
    analyzed = set()
    for task in program.tasks:
        if not task.is_kernel:
            continue
        invocation = task.work
        kernel = invocation.kernel
        if id(kernel) not in verified:
            verified.add(id(kernel))
            report.extend(verify_kernel(kernel))
        report.extend(_check_bindings(task, config, geometry))
        # Identical invocations recur per strip of a steady-state chain;
        # the index analysis depends only on this signature.
        signature = (
            id(kernel), invocation.iterations,
            tuple(sorted(
                (name, d.kind.value, d.length_records, d.record_words)
                for name, d in invocation.bindings.items()
            )),
        )
        if signature in analyzed:
            continue
        analyzed.add(signature)
        evaluator = IndexEvaluator(
            kernel, invocation.iterations, config.lanes
        )
        report.extend(_check_bounds(task, evaluator))
        report.extend(_check_extents(task, geometry))
        if bank_pressure and config.supports_indexing:
            report.extend(bank_estimates(task, evaluator, geometry))
    report.extend(_check_hazards(program, geometry))
    return report


# ----------------------------------------------------------------------
def _check_dependencies(program: StreamProgram):
    """Every dependency must name an earlier task of this program."""
    seen = set()
    for task in program.tasks:
        for dep in task.deps:
            if dep not in seen:
                yield error(
                    "dangling-dependency",
                    f"task {task.task_id} '{task.name}' depends on task "
                    f"{dep}, which is not an earlier task of this program",
                    task=task.name,
                )
        seen.add(task.task_id)


def _check_bindings(task, config: MachineConfig, geometry: SrfGeometry):
    """Formal/actual agreement and machine capability per binding."""
    invocation = task.work
    for name, formal in invocation.kernel.streams.items():
        descriptor = invocation.bindings.get(name)
        if descriptor is None:
            yield error(
                "missing-binding",
                f"stream {name!r} is not bound",
                kernel=invocation.kernel.name, stream=name, task=task.name,
            )
            continue
        if descriptor.kind is not formal.kind:
            yield error(
                "binding-kind-mismatch",
                f"formal {name!r} is {formal.kind.value} but is bound to a "
                f"{descriptor.kind.value} descriptor",
                kernel=invocation.kernel.name, stream=name, task=task.name,
            )
            continue
        if descriptor.record_words != formal.record_words:
            yield error(
                "binding-record-words",
                f"formal {name!r} has {formal.record_words}-word records "
                f"but its binding has {descriptor.record_words}-word records",
                kernel=invocation.kernel.name, stream=name, task=task.name,
            )
        if descriptor.kind.is_indexed and not config.supports_indexing:
            yield error(
                "indexing-unsupported",
                f"stream {name!r} needs indexed SRF access but machine "
                f"{config.name!r} is sequential-only",
                kernel=invocation.kernel.name, stream=name, task=task.name,
            )
            continue
        start, end = footprint(descriptor, geometry)
        if end > config.srf_words:
            yield error(
                "srf-overflow",
                f"stream {name!r} spans SRF words [{start}, {end}) but the "
                f"SRF holds {config.srf_words} words",
                kernel=invocation.kernel.name, stream=name, task=task.name,
            )


def _check_bounds(task, evaluator: IndexEvaluator):
    """Per indexed access: prove in-bounds, prove out-of-bounds, or note."""
    invocation = task.work
    kernel = invocation.kernel
    if invocation.iterations <= 0:
        return
    proven = total = 0
    for op in kernel.stream_ops(OpKind.IDX_ISSUE, OpKind.IDX_WRITE):
        descriptor = invocation.bindings.get(op.stream.name)
        if descriptor is None or not op.operands:
            continue
        total += 1
        predicated = len(op.operands) == (
            2 if op.kind is OpKind.IDX_ISSUE else 3
        )
        value = evaluator.value_of(op.operands[0])
        limit = descriptor.length_records - 1
        if value.interval.within(0, limit):
            proven += 1
        elif value.is_exact and not predicated:
            yield error(
                "index-out-of-bounds",
                f"{op.name} indexes {op.stream.name!r} with "
                f"{value.describe()}, reaching "
                f"{value.interval.describe()} outside records [0, {limit}]",
                kernel=kernel.name, op=op.name, stream=op.stream.name,
                task=task.name,
            )
        else:
            yield info(
                "bounds-unproven",
                f"{op.name} indexes {op.stream.name!r} with "
                f"{value.describe()}; cannot prove it stays in "
                f"[0, {limit}]",
                kernel=kernel.name, op=op.name, stream=op.stream.name,
                task=task.name,
            )
    if total:
        yield info(
            "bounds-summary",
            f"{proven} of {total} indexed accesses proven in bounds",
            kernel=kernel.name, task=task.name,
        )


def _check_extents(task, geometry: SrfGeometry):
    """Sequential pops/pushes per lane must fit the bound stream."""
    invocation = task.work
    kernel = invocation.kernel
    if invocation.iterations <= 0:
        return
    per_stream = {}
    for op in kernel.stream_ops(OpKind.SEQ_READ, OpKind.SEQ_WRITE):
        per_stream[op.stream.name] = per_stream.get(op.stream.name, 0) + 1
    for name, ops_per_iter in sorted(per_stream.items()):
        descriptor = invocation.bindings.get(name)
        if descriptor is None or descriptor.length_words <= 0:
            continue
        # Same block arithmetic as footprint() — pure, so a descriptor
        # that escapes the SRF still gets its srf-overflow diagnostic
        # from _check_bindings instead of crashing the analysis here.
        start, end = footprint(descriptor, geometry)
        blocks = (end - start) // geometry.block_words
        capacity = blocks * geometry.words_per_lane_access
        needed = ops_per_iter * invocation.iterations
        if needed > capacity:
            yield error(
                "stream-overrun",
                f"kernel moves {needed} words/lane on stream {name!r} "
                f"({ops_per_iter}/iteration x {invocation.iterations}) but "
                f"its binding holds {capacity} words/lane — the port "
                "exhausts and the machine deadlocks",
                kernel=kernel.name, stream=name, task=task.name,
            )


# ----------------------------------------------------------------------
def _access_ranges(task, geometry: SrfGeometry):
    """(start, end, writes, stream-name) footprints of one task."""
    if task.is_kernel:
        for name, descriptor in sorted(task.work.bindings.items()):
            start, end = footprint(descriptor, geometry)
            if descriptor.kind.is_read:
                yield start, end, False, name
            if descriptor.kind.is_write:
                yield start, end, True, name
    else:
        op = task.work
        start, end = footprint(op.srf, geometry)
        yield start, end, op.into_srf, op.srf.name


def _check_hazards(program: StreamProgram, geometry: SrfGeometry):
    """Unordered overlapping SRF accesses with at least one writer."""
    tasks = program.tasks
    ancestors = {}
    for task in tasks:
        reach = set()
        for dep in task.deps:
            reach.add(dep)
            reach |= ancestors.get(dep, frozenset())
        ancestors[task.task_id] = frozenset(reach)
    accesses = [
        (task, list(_access_ranges(task, geometry))) for task in tasks
    ]
    for i, (first, first_ranges) in enumerate(accesses):
        for second, second_ranges in accesses[i + 1:]:
            if (first.task_id in ancestors[second.task_id]
                    or second.task_id in ancestors.get(
                        first.task_id, frozenset())):
                continue
            conflicts = sorted({
                (name_a, name_b)
                for (a0, a1, wr_a, name_a) in first_ranges
                for (b0, b1, wr_b, name_b) in second_ranges
                if (wr_a or wr_b) and a0 < b1 and b0 < a1
            })
            if not conflicts:
                continue
            pairs = ", ".join(
                f"{a!r}/{b!r}" for a, b in conflicts
            )
            if first.is_kernel and second.is_kernel:
                yield warning(
                    "kernel-overlap-unordered",
                    f"kernels '{first.name}' (task {first.task_id}) and "
                    f"'{second.name}' (task {second.task_id}) touch "
                    f"overlapping SRF streams ({pairs}) with no ordering "
                    "dependency; they serialise on the microcontroller but "
                    "their order is timing-dependent",
                    task=first.name,
                )
            else:
                yield error(
                    "srf-race",
                    f"tasks '{first.name}' (task {first.task_id}) and "
                    f"'{second.name}' (task {second.task_id}) access "
                    f"overlapping SRF words ({pairs}) with at least one "
                    "writer and no ordering dependency — they can run "
                    "concurrently and race",
                    task=first.name,
                )
