"""Static bank-conflict estimation for indexed SRF access patterns.

The ISRF4 design (paper §4.2) gets its indexed bandwidth from spreading
accesses across the ``s`` sub-arrays of each bank; §5.2 shows measured
throughput collapsing when an access pattern concentrates on few
sub-arrays. This pass predicts that concentration *statically*: when an
indexed access's record index is an exact affine function of the
iteration counter and lane id (see :mod:`repro.analyze.intervals`), the
sequence of (bank, sub-array) targets is fully determined, and we can
tabulate it without running the machine.

Two advisory metrics come out, both cross-checkable against the
``metrics_level=2`` observe-layer conflict counters:

* **in-lane streams** — the share of a lane's accesses landing on its
  hottest sub-array (``1/s`` is uniform, ``1.0`` means every access
  serialises on one sub-array);
* **cross-lane streams** — the mean number of same-cycle accesses to
  the hottest bank when all lanes issue together (``1.0`` is
  conflict-free, ``lanes`` means total serialisation).

Opaque index payloads produce a single "pattern unknown" note instead
of a guess — the estimator never invents pressure it cannot derive.
"""

from __future__ import annotations

from repro.analyze.diagnostics import info
from repro.analyze.intervals import IndexEvaluator
from repro.core.descriptors import IndexSpace
from repro.core.geometry import SrfGeometry
from repro.kernel.ops import OpKind

#: Iterations sampled when tabulating an affine pattern. Affine target
#: sequences are periodic in practice; 64 iterations bound the work
#: while covering every stride the shipped benchmarks generate.
SAMPLE_ITERATIONS = 64


def bank_estimates(task, evaluator: IndexEvaluator,
                   geometry: SrfGeometry):
    """Yield info diagnostics estimating bank/sub-array pressure."""
    invocation = task.work
    kernel = invocation.kernel
    iterations = min(invocation.iterations, SAMPLE_ITERATIONS)
    if iterations <= 0:
        return
    for op in kernel.stream_ops(OpKind.IDX_ISSUE, OpKind.IDX_WRITE):
        descriptor = invocation.bindings.get(op.stream.name)
        if descriptor is None or not op.operands:
            continue
        affine = evaluator.value_of(op.operands[0]).affine
        if affine is None or not _integral(affine):
            yield info(
                "bank-pressure-unknown",
                f"{op.name}: index pattern on {op.stream.name!r} is not "
                "statically derivable; no conflict estimate "
                "(run with metrics_level=2 for measured counts)",
                kernel=kernel.name, op=op.name, stream=op.stream.name,
                task=task.name,
            )
            continue
        if descriptor.index_space is IndexSpace.PER_LANE:
            yield _inlane_estimate(
                task, op, descriptor, affine, iterations, geometry
            )
        else:
            yield _crosslane_estimate(
                task, op, descriptor, affine, iterations, geometry
            )


def _integral(affine) -> bool:
    return all(
        float(c).is_integer()
        for c in (affine.const, affine.c_iter, affine.c_lane)
    )


def _inlane_estimate(task, op, descriptor, affine, iterations,
                     geometry: SrfGeometry):
    """Hottest-sub-array share of one lane's access sequence."""
    m = geometry.words_per_lane_access
    s = geometry.subarrays_per_bank
    local_base = (descriptor.base // geometry.block_words) * m
    shares = []
    for lane in range(geometry.lanes):
        counts = {}
        for t in range(iterations):
            record = int(affine.const + affine.c_iter * t
                         + affine.c_lane * lane)
            local = (local_base + record * descriptor.record_words)
            subarray = (local // m) % s
            counts[subarray] = counts.get(subarray, 0) + 1
        shares.append(max(counts.values()) / iterations)
    hottest = max(shares)
    return info(
        "bank-pressure",
        f"{op.name}: in-lane accesses on {op.stream.name!r} put "
        f"{hottest:.0%} of a lane's traffic on its hottest sub-array "
        f"(uniform over {s} sub-arrays would be {1 / s:.0%})",
        kernel=task.work.kernel.name, op=op.name,
        stream=op.stream.name, task=task.name,
    )


def _crosslane_estimate(task, op, descriptor, affine, iterations,
                        geometry: SrfGeometry):
    """Mean same-cycle load on the hottest bank across issuing lanes."""
    total_words = geometry.total_words
    peaks = []
    for t in range(iterations):
        counts = {}
        for lane in range(geometry.lanes):
            record = int(affine.const + affine.c_iter * t
                         + affine.c_lane * lane)
            word = (descriptor.base
                    + record * descriptor.record_words) % total_words
            bank = geometry.lane_of(word)
            counts[bank] = counts.get(bank, 0) + 1
        peaks.append(max(counts.values()))
    mean_peak = sum(peaks) / len(peaks)
    return info(
        "bank-pressure",
        f"{op.name}: cross-lane accesses on {op.stream.name!r} load the "
        f"hottest bank with {mean_peak:.2f} same-cycle accesses on "
        f"average (1.00 is conflict-free, {geometry.lanes} is fully "
        "serialised)",
        kernel=task.work.kernel.name, op=op.name, stream=op.stream.name,
        task=task.name,
    )
