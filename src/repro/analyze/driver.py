"""Run the static passes over the shipped benchmarks × machine presets.

The analyzer's no-false-positive contract is only credible if it is
exercised against every real program the repository can build. This
module constructs each benchmark's steady-state program chain — the
same ``build_program(rep)`` chain :func:`repro.apps.common.
steady_state_run` would execute, without running a single cycle — and
feeds it to :func:`repro.analyze.analyze_program`.

Both the ``python -m repro.analyze`` CLI and the harness ``check``
experiment sit on these helpers. Workload sizes mirror the harness
``small`` scale; the analysis results are size-independent (the shapes
of the index expressions and the task graph do not change with N).
"""

from __future__ import annotations

from repro.analyze.diagnostics import AnalysisReport
from repro.analyze.program import analyze_program
from repro.apps.fft import Fft2dBenchmark
from repro.apps.filter2d import FilterBenchmark
from repro.apps.igraph import TABLE4, IgBenchmark
from repro.apps.rijndael import RijndaelBenchmark
from repro.apps.sort import SortBenchmark
from repro.apps.spmv import SpmvBenchmark, dense_vector, random_matrix
from repro.apps.stencil import StencilBenchmark
from repro.config.machine import MachineConfig
from repro.config.presets import all_configs

#: Benchmark order of the paper's Figure 11/12, then the sparse suite.
APP_NAMES = (
    "FFT 2D", "Rijndael", "Sort", "Filter",
    "IG_SML", "IG_DMS", "IG_DCS", "IG_SCL",
    "SpMV_CSR", "SpMV_CSC", "Stencil_STAR", "Stencil_BOX",
)

#: Harness ``small``-scale workload sizes.
SIZES = {
    "fft_n": 16,
    "rijndael_blocks": 4,
    "sort_n": 512,
    "filter_size": (32, 32),
    "ig_nodes": 384,
    "spmv_shape": (96, 96, 6),
    "stencil_size": (16, 32),
}

#: Strips chained per analysis (warmup + measured, as steady_state_run).
DEFAULT_REPS = 3


def build_benchmark(name: str, config: MachineConfig, sizes=None):
    """Construct one benchmark instance (no cycles are simulated)."""
    params = dict(SIZES)
    params.update(sizes or {})
    if name == "FFT 2D":
        return Fft2dBenchmark(config, n=params["fft_n"])
    if name == "Rijndael":
        return RijndaelBenchmark(
            config, blocks_per_lane=params["rijndael_blocks"]
        )
    if name == "Sort":
        return SortBenchmark(config, n=params["sort_n"])
    if name == "Filter":
        height, width = params["filter_size"]
        return FilterBenchmark(config, height=height, width=width)
    if name.startswith("IG_"):
        return IgBenchmark(config, TABLE4[name], nodes=params["ig_nodes"])
    if name.startswith("SpMV_"):
        rows, cols, avg_nnz = params["spmv_shape"]
        matrix = random_matrix(rows, cols, avg_nnz=avg_nnz)
        return SpmvBenchmark(config, matrix, dense_vector(cols),
                             fmt=name.split("_", 1)[1].lower())
    if name.startswith("Stencil_"):
        height, width = params["stencil_size"]
        return StencilBenchmark(config, name.split("_", 1)[1].lower(),
                                height=height, width=width)
    raise ValueError(f"unknown benchmark {name!r}")


def build_chain(name: str, config: MachineConfig,
                reps: int = DEFAULT_REPS, sizes=None):
    """The chained steady-state program a run would execute."""
    bench = build_benchmark(name, config, sizes)
    chain = bench.build_program(0)
    for rep in range(1, reps):
        chain = chain.then(bench.build_program(rep))
    return chain


def check_app(name: str, config: MachineConfig,
              reps: int = DEFAULT_REPS, sizes=None) -> AnalysisReport:
    """Statically analyze one benchmark on one machine preset."""
    chain = build_chain(name, config, reps, sizes)
    report = analyze_program(chain, config)
    report.subject = f"{name} on {config.name}"
    return report


def check_everything(apps=APP_NAMES, configs=None,
                     reps: int = DEFAULT_REPS) -> list:
    """Analyze every app × preset; returns the report list."""
    configs = configs if configs is not None else all_configs().values()
    return [
        check_app(name, config, reps)
        for config in configs
        for name in apps
    ]
