"""Kernel-IR verifier: structural validation of the dataflow graph.

:meth:`repro.kernel.ir.Kernel.validate` raises on the first structural
problem it meets — fine for ``build()``, useless for tooling that wants
*all* problems at once. This pass re-checks the same invariants (and
several stronger ones) but returns every finding as a
:class:`~repro.analyze.diagnostics.Diagnostic` with op provenance:

* SSA discipline — operands are members of the kernel and defined
  before use (which also proves the non-carry part of the graph
  acyclic, since ops only reference earlier ops);
* operand arity and payload presence per :class:`~repro.kernel.ops.OpKind`;
* carry discipline — every declared carry is updated exactly once by a
  member op, and every ``CARRY`` read belongs to a declared carry;
* stream discipline — every stream op names a declared formal stream
  whose :class:`~repro.core.descriptors.StreamKind` permits that op,
  and indexed issue/data ops pair up one-to-one per stream;
* liveness — ops whose values can never reach a stream write, a carry
  update, or an address issue are flagged as dead code.

``verify_kernel(kernel, raise_on_error=True)`` wraps the pass for
callers that want a :class:`~repro.errors.KernelVerifyError` instead of
a diagnostic list.
"""

from __future__ import annotations

from repro.analyze.diagnostics import error, warning
from repro.core.descriptors import StreamKind
from repro.errors import KernelVerifyError
from repro.kernel.ir import Kernel
from repro.kernel.ops import OpKind

#: Stream kinds each stream-op kind may address.
_ALLOWED_KINDS = {
    OpKind.SEQ_READ: (StreamKind.SEQUENTIAL_READ,),
    OpKind.SEQ_WRITE: (StreamKind.SEQUENTIAL_WRITE,),
    OpKind.IDX_ISSUE: (
        StreamKind.INLANE_INDEXED_READ,
        StreamKind.INLANE_INDEXED_READWRITE,
        StreamKind.CROSSLANE_INDEXED_READ,
    ),
    OpKind.IDX_DATA: (
        StreamKind.INLANE_INDEXED_READ,
        StreamKind.INLANE_INDEXED_READWRITE,
        StreamKind.CROSSLANE_INDEXED_READ,
    ),
    OpKind.IDX_WRITE: (
        StreamKind.INLANE_INDEXED_WRITE,
        StreamKind.INLANE_INDEXED_READWRITE,
    ),
}

#: Exact or (min, max) operand counts per op kind.
_ARITY = {
    OpKind.CONST: (0, 0),
    OpKind.LANEID: (0, 0),
    OpKind.CARRY: (0, 0),
    OpKind.SEQ_READ: (0, 0),
    OpKind.SEQ_WRITE: (1, 1),
    OpKind.IDX_ISSUE: (1, 2),  # index [, predicate]
    OpKind.IDX_DATA: (1, 1),  # the issue op
    OpKind.IDX_WRITE: (2, 3),  # index, value [, predicate]
    OpKind.COMM: (2, 2),  # value, source lane
}

#: Kinds whose ops never have effects beyond their value.
_VALUE_ONLY = (OpKind.CONST, OpKind.LANEID, OpKind.COMM)

#: Kinds whose purity depends on the payload (see :func:`_is_pure`).
_FUNCTIONAL = (OpKind.ARITH, OpKind.LOGIC, OpKind.MUL, OpKind.DIV)


def _is_pure(op) -> bool:
    """Whether discarding ``op``'s value discards the whole op.

    Functional ops built by the :class:`~repro.kernel.builder.
    KernelBuilder` helpers carry an ``algebra`` tag and are known pure.
    A raw callable payload is opaque — apps legitimately pass
    side-effecting closures (e.g. host-side accumulators) — so untagged
    functional ops are conservatively treated as effects, never dead.
    """
    if op.kind in _VALUE_ONLY:
        return True
    return op.kind in _FUNCTIONAL and op.algebra is not None


def verify_kernel(kernel: Kernel, raise_on_error: bool = False) -> list:
    """Run every structural check; returns the diagnostic list.

    With ``raise_on_error`` a :class:`~repro.errors.KernelVerifyError`
    carrying the diagnostics is raised if any error-level finding exists.
    """
    diagnostics = []
    diagnostics.extend(_check_ssa(kernel))
    diagnostics.extend(_check_arity(kernel))
    diagnostics.extend(_check_carries(kernel))
    diagnostics.extend(_check_streams(kernel))
    diagnostics.extend(_check_liveness(kernel))
    if raise_on_error:
        errors = [d for d in diagnostics if d.severity.rank >= 2]
        if errors:
            raise KernelVerifyError(
                f"kernel {kernel.name!r} failed verification "
                f"({len(errors)} error(s)):\n"
                + "\n".join(f"  {d.describe()}" for d in errors),
                diagnostics=diagnostics,
            )
    return diagnostics


# ----------------------------------------------------------------------
def _check_ssa(kernel: Kernel):
    """Membership and define-before-use (acyclicity) of operand edges."""
    ids = {op.op_id for op in kernel.ops}
    seen = set()
    for op in kernel.ops:
        for operand in op.operands:
            if operand.op_id not in ids:
                yield error(
                    "operand-not-member",
                    f"{op.name} uses {operand.name}, which is not part of "
                    "this kernel",
                    kernel=kernel.name, op=op.name,
                )
            elif operand.op_id not in seen and operand.kind is not OpKind.CARRY:
                yield error(
                    "use-before-def",
                    f"{op.name} uses {operand.name} before its definition "
                    "(the non-carry graph must be acyclic)",
                    kernel=kernel.name, op=op.name,
                )
        seen.add(op.op_id)


def _check_arity(kernel: Kernel):
    """Operand counts and functional-payload presence."""
    for op in kernel.ops:
        bounds = _ARITY.get(op.kind)
        if bounds is not None:
            low, high = bounds
            if not low <= len(op.operands) <= high:
                expected = (
                    str(low) if low == high else f"{low}..{high}"
                )
                yield error(
                    "operand-arity",
                    f"{op.name} ({op.kind.value}) has {len(op.operands)} "
                    f"operand(s), expected {expected}",
                    kernel=kernel.name, op=op.name,
                )
        if op.kind in (OpKind.ARITH, OpKind.LOGIC, OpKind.MUL, OpKind.DIV):
            if not callable(op.payload):
                yield error(
                    "missing-payload",
                    f"{op.name} ({op.kind.value}) has no functional payload",
                    kernel=kernel.name, op=op.name,
                )
            if not op.operands:
                yield error(
                    "operand-arity",
                    f"{op.name} ({op.kind.value}) has no operands",
                    kernel=kernel.name, op=op.name,
                )
        if op.kind is OpKind.CONST and op.value is None:
            yield warning(
                "const-without-value",
                f"{op.name} is a constant with value None",
                kernel=kernel.name, op=op.name,
            )


def _check_carries(kernel: Kernel):
    """Every carry updated exactly once by a member op; reads declared."""
    ids = {op.op_id for op in kernel.ops}
    declared = set(map(id, kernel.carries))
    for carry in kernel.carries:
        if carry.update_op is None:
            yield error(
                "carry-never-updated",
                f"carry {carry.name} is declared but never updated "
                "(its next-iteration value is undefined)",
                kernel=kernel.name, op=f"carry_{carry.name}",
            )
        elif carry.update_op.op_id not in ids:
            yield error(
                "carry-update-not-member",
                f"carry {carry.name} is updated by "
                f"{carry.update_op.name}, which is not part of this kernel",
                kernel=kernel.name, op=f"carry_{carry.name}",
            )
        if carry.read_op is not None and carry.read_op.op_id not in ids:
            yield error(
                "carry-read-not-member",
                f"carry {carry.name}'s read op is not part of this kernel",
                kernel=kernel.name, op=f"carry_{carry.name}",
            )
    for op in kernel.ops:
        if op.kind is OpKind.CARRY:
            if op.carry is None or id(op.carry) not in declared:
                yield error(
                    "carry-not-declared",
                    f"{op.name} reads a carry that is not declared on this "
                    "kernel",
                    kernel=kernel.name, op=op.name,
                )


def _check_streams(kernel: Kernel):
    """Stream-op / stream-kind compatibility and issue/data pairing."""
    registered = {id(s): name for name, s in kernel.streams.items()}
    used = set()
    issues = {}
    datas = {}
    for op in kernel.ops:
        if op.kind not in _ALLOWED_KINDS:
            continue
        stream = op.stream
        if stream is None:
            yield error(
                "stream-missing",
                f"{op.name} ({op.kind.value}) names no stream",
                kernel=kernel.name, op=op.name,
            )
            continue
        if id(stream) not in registered:
            yield error(
                "stream-not-declared",
                f"{op.name} accesses stream {stream.name!r}, which is not "
                "declared on this kernel",
                kernel=kernel.name, op=op.name, stream=stream.name,
            )
            continue
        used.add(id(stream))
        if stream.kind not in _ALLOWED_KINDS[op.kind]:
            yield error(
                "stream-kind-mismatch",
                f"{op.name} ({op.kind.value}) cannot access "
                f"{stream.kind.value} stream {stream.name!r}",
                kernel=kernel.name, op=op.name, stream=stream.name,
            )
        if op.kind is OpKind.IDX_ISSUE:
            issues.setdefault(stream.name, []).append(op)
        elif op.kind is OpKind.IDX_DATA:
            datas.setdefault(stream.name, []).append(op)
            issue = op.operands[0] if op.operands else None
            if issue is not None and (
                issue.kind is not OpKind.IDX_ISSUE
                or issue.stream is not stream
            ):
                yield error(
                    "idx-data-unpaired",
                    f"{op.name} must consume an address issued on the same "
                    f"stream, not {issue.name}",
                    kernel=kernel.name, op=op.name, stream=stream.name,
                )
    for name in sorted(set(issues) | set(datas)):
        stream = kernel.streams.get(name)
        if stream is not None and stream.kind is StreamKind.INLANE_INDEXED_READWRITE:
            # Read-write streams legitimately mix reads (paired) with
            # writes; only require data <= issue there.
            continue
        n_issue = len(issues.get(name, ()))
        n_data = len(datas.get(name, ()))
        if n_issue != n_data:
            yield error(
                "idx-issue-data-mismatch",
                f"stream {name!r} has {n_issue} address issue(s) but "
                f"{n_data} data pop(s) per iteration — the reorder buffer "
                "would drift every iteration",
                kernel=kernel.name, stream=name,
            )
    for name, stream in kernel.streams.items():
        if id(stream) not in used and not any(
            op.stream is stream for op in kernel.ops
        ):
            yield warning(
                "stream-unused",
                f"declared stream {name!r} is never accessed",
                kernel=kernel.name, stream=name,
            )


def _check_liveness(kernel: Kernel):
    """Flag pure ops whose values cannot reach any effect.

    Effects are stream writes, address issues/pops (they move machine
    state) and carry updates. ``SEQ_READ`` is excluded from the dead set
    — an unused read still pops its stream — but unused reads are
    suspicious enough to flag separately.
    """
    live = set()
    roots = []
    update_ids = set()
    for carry in kernel.carries:
        if carry.update_op is not None:
            roots.append(carry.update_op)
            update_ids.add(carry.update_op.op_id)
    for op in kernel.ops:
        if op.kind in (OpKind.SEQ_WRITE, OpKind.IDX_WRITE, OpKind.IDX_ISSUE,
                       OpKind.IDX_DATA):
            roots.append(op)
        elif op.kind in _FUNCTIONAL and op.algebra is None:
            # Opaque payload: may be side-effecting (host accumulators
            # and the like), so it keeps itself and its inputs alive.
            roots.append(op)
    stack = list(roots)
    while stack:
        op = stack.pop()
        if op.op_id in live:
            continue
        live.add(op.op_id)
        stack.extend(op.operands)
    for op in kernel.ops:
        if op.op_id in live or op.op_id in update_ids:
            continue
        if _is_pure(op):
            yield warning(
                "dead-op",
                f"{op.name} ({op.kind.value}) cannot reach any stream "
                "write, address issue, or carry update",
                kernel=kernel.name, op=op.name,
            )
        elif op.kind is OpKind.SEQ_READ:
            yield warning(
                "unused-read",
                f"{op.name} pops {op.stream.name!r} but its value is "
                "never used",
                kernel=kernel.name, op=op.name,
                stream=op.stream.name if op.stream else "",
            )
