"""Abstract domains for the index analysis: intervals and affine forms.

The stream-program analyzer wants to prove, per indexed SRF access,
that every record index a kernel can compute lies inside the bound
stream. Two abstract values cooperate:

* :class:`Interval` — a sound over-approximation ``[lo, hi]`` (``None``
  meaning unbounded). An interval containing out-of-bounds points
  proves nothing by itself — the hull may be loose — so it can only
  power "proven in bounds" and "cannot prove" verdicts.
* :class:`AffineForm` — an *exact* value ``c0 + c_iter*iter +
  c_lane*lane`` over the iteration counter and the lane id. Exactness
  is what upgrades a violation to "provably out of bounds": affine maps
  attain their extremes at corners of the (iter, lane) box, and on the
  lock-stepped machine every corner is actually executed.

Soundness rests on the ``Op.algebra`` tags: only the
:class:`~repro.kernel.builder.KernelBuilder` helpers whose payload
semantics are known set them, so an untagged payload (a raw lambda)
evaluates to TOP instead of a guess. Loop-carried counters enter
through induction detection: a carry whose update is ``carry + k``
with constant ``k`` is exactly ``init + k*iter``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.ir import Kernel
from repro.kernel.ops import OpKind

_INF = float("inf")


def _lo(value) -> float:
    return -_INF if value is None else value


def _hi(value) -> float:
    return _INF if value is None else value


def _bound(value) -> "int | float | None":
    return None if value in (_INF, -_INF) else value


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` endpoints mean unbounded."""

    lo: "int | float | None"
    hi: "int | float | None"

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def const(value) -> "Interval":
        return Interval(value, value)

    @property
    def is_bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    def within(self, lo, hi) -> bool:
        """True when every point of self lies in ``[lo, hi]``."""
        return (self.lo is not None and self.hi is not None
                and self.lo >= lo and self.hi <= hi)

    def join(self, other: "Interval") -> "Interval":
        return Interval(
            _bound(min(_lo(self.lo), _lo(other.lo))),
            _bound(max(_hi(self.hi), _hi(other.hi))),
        )

    def add(self, other: "Interval") -> "Interval":
        return Interval(
            _bound(_lo(self.lo) + _lo(other.lo)),
            _bound(_hi(self.hi) + _hi(other.hi)),
        )

    def sub(self, other: "Interval") -> "Interval":
        return Interval(
            _bound(_lo(self.lo) - _hi(other.hi)),
            _bound(_hi(self.hi) - _lo(other.lo)),
        )

    def mul(self, other: "Interval") -> "Interval":
        candidates = []
        for a in (_lo(self.lo), _hi(self.hi)):
            for b in (_lo(other.lo), _hi(other.hi)):
                if 0 in (a, b):
                    candidates.append(0)  # avoid inf * 0
                else:
                    candidates.append(a * b)
        return Interval(_bound(min(candidates)), _bound(max(candidates)))

    def mod(self, divisor: "Interval") -> "Interval":
        """Python ``%`` with a known positive constant divisor."""
        if divisor.lo == divisor.hi and divisor.lo and divisor.lo > 0:
            b = divisor.lo
            if self.within(0, b - 1):
                return self  # mod is the identity here
            return Interval(0, b - 1)
        return Interval.top()

    def min_(self, other: "Interval") -> "Interval":
        """Pointwise minimum: bounded above by EITHER operand's hi.

        This is the half of ``clamp`` that tames data-dependent
        indices — ``min(TOP, [c, c])`` is ``[-inf, c]``.
        """
        return Interval(
            _bound(min(_lo(self.lo), _lo(other.lo))),
            _bound(min(_hi(self.hi), _hi(other.hi))),
        )

    def max_(self, other: "Interval") -> "Interval":
        """Pointwise maximum: bounded below by EITHER operand's lo."""
        return Interval(
            _bound(max(_lo(self.lo), _lo(other.lo))),
            _bound(max(_hi(self.hi), _hi(other.hi))),
        )

    def xor(self, other: "Interval") -> "Interval":
        """XOR of non-negative values below 2**k stays below 2**k."""
        if (self.is_bounded and other.is_bounded
                and _lo(self.lo) >= 0 and _lo(other.lo) >= 0):
            limit = 1
            while limit <= max(self.hi, other.hi):
                limit <<= 1
            return Interval(0, limit - 1)
        return Interval.top()

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


@dataclass(frozen=True)
class AffineForm:
    """Exactly ``const + c_iter * iter + c_lane * lane``."""

    const: float
    c_iter: float = 0
    c_lane: float = 0

    def add(self, other: "AffineForm") -> "AffineForm":
        return AffineForm(self.const + other.const,
                          self.c_iter + other.c_iter,
                          self.c_lane + other.c_lane)

    def sub(self, other: "AffineForm") -> "AffineForm":
        return AffineForm(self.const - other.const,
                          self.c_iter - other.c_iter,
                          self.c_lane - other.c_lane)

    def scale(self, factor) -> "AffineForm":
        return AffineForm(self.const * factor, self.c_iter * factor,
                          self.c_lane * factor)

    @property
    def is_const(self) -> bool:
        return self.c_iter == 0 and self.c_lane == 0

    def to_interval(self, iterations: int, lanes: int) -> Interval:
        """Tight hull over ``iter in [0, iterations)``, ``lane in
        [0, lanes)`` — attained at corners, hence exact."""
        lo = hi = self.const
        for coeff, extent in ((self.c_iter, iterations),
                              (self.c_lane, lanes)):
            span = coeff * max(0, extent - 1)
            lo += min(0, span)
            hi += max(0, span)
        return Interval(lo, hi)

    def describe(self) -> str:
        parts = [str(self.const)]
        if self.c_iter:
            parts.append(f"{self.c_iter}*iter")
        if self.c_lane:
            parts.append(f"{self.c_lane}*lane")
        return " + ".join(parts)


@dataclass(frozen=True)
class IndexValue:
    """Abstract value of one op: a hull, plus an affine form when exact."""

    interval: Interval
    affine: "AffineForm | None" = None

    @property
    def is_exact(self) -> bool:
        return self.affine is not None

    def describe(self) -> str:
        if self.affine is not None:
            return self.affine.describe()
        return self.interval.describe()


_TOP = IndexValue(Interval.top())


class IndexEvaluator:
    """Abstract interpretation of one kernel invocation's index graph.

    Evaluates every op of ``kernel`` over the domain above for a trip
    count of ``iterations`` on ``lanes`` lanes; results are queried per
    op via :meth:`value_of`. Data-dependent sources (stream reads,
    inter-cluster receives, untagged payloads) evaluate to TOP.
    """

    def __init__(self, kernel: Kernel, iterations: int, lanes: int):
        self.kernel = kernel
        self.iterations = max(0, iterations)
        self.lanes = max(1, lanes)
        self._carry_values = self._solve_carries()
        self._values = {}
        for op in kernel.ops:
            self._values[op.op_id] = self._eval(op)

    def value_of(self, op) -> IndexValue:
        return self._values.get(op.op_id, _TOP)

    # ------------------------------------------------------------------
    def _affine(self, value: AffineForm) -> IndexValue:
        return IndexValue(
            value.to_interval(self.iterations, self.lanes), value
        )

    def _solve_carries(self) -> dict:
        """Map carry object id -> IndexValue via induction detection.

        A carry updated as ``carry + k`` (k constant) is the affine
        counter ``init + k*iter``. A carry updated to a constant ``c``
        holds ``init`` on iteration 0 and ``c`` after — the hull of
        both. Anything else is TOP.
        """
        resolved = {}
        for carry in self.kernel.carries:
            resolved[id(carry)] = _TOP
            if not isinstance(carry.init_value, (int, float)):
                continue
            update = carry.update_op
            if update is None:
                continue
            delta = self._induction_delta(update, carry)
            if delta is not None:
                resolved[id(carry)] = self._affine(
                    AffineForm(carry.init_value, c_iter=delta)
                )
                continue
            const = self._constant_of(update)
            if const is not None:
                hull = Interval.const(carry.init_value).join(
                    Interval.const(const)
                )
                affine = (
                    AffineForm(const) if const == carry.init_value else None
                )
                resolved[id(carry)] = IndexValue(hull, affine)
        return resolved

    def _induction_delta(self, update, carry):
        """``k`` when ``update`` computes ``carry + k``; else None."""
        if update.kind is OpKind.CARRY and update.carry is carry:
            return 0
        if update.algebra not in ("add", "sub") or len(update.operands) != 2:
            return None
        a, b = update.operands
        if a.kind is OpKind.CARRY and a.carry is carry:
            step = self._constant_of(b)
            if step is None:
                return None
            return step if update.algebra == "add" else -step
        if (update.algebra == "add" and b.kind is OpKind.CARRY
                and b.carry is carry):
            return self._constant_of(a)
        return None

    @staticmethod
    def _constant_of(op):
        if op.kind is OpKind.CONST and isinstance(op.value, (int, float)):
            return op.value
        return None

    # ------------------------------------------------------------------
    def _eval(self, op) -> IndexValue:
        kind = op.kind
        if kind is OpKind.CONST:
            if isinstance(op.value, (int, float)):
                return self._affine(AffineForm(op.value))
            return _TOP
        if kind is OpKind.LANEID:
            return self._affine(AffineForm(0, c_lane=1))
        if kind is OpKind.CARRY:
            if op.carry is None:
                return _TOP
            return self._carry_values.get(id(op.carry), _TOP)
        if kind is OpKind.IDX_DATA and op.operands:
            # Data pops forward nothing about the value; TOP. (The
            # *address* interval lives on the issue op.)
            return _TOP
        if kind in (OpKind.ARITH, OpKind.LOGIC, OpKind.MUL):
            return self._eval_algebra(op)
        return _TOP  # DIV, SEQ_READ, COMM, stream ops: data-dependent

    def _eval_algebra(self, op) -> IndexValue:
        operands = [self.value_of(o) for o in op.operands]
        algebra = op.algebra
        if algebra in ("add", "sub") and len(operands) == 2:
            a, b = operands
            affine = None
            if a.affine is not None and b.affine is not None:
                affine = (a.affine.add(b.affine) if algebra == "add"
                          else a.affine.sub(b.affine))
            interval = (a.interval.add(b.interval) if algebra == "add"
                        else a.interval.sub(b.interval))
            return IndexValue(interval, affine)
        if algebra == "mul" and len(operands) == 2:
            a, b = operands
            affine = None
            if a.affine is not None and b.affine is not None:
                if b.affine.is_const:
                    affine = a.affine.scale(b.affine.const)
                elif a.affine.is_const:
                    affine = b.affine.scale(a.affine.const)
            return IndexValue(a.interval.mul(b.interval), affine)
        if algebra == "mod" and len(operands) == 2:
            a, b = operands
            interval = a.interval.mod(b.interval)
            # Identity mod keeps exactness (hull already within range).
            affine = a.affine if interval is a.interval else None
            return IndexValue(interval, affine)
        if algebra in ("min", "max") and len(operands) == 2:
            a, b = operands
            interval = (a.interval.min_(b.interval) if algebra == "min"
                        else a.interval.max_(b.interval))
            # min/max of a value with itself is exact; otherwise the
            # extremum generally isn't affine in (iter, lane).
            affine = a.affine if (a.affine is not None
                                  and a.affine == b.affine) else None
            return IndexValue(interval, affine)
        if algebra == "xor" and len(operands) == 2:
            a, b = operands
            return IndexValue(a.interval.xor(b.interval))
        if algebra == "select" and len(operands) == 3:
            _cond, if_true, if_false = operands
            affine = None
            if if_true.affine is not None and if_true.affine == if_false.affine:
                affine = if_true.affine
            return IndexValue(
                if_true.interval.join(if_false.interval), affine
            )
        return _TOP
