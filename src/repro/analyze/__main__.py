"""``python -m repro.analyze`` — static analysis over apps × presets.

Builds every shipped benchmark's steady-state program on every machine
preset and runs the kernel verifier plus the program analyzer over it.
Exit status follows the shared CLI convention in :mod:`repro.exitcodes`
(0 clean / 1 error-level findings / 2 usage error) — the same contract
as ``python -m repro.selfcheck`` — which makes this invocation directly
usable as a CI gate (and it is one; see .github/workflows/ci.yml).

Usage::

    python -m repro.analyze                  # all apps, all presets
    python -m repro.analyze --app Sort       # one app, all presets
    python -m repro.analyze --config ISRF4   # all apps, one preset
    python -m repro.analyze -v               # show every diagnostic
"""

from __future__ import annotations

import argparse
import sys

from repro.analyze.diagnostics import Severity
from repro.analyze.driver import APP_NAMES, DEFAULT_REPS, check_app
from repro.config.presets import all_configs
from repro.exitcodes import EXIT_CLEAN, EXIT_FINDINGS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static analysis of every benchmark stream program.",
    )
    parser.add_argument(
        "--app", action="append", choices=sorted(APP_NAMES), default=None,
        help="benchmark to analyze (repeatable; default: all)",
    )
    parser.add_argument(
        "--config", action="append", default=None,
        help="machine preset to analyze on (repeatable; default: all)",
    )
    parser.add_argument(
        "--reps", type=int, default=DEFAULT_REPS,
        help=f"steady-state strips to chain (default {DEFAULT_REPS})",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="print every diagnostic, including notes",
    )
    args = parser.parse_args(argv)

    configs = all_configs()
    if args.config:
        unknown = [c for c in args.config if c not in configs]
        if unknown:
            parser.error(
                f"unknown config(s) {', '.join(unknown)} "
                f"(known: {', '.join(configs)})"
            )
        configs = {name: configs[name] for name in args.config}
    apps = tuple(args.app) if args.app else APP_NAMES

    failures = 0
    for config_name, config in configs.items():
        for app in apps:
            report = check_app(app, config, reps=args.reps)
            errors = report.errors
            warnings = report.warnings
            notes = report.by_severity(Severity.INFO)
            status = "FAIL" if errors else "ok"
            print(
                f"[{status:4}] {app:10} on {config_name:6} — "
                f"{len(errors)} error(s), {len(warnings)} warning(s), "
                f"{len(notes)} note(s)"
            )
            shown = report.diagnostics if args.verbose else (
                errors + warnings
            )
            for diagnostic in shown:
                print(f"        {diagnostic.describe()}")
            if errors:
                failures += 1
    if failures:
        print(f"{failures} app/preset combination(s) FAILED analysis")
        return EXIT_FINDINGS
    print("static analysis clean: no error-level findings")
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
