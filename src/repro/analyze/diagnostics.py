"""Diagnostic model shared by every static-analysis pass.

A :class:`Diagnostic` is one finding with a stable machine-readable
``code`` (the mutation-corpus tests key on codes, not message text), a
severity, and provenance naming the kernel/op/stream/task it anchors to.
Passes return lists of diagnostics; :class:`AnalysisReport` aggregates
them per subject with severity roll-ups and an ``ok`` verdict that
callers (the ``check`` experiment, the CLI, CI) gate on.

Severity semantics:

* ``ERROR`` — the program/kernel is provably wrong (would crash or
  corrupt data at run time). Zero errors over all shipped apps × presets
  is an enforced invariant of the analyzer (no false positives).
* ``WARNING`` — suspicious but not provably wrong (e.g. unordered
  overlapping kernel accesses that the single microcontroller happens to
  serialise).
* ``INFO`` — facts the analysis could not decide (cannot-prove bounds)
  or advisory estimates (bank pressure).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad one finding is."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    severity: Severity
    #: Stable machine-readable code, e.g. ``"index-out-of-bounds"``.
    code: str
    message: str
    #: Provenance (any may be empty when not applicable).
    kernel: str = ""
    op: str = ""
    stream: str = ""
    task: str = ""

    def describe(self) -> str:
        where = ":".join(
            part for part in (self.kernel or self.task, self.op, self.stream)
            if part
        )
        prefix = f"{where}: " if where else ""
        return f"[{self.severity.value}] {self.code}: {prefix}{self.message}"


def error(code: str, message: str, **provenance: str) -> Diagnostic:
    return Diagnostic(Severity.ERROR, code, message, **provenance)


def warning(code: str, message: str, **provenance: str) -> Diagnostic:
    return Diagnostic(Severity.WARNING, code, message, **provenance)


def info(code: str, message: str, **provenance: str) -> Diagnostic:
    return Diagnostic(Severity.INFO, code, message, **provenance)


@dataclass
class AnalysisReport:
    """All diagnostics for one analyzed subject (kernel or program)."""

    subject: str
    diagnostics: list = field(default_factory=list)

    def extend(self, diagnostics) -> None:
        self.diagnostics.extend(diagnostics)

    def by_severity(self, severity: Severity) -> list:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-level diagnostic was found."""
        return not self.errors

    def codes(self) -> set:
        return {d.code for d in self.diagnostics}

    def describe(self) -> str:
        lines = [
            f"analysis of {self.subject}: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.by_severity(Severity.INFO))} note(s)"
        ]
        ordered = sorted(
            self.diagnostics, key=lambda d: (-d.severity.rank, d.code)
        )
        lines.extend(f"  {d.describe()}" for d in ordered)
        return "\n".join(lines)
