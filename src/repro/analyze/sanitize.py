"""Cycle-level machine-state sanitizer (``MachineConfig.sanitize``).

The static passes prove what they can before a single cycle runs; this
module guards the rest *while* cycles run. With ``sanitize=True`` the
processor attaches a :class:`MachineSanitizer` to its SRF and calls
:meth:`MachineSanitizer.check` once per simulated cycle, after the SRF
tick. Every check is a read-only probe of existing state — the
sanitizer allocates nothing on the machine, mutates nothing, and a
machine built without it carries no sanitizer state at all, so stats
fingerprints are bit-identical either way (the same inertness contract
as the trace and fault layers).

Checked invariants, mirroring the machine's conservation laws:

* **allocator** — allocations are disjoint, ordered, block-aligned and
  inside the SRF;
* **sequential ports** — block progress within bounds, in-flight word
  credit non-negative, per-lane stream-buffer occupancy uniform (SIMD
  lockstep) and within capacity, and reads never over-commit buffer
  space (occupancy + in-flight ≤ capacity);
* **indexed streams** — the O(1) ``pending_words`` counter equals the
  words actually queued across lane FIFOs, write credits are
  non-negative, each address FIFO's head cache matches a recomputation,
  and reorder buffers conserve tickets (slots == issued − retired,
  unfilled slots == live ticket map);
* **crossbars** — address-network port budgets within configured
  bounds, return-network queues plus reservations within queue depth;
* **completion pipeline** — no in-flight completion is overdue after
  the cycle's completions drained.

On the first violated invariant a :class:`~repro.errors.SanitizerError`
carrying a :class:`SanitizerReport` (every violation found that cycle,
not just the first) aborts the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.address_fifo import _STALE
from repro.errors import SanitizerError


@dataclass
class SanitizerReport:
    """Forensics attached to a :class:`~repro.errors.SanitizerError`."""

    cycle: int
    violations: list = field(default_factory=list)  # of str

    def describe(self) -> str:
        lines = [
            f"sanitizer: {len(self.violations)} invariant violation(s) "
            f"at cycle {self.cycle}:"
        ]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


class MachineSanitizer:
    """Per-cycle invariant checker over one machine's SRF complex."""

    def __init__(self, srf):
        self.srf = srf
        self.checks_run = 0

    # ------------------------------------------------------------------
    def check(self, cycle: int) -> None:
        """Assert every invariant; raises SanitizerError on violation."""
        self.checks_run += 1
        violations = list(self._scan(cycle))
        if violations:
            report = SanitizerReport(cycle=cycle, violations=violations)
            raise SanitizerError(
                "machine invariant violated", report=report
            )

    def _scan(self, cycle: int):
        yield from self._check_allocator()
        yield from self._check_sequential_ports()
        yield from self._check_indexed_streams()
        yield from self._check_networks()
        yield from self._check_pipeline(cycle)

    # ------------------------------------------------------------------
    def _check_allocator(self):
        geometry = self.srf.geometry
        block = geometry.block_words
        cursor = 0
        for region in self.srf.allocator._regions:
            if region.base % block or region.words % block:
                yield (
                    f"allocation '{region.name}' [{region.base}, "
                    f"{region.base + region.words}) is not block-aligned"
                )
            if region.base < cursor:
                yield (
                    f"allocation '{region.name}' at {region.base} overlaps "
                    f"or reorders against the previous region end {cursor}"
                )
            cursor = max(cursor, region.base + region.words)
        if cursor > geometry.total_words:
            yield (
                f"allocations extend to word {cursor} beyond the "
                f"{geometry.total_words}-word SRF"
            )

    def _check_sequential_ports(self):
        for port in self.srf._seq_ports:
            fifo = getattr(port, "fifo", None)
            if fifo is None:
                continue  # duck-typed memory-system port; no buffer here
            name = port.descriptor.name
            if not 0 <= port._blocks_done <= port.total_blocks:
                yield (
                    f"sequential port '{name}': {port._blocks_done} blocks "
                    f"done outside [0, {port.total_blocks}]"
                )
            if port._inflight_words < 0:
                yield (
                    f"sequential port '{name}': negative in-flight word "
                    f"credit ({port._inflight_words})"
                )
            depths = {len(lane) for lane in fifo._fifos}
            if len(depths) > 1:
                yield (
                    f"sequential port '{name}': stream-buffer occupancy "
                    f"not uniform across lanes ({sorted(depths)}) — SIMD "
                    "lockstep broken"
                )
            occupancy = fifo.occupancy
            if occupancy > fifo.capacity:
                yield (
                    f"sequential port '{name}': buffer occupancy "
                    f"{occupancy} exceeds capacity {fifo.capacity}"
                )
            if (port.direction.value == "read"
                    and occupancy + port._inflight_words > fifo.capacity):
                yield (
                    f"sequential port '{name}': occupancy {occupancy} + "
                    f"in-flight {port._inflight_words} over-commits the "
                    f"{fifo.capacity}-word buffer"
                )

    def _check_indexed_streams(self):
        for stream in self.srf._indexed_list:
            name = stream.descriptor.name
            queued = 0
            for fifo in stream.fifos:
                entries = fifo._entries
                words = sum(len(entry.words) for entry in entries)
                words -= fifo._head_word
                queued += words
                if fifo.occupancy > fifo.capacity:
                    yield (
                        f"indexed stream '{name}' lane {fifo.lane}: "
                        f"{fifo.occupancy} FIFO entries exceed capacity "
                        f"{fifo.capacity}"
                    )
                if entries:
                    if not 0 <= fifo._head_word < len(entries[0].words):
                        yield (
                            f"indexed stream '{name}' lane {fifo.lane}: "
                            f"head-word counter {fifo._head_word} outside "
                            f"the {len(entries[0].words)}-word head record"
                        )
                elif fifo._head_word:
                    yield (
                        f"indexed stream '{name}' lane {fifo.lane}: "
                        f"head-word counter {fifo._head_word} with an "
                        "empty FIFO"
                    )
                yield from self._check_head_cache(name, fifo)
            if queued != stream.pending_words:
                yield (
                    f"indexed stream '{name}': pending_words counter "
                    f"{stream.pending_words} != {queued} words actually "
                    "queued across lane FIFOs"
                )
            if stream.outstanding_writes < 0:
                yield (
                    f"indexed stream '{name}': negative outstanding-write "
                    f"credit ({stream.outstanding_writes})"
                )
            if stream.robs is not None:
                for lane, rob in enumerate(stream.robs):
                    yield from self._check_rob(name, lane, rob)

    @staticmethod
    def _check_head_cache(name, fifo):
        cached = fifo._head_cache
        if cached is _STALE:
            return
        fifo._head_cache = _STALE
        try:
            expected = fifo.peek_word()
        finally:
            fifo._head_cache = cached
        if cached != expected:
            yield (
                f"indexed stream '{name}' lane {fifo.lane}: stale head "
                f"cache ({cached} cached, {expected} actual)"
            )

    @staticmethod
    def _check_rob(name, lane, rob):
        issued = rob._next_ticket - rob._head_ticket
        if len(rob._slots) != issued:
            yield (
                f"indexed stream '{name}' lane {lane}: reorder buffer "
                f"holds {len(rob._slots)} slots but tickets say "
                f"{issued} outstanding"
            )
        if rob.occupancy > rob.capacity:
            yield (
                f"indexed stream '{name}' lane {lane}: reorder buffer "
                f"occupancy {rob.occupancy} exceeds capacity {rob.capacity}"
            )
        unfilled = sum(1 for slot in rob._slots if not slot.valid)
        if unfilled != len(rob._live):
            yield (
                f"indexed stream '{name}' lane {lane}: {unfilled} unfilled "
                f"reorder slots but {len(rob._live)} live tickets"
            )

    def _check_networks(self):
        address = self.srf.address_network
        for lane in range(address.lanes):
            if not 0 <= address._source_budget[lane] <= address.source_bandwidth:
                yield (
                    f"address network: source budget of lane {lane} is "
                    f"{address._source_budget[lane]}, outside "
                    f"[0, {address.source_bandwidth}]"
                )
            if not 0 <= address._bank_budget[lane] <= address.ports_per_bank:
                yield (
                    f"address network: port budget of bank {lane} is "
                    f"{address._bank_budget[lane]}, outside "
                    f"[0, {address.ports_per_bank}]"
                )
        returns = self.srf.return_network
        for bank in range(returns.lanes):
            reserved = returns._reserved[bank]
            if reserved < 0:
                yield (
                    f"return network: negative reservation count "
                    f"({reserved}) at bank {bank}"
                )
            depth = len(returns._queues[bank]) + reserved
            if depth > returns.bank_queue_depth:
                yield (
                    f"return network: bank {bank} holds {depth} words "
                    f"(queued + reserved) against a depth of "
                    f"{returns.bank_queue_depth}"
                )

    def _check_pipeline(self, cycle: int):
        heap = self.srf._in_flight
        if heap and heap[0][0] <= cycle:
            yield (
                f"completion pipeline: access due at cycle {heap[0][0]} "
                f"still in flight after cycle {cycle} drained"
            )
