"""Static analysis & sanitizer for stream programs and kernel IR.

Three coordinated passes (see DESIGN.md, "Static analysis & machine
sanitizer"):

* :func:`verify_kernel` — structural validation of one kernel's
  dataflow graph (SSA discipline, arity, carry and stream usage,
  liveness), every finding a :class:`Diagnostic`;
* :func:`analyze_program` — whole-program checks over a
  :class:`~repro.machine.program.StreamProgram` bound to a machine
  configuration: binding discipline, interval/affine bounds proofs for
  indexed SRF accesses, sequential stream extents, task-graph hazard
  and race detection, and static bank-pressure estimates;
* :class:`MachineSanitizer` — the ``MachineConfig.sanitize`` debug mode
  asserting cycle-level machine invariants while a program runs.

The command line ``python -m repro.analyze`` (and the harness ``check``
experiment) runs the static passes over every shipped benchmark ×
machine preset; zero error-level findings there is an enforced
invariant of the analyzer.
"""

from repro.analyze.diagnostics import (
    AnalysisReport,
    Diagnostic,
    Severity,
    error,
    info,
    warning,
)
from repro.analyze.intervals import (
    AffineForm,
    IndexEvaluator,
    IndexValue,
    Interval,
)
from repro.analyze.program import analyze_program, footprint
from repro.analyze.sanitize import MachineSanitizer, SanitizerReport
from repro.analyze.verifier import verify_kernel

__all__ = [
    "AffineForm",
    "AnalysisReport",
    "Diagnostic",
    "IndexEvaluator",
    "IndexValue",
    "Interval",
    "MachineSanitizer",
    "SanitizerReport",
    "Severity",
    "analyze_program",
    "error",
    "footprint",
    "info",
    "verify_kernel",
    "warning",
]
