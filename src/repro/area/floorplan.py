"""Die-level view of the SRF area overheads (paper §4.6).

The paper translates SRF-relative overheads into whole-die terms using
the Imagine processor statistics of [13]: the 11%–22% SRF overheads
"represent 1.5% to 3% of overall die area", which implies the SRF
occupies roughly an eighth of the die. :class:`DieModel` performs that
translation for any SRF organisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.area.sram import SrfAreaModel
from repro.errors import ConfigurationError

#: Fraction of the die occupied by the (sequential) SRF, from the
#: Imagine VLSI statistics the paper cites ([13]): chosen so that a 22%
#: SRF overhead is ~3% of the die and 11% is ~1.5%.
IMAGINE_SRF_DIE_FRACTION = 0.136


@dataclass
class DieOverhead:
    """One SRF variant's cost at die level."""

    variant: str
    srf_overhead: float
    die_overhead: float


class DieModel:
    """Maps SRF-relative overheads to whole-die overheads."""

    def __init__(self, area_model: "SrfAreaModel | None" = None,
                 srf_die_fraction: float = IMAGINE_SRF_DIE_FRACTION):
        if not 0.0 < srf_die_fraction < 1.0:
            raise ConfigurationError("srf_die_fraction must be in (0, 1)")
        self.area_model = area_model or SrfAreaModel()
        self.srf_die_fraction = srf_die_fraction

    @property
    def die_area_mm2(self) -> float:
        """Implied total die area."""
        return self.area_model.sequential().total_mm2 / self.srf_die_fraction

    def report(self) -> list:
        """Die-level overheads of every indexed variant (paper §4.6)."""
        rows = []
        for variant, srf_overhead in self.area_model.overhead_report().items():
            rows.append(DieOverhead(
                variant=variant,
                srf_overhead=srf_overhead,
                die_overhead=srf_overhead * self.srf_die_fraction,
            ))
        return rows

    def cache_overhead(self, relative_to_srf: float = 1.25) -> DieOverhead:
        """The Cache configuration's cost for comparison.

        The paper (§5): the cache "incurs a 100%-150% area overhead over
        a sequentially accessed SRF"; 125% is the midpoint.
        """
        return DieOverhead(
            variant="Cache",
            srf_overhead=relative_to_srf,
            die_overhead=relative_to_srf * self.srf_die_fraction,
        )
