"""Process-technology constants for the area/energy model.

The paper estimates overheads "using a modified version of the Cacti 3.0
models and custom floorplans" in a 0.13 µm technology (§4.4, §4.6).
This module provides the handful of per-component constants a
CACTI-style structural model needs. Absolute values are approximations
of 0.13 µm-era SRAM design practice; the experiments of Section 4.6
depend on the *relative* composition (which structures each SRF variant
adds), not on the absolute mm².
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """0.13 µm-class technology parameters."""

    name: str = "cmos13"
    #: Feature size in micrometres.
    feature_um: float = 0.13
    #: 6T SRAM cell area in square micrometres (~120 F^2).
    cell_area_um2: float = 2.03
    #: Area of one row-decoder slice (per decoded row), µm².
    decoder_area_per_row_um2: float = 88.0
    #: Predecoder block per sub-array, µm².
    predecoder_area_um2: float = 1800.0
    #: Local wordline driver per row per sub-array, µm².
    wordline_driver_per_row_um2: float = 18.0
    #: Sense amplifier + write driver per bit-column, µm².
    sense_amp_per_column_um2: float = 115.0
    #: One 2:1 column-mux stage per bit column, µm².
    column_mux_stage_per_column_um2: float = 7.0
    #: Wire pitch (metal 3/4 routing) in micrometres.
    wire_pitch_um: float = 0.62
    #: Address width in bits routed to decoders.
    address_bits: int = 12
    #: Crossbar switch-point area per crossing wire pair, µm².
    crossbar_crosspoint_um2: float = 28.0

    # -- word protection (repro.faults parity / SEC-DED) -----------------
    #: Parity generate/check tree per sub-array, µm².
    parity_logic_per_subarray_um2: float = 350.0
    #: SEC-DED (39,32) encoder + syndrome decoder + correction mux per
    #: sub-array, µm².
    ecc_logic_per_subarray_um2: float = 2600.0
    #: Extra access energy per check bit, as a fraction of the unprotected
    #: access (encode/check logic switching; the bit-storage overhead is
    #: modelled separately as check_bits/32).
    protection_logic_energy_per_check_bit: float = 0.02

    # -- energy (used by repro.area.energy) -----------------------------
    #: Energy per word of a sequential block SRF access, nanojoules.
    seq_access_energy_per_word_nj: float = 0.025
    #: Ratio of indexed single-word access energy to sequential per-word
    #: energy ("approximately 4x ... due to increased column
    #: multiplexing", §4.4).
    indexed_energy_ratio: float = 4.0
    #: Energy of one off-chip DRAM word access, nanojoules (~5 nJ, §4.4).
    dram_access_energy_nj: float = 5.0
    #: Energy of one on-chip cache word access, nanojoules.
    cache_access_energy_nj: float = 0.15


CMOS13 = Technology()
