"""Area and energy models for the SRF organisations (paper §4.4, §4.6)."""

from repro.area.energy import EnergyModel, EnergyReport
from repro.area.floorplan import (
    IMAGINE_SRF_DIE_FRACTION,
    DieModel,
    DieOverhead,
)
from repro.area.sram import AreaBreakdown, SrfAreaModel, subarray_geometry
from repro.area.technology import CMOS13, Technology

__all__ = [
    "AreaBreakdown",
    "CMOS13",
    "DieModel",
    "DieOverhead",
    "EnergyModel",
    "EnergyReport",
    "IMAGINE_SRF_DIE_FRACTION",
    "SrfAreaModel",
    "Technology",
    "subarray_geometry",
]
