"""CACTI-3.0-style structural SRAM area model.

Models an SRF built the way Figures 6 and 7 of the paper draw it: N
banks, each of ``s`` sub-arrays with a hierarchical bitline structure.
Area is composed from named structures (cells, decoders, predecoders,
wordline drivers, sense amplifiers, column muxes, address wiring), so
the *difference* between SRF variants is exactly the set of structures
each organisation adds:

========== ==============================================================
Variant    Extra structures over the sequential-only SRF
========== ==============================================================
ISRF1      A dedicated row decoder per bank (the shared one no longer
           suffices when every lane may access a different row) plus
           per-bank address distribution.
ISRF4      ISRF1 plus per-sub-array predecode/row-decode and an 8:1
           column multiplexer per sub-array with interleaved global
           bitlines (Figure 7).
Cross-lane ISRF4 plus the dedicated inter-lane address network and a
           network port per bank for data returns (Figure 8c).
========== ==============================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.area.technology import CMOS13, Technology
from repro.config.machine import WORD_BYTES, MachineConfig
from repro.errors import ConfigurationError


def subarray_geometry(bits: int) -> tuple:
    """(rows, columns) of a roughly square sub-array with 2^k columns."""
    if bits <= 0:
        raise ConfigurationError("sub-array must hold at least one bit")
    columns = 1 << max(0, round(math.log2(math.sqrt(bits))))
    columns = min(columns, bits)
    rows = max(1, bits // columns)
    return rows, columns


@dataclass
class AreaBreakdown:
    """Area of one SRF organisation by structure, in square micrometres."""

    components: dict

    @property
    def total_um2(self) -> float:
        return sum(self.components.values())

    @property
    def total_mm2(self) -> float:
        return self.total_um2 / 1e6

    def overhead_over(self, baseline: "AreaBreakdown") -> float:
        """Fractional area overhead relative to ``baseline``."""
        return self.total_um2 / baseline.total_um2 - 1.0


class SrfAreaModel:
    """Computes :class:`AreaBreakdown` objects for the four SRF variants."""

    def __init__(self, config: "MachineConfig | None" = None,
                 technology: Technology = CMOS13):
        from repro.config.presets import base_config

        self.config = config or base_config()
        self.tech = technology
        word_bits = WORD_BYTES * 8
        self.banks = self.config.lanes
        self.subarrays = self.config.subarrays_per_bank
        self.subarray_bits = self.config.subarray_words * word_bits
        self.rows, self.columns = subarray_geometry(self.subarray_bits)
        self.rows_per_bank = self.rows * self.subarrays

    # ------------------------------------------------------------------
    def _common_components(self) -> dict:
        """Structures shared by every organisation."""
        t = self.tech
        cells = (
            self.banks * self.subarrays * self.subarray_bits
            * t.cell_area_um2
        )
        sense = (
            self.banks * self.subarrays * self.columns
            * t.sense_amp_per_column_um2
        )
        wordline = (
            self.banks * self.subarrays * self.rows
            * t.wordline_driver_per_row_um2
        )
        # Sequential access reads a wide block: one 2:1 column-mux stage.
        seq_mux = (
            self.banks * self.subarrays * self.columns
            * t.column_mux_stage_per_column_um2
        )
        return {
            "cells": cells,
            "sense_amps": sense,
            "wordline_drivers": wordline,
            "sequential_column_mux": seq_mux,
        }

    def sequential(self) -> AreaBreakdown:
        """The conventional sequential-only SRF (Figure 6)."""
        t = self.tech
        parts = self._common_components()
        # All banks access the same row: a single shared row decoder.
        parts["shared_row_decoder"] = (
            self.rows_per_bank * t.decoder_area_per_row_um2
        )
        return AreaBreakdown(parts)

    def isrf1(self) -> AreaBreakdown:
        """In-lane indexing, one word/cycle/lane (per-bank decoders)."""
        t = self.tech
        parts = self._common_components()
        parts["per_bank_row_decoders"] = (
            self.banks * self.rows_per_bank * t.decoder_area_per_row_um2
        )
        parts["per_bank_address_wiring"] = self._bank_address_wiring()
        return AreaBreakdown(parts)

    def isrf4(self) -> AreaBreakdown:
        """Sub-array indexing: up to s one-word accesses/bank (Figure 7)."""
        t = self.tech
        parts = self.isrf1().components
        parts["subarray_predecoders"] = (
            self.banks * self.subarrays * t.predecoder_area_um2
        )
        # The wide (8:1) per-sub-array column mux for single-word access:
        # log2(columns/word) extra 2:1 stages beyond the sequential mux.
        word_bits = WORD_BYTES * 8
        extra_stages = max(
            0, int(math.log2(max(1, self.columns // word_bits))) - 1
        )
        parts["indexed_column_mux"] = (
            self.banks * self.subarrays * self.columns
            * t.column_mux_stage_per_column_um2 * extra_stages
        )
        parts["subarray_address_wiring"] = (
            self._bank_address_wiring() * (self.subarrays - 1) * 0.25
        )
        return AreaBreakdown(parts)

    def crosslane(self) -> AreaBreakdown:
        """ISRF4 plus the cross-lane address/data networks (Figure 8c)."""
        t = self.tech
        parts = self.isrf4().components
        span_um = math.sqrt(self.sequential().total_um2)
        address_wires = self.banks * t.address_bits
        parts["address_network"] = (
            address_wires * t.wire_pitch_um * span_um
            + self.banks * self.banks * t.address_bits
            * t.crossbar_crosspoint_um2
        )
        # One additional network port per SRF bank for data returns.
        word_bits = WORD_BYTES * 8
        parts["bank_network_ports"] = (
            self.banks * word_bits * t.wire_pitch_um * span_um * 0.04
            + self.banks * 2000.0
        )
        return AreaBreakdown(parts)

    # ------------------------------------------------------------------
    def _bank_address_wiring(self) -> float:
        """Address distribution wiring across the bank array."""
        t = self.tech
        span_um = math.sqrt(
            self.banks * self.subarrays * self.subarray_bits
            * t.cell_area_um2
        )
        return self.banks * t.address_bits * t.wire_pitch_um * span_um * 0.5

    # ------------------------------------------------------------------
    # Word protection (repro.faults parity / SEC-DED)
    # ------------------------------------------------------------------
    #: Named SRF organisations, for :meth:`protection_overhead`.
    VARIANTS = ("sequential", "isrf1", "isrf4", "crosslane")

    def protected(self, protection: str,
                  base: "AreaBreakdown | None" = None) -> AreaBreakdown:
        """An organisation's breakdown with word protection added.

        Check bits widen every word: the cell array, sense amplifiers and
        column muxes grow by ``check_bits/32``; each sub-array also gains
        the encode/check (parity) or encode/correct (SEC-DED) logic
        block. ``base`` defaults to the sequential organisation.
        """
        from repro.faults.protection import PROTECTION_CHECK_BITS

        if protection not in PROTECTION_CHECK_BITS:
            raise ConfigurationError(
                f"unknown protection {protection!r} "
                f"(known: {', '.join(PROTECTION_CHECK_BITS)})"
            )
        base = base if base is not None else self.sequential()
        check_bits = PROTECTION_CHECK_BITS[protection]
        if check_bits == 0:
            return AreaBreakdown(dict(base.components))
        word_bits = WORD_BYTES * 8
        widen = 1.0 + check_bits / word_bits
        parts = {}
        for name, area in base.components.items():
            if name in ("cells", "sense_amps", "sequential_column_mux",
                        "indexed_column_mux"):
                parts[name] = area * widen
            else:
                parts[name] = area
        logic = (
            self.tech.parity_logic_per_subarray_um2 if protection == "parity"
            else self.tech.ecc_logic_per_subarray_um2
        )
        parts["protection_logic"] = self.banks * self.subarrays * logic
        return AreaBreakdown(parts)

    def protection_overhead(self, protection: str,
                            variant: str = "sequential") -> float:
        """Fractional area cost of adding ``protection`` to ``variant``."""
        if variant not in self.VARIANTS:
            raise ConfigurationError(
                f"unknown SRF variant {variant!r} "
                f"(known: {', '.join(self.VARIANTS)})"
            )
        breakdown = getattr(self, variant)()
        return self.protected(protection, breakdown).overhead_over(breakdown)

    def overhead_report(self) -> dict:
        """Fractional overheads over the sequential SRF (paper §4.6)."""
        base = self.sequential()
        return {
            "ISRF1": self.isrf1().overhead_over(base),
            "ISRF4": self.isrf4().overhead_over(base),
            "ISRF4+crosslane": self.crosslane().overhead_over(base),
        }
