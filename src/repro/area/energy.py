"""Access-energy model (paper §4.4).

"Indexed single-word accesses in our design consume approximately 4x
the energy per word in the SRAM array compared to sequential stream
accesses due to increased column multiplexing. However, the estimated
energy consumed by an indexed SRF access at approximately 0.1 nJ in a
0.13 µm technology is still an order of magnitude lower than the ~5 nJ
required for an off-chip DRAM access."

This module exposes those per-access energies and integrates them over
simulation statistics so benchmarks can report energy alongside cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.area.technology import CMOS13, Technology
from repro.core.srf import SrfStats
from repro.memory.dram import DramStats


@dataclass
class EnergyReport:
    """Energy consumed by one run, in nanojoules, by component."""

    srf_sequential_nj: float
    srf_indexed_nj: float
    dram_nj: float

    @property
    def total_nj(self) -> float:
        return self.srf_sequential_nj + self.srf_indexed_nj + self.dram_nj

    @property
    def total_uj(self) -> float:
        return self.total_nj / 1e3


class EnergyModel:
    """Per-access energies and stat integration."""

    def __init__(self, technology: Technology = CMOS13):
        self.tech = technology

    @property
    def sequential_word_nj(self) -> float:
        """Energy per word of a sequential block access."""
        return self.tech.seq_access_energy_per_word_nj

    @property
    def indexed_word_nj(self) -> float:
        """Energy per indexed single-word access (~4x sequential/word)."""
        return (
            self.tech.seq_access_energy_per_word_nj
            * self.tech.indexed_energy_ratio
        )

    @property
    def dram_word_nj(self) -> float:
        """Energy per off-chip DRAM word access (~5 nJ)."""
        return self.tech.dram_access_energy_nj

    @property
    def indexed_vs_dram_ratio(self) -> float:
        """How much cheaper an indexed SRF access is than DRAM."""
        return self.dram_word_nj / self.indexed_word_nj

    def protection_energy_ratio(self, protection: str) -> float:
        """Per-access energy multiplier of a word-protection scheme.

        Check bits add ``check_bits/32`` of bit-storage/sensing energy
        plus an encode/check logic term per check bit (parity ~1.05x,
        SEC-DED ~1.36x an unprotected access).
        """
        from repro.faults.protection import PROTECTION_CHECK_BITS

        if protection not in PROTECTION_CHECK_BITS:
            raise ValueError(
                f"unknown protection {protection!r} "
                f"(known: {', '.join(PROTECTION_CHECK_BITS)})"
            )
        check_bits = PROTECTION_CHECK_BITS[protection]
        if check_bits == 0:
            return 1.0
        return (
            1.0 + check_bits / 32.0
            + check_bits * self.tech.protection_logic_energy_per_check_bit
        )

    def report(self, srf_stats: SrfStats, dram_stats: DramStats) -> EnergyReport:
        """Integrate per-access energies over run statistics."""
        return EnergyReport(
            srf_sequential_nj=(
                srf_stats.sequential_words * self.sequential_word_nj
            ),
            srf_indexed_nj=srf_stats.indexed_words * self.indexed_word_nj,
            dram_nj=dram_stats.total_words * self.dram_word_nj,
        )
