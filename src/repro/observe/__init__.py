"""Zero-overhead-when-disabled observability for the simulator.

Three facilities, all off by default and all inert (no allocated state,
single ``is not None`` guards on hot paths) unless a
:class:`~repro.config.machine.MachineConfig` turns them on:

* :class:`~repro.observe.events.Tracer` — structured begin/end, instant,
  counter and async events with cycle timestamps, exported as Chrome
  ``trace_event`` / Perfetto JSON (``config.trace``);
* :class:`~repro.observe.metrics.MetricsRegistry` — hierarchical
  counters, gauges and histograms folded into ``ProgramStats.metrics``
  (``config.metrics_level``);
* :class:`~repro.observe.profile.CycleProfiler` — sampling attribution
  of simulated cycles to machine components
  (``config.profile_sample_period``).
"""

from repro.observe.events import (
    PHASE_ASYNC_BEGIN,
    PHASE_ASYNC_END,
    PHASE_BEGIN,
    PHASE_COUNTER,
    PHASE_END,
    PHASE_INSTANT,
    PHASES,
    TraceEvent,
    Tracer,
)
from repro.observe.export import (
    STAGING_SUFFIX,
    chrome_trace,
    cleanup_orphan_traces,
    staging_path,
    validate_chrome_trace,
    write_trace,
)
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observe.observer import (
    TRACE_ENV,
    Collection,
    Observer,
    collect,
    register,
    trace_overrides_from_env,
)
from repro.observe.profile import CycleProfiler

__all__ = [
    "PHASES",
    "PHASE_ASYNC_BEGIN",
    "PHASE_ASYNC_END",
    "PHASE_BEGIN",
    "PHASE_COUNTER",
    "PHASE_END",
    "PHASE_INSTANT",
    "STAGING_SUFFIX",
    "TRACE_ENV",
    "Collection",
    "Counter",
    "CycleProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "cleanup_orphan_traces",
    "collect",
    "register",
    "staging_path",
    "trace_overrides_from_env",
    "validate_chrome_trace",
    "write_trace",
]
