"""Hierarchical metrics registry: counters, gauges, histograms.

Metric names are dotted paths (``srf.bank3.blocked_heads``,
``dram.row_hit_rate``); the dots give the hierarchy without imposing any
object tree on the instrumented components. Two registration styles:

* **live metrics** — :meth:`MetricsRegistry.counter` / ``gauge`` /
  ``histogram`` return objects the hot path updates directly (guarded by
  a single ``is not None`` check when observability is off);
* **providers** — callables returning ``{name: value}`` evaluated only
  at :meth:`MetricsRegistry.collect` time, for quantities the simulator
  already tracks in its own stats objects (DRAM row locality, crossbar
  traffic, SRF grant counts). Providers make those numbers visible at
  zero added simulation cost.

``metrics_level`` selects depth: level 1 installs only providers and
per-run aggregates; level 2 adds per-bank / per-stream live metrics and
occupancy histograms on the hot paths.
"""

from __future__ import annotations


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}


#: Default histogram bucket upper bounds (values above the last bound
#: land in the overflow bucket). Sized for FIFO/buffer depths.
DEFAULT_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64)


class Histogram:
    """A fixed-bucket histogram of observed values."""

    kind = "histogram"
    __slots__ = ("name", "bounds", "buckets", "count", "total")

    def __init__(self, name: str, bounds=DEFAULT_BOUNDS):
        self.name = name
        self.bounds = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(f"{name}: histogram bounds must be sorted/unique")
        self.buckets = [0] * (len(self.bounds) + 1)  # +1 for overflow
        self.count = 0
        self.total = 0.0

    def record(self, value: float) -> None:
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[position] += 1
                break
        else:
            self.buckets[-1] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Create-or-get registry of named metrics plus lazy providers."""

    def __init__(self, level: int = 1):
        if level < 1:
            raise ValueError("metrics level must be >= 1 for a registry")
        self.level = level
        self._metrics = {}
        self._providers = []

    # ------------------------------------------------------------------
    def _get(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, type(factory())):
            raise ValueError(
                f"metric {name!r} already registered with a different kind"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name))

    def histogram(self, name: str, bounds=DEFAULT_BOUNDS) -> Histogram:
        return self._get(name, lambda: Histogram(name, bounds))

    def add_provider(self, provider) -> None:
        """Register ``provider() -> {name: value}``, read at collect."""
        self._providers.append(provider)

    # ------------------------------------------------------------------
    def collect(self) -> dict:
        """Snapshot every metric and provider as plain JSON-able data.

        Provider values are reported as gauges (they are reads of the
        components' own cumulative stats). Later providers overwrite
        earlier ones on a name collision; live metrics always win over
        providers.
        """
        out = {}
        for provider in self._providers:
            for name, value in provider().items():
                out[name] = {"kind": "gauge", "value": value}
        for name, metric in self._metrics.items():
            out[name] = metric.snapshot()
        return out

    def names(self) -> list:
        return list(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
