"""The per-machine observability bundle and its configuration plumbing.

An :class:`Observer` groups the three observability facilities — event
tracer, metrics registry, cycle profiler — that a
:class:`~repro.machine.processor.StreamProcessor` installs into its
components. It is built from :class:`~repro.config.machine.MachineConfig`
knobs (``trace``, ``metrics_level``, ``profile_sample_period``); with all
three at their defaults :meth:`Observer.from_config` returns ``None`` and
the machine carries no observability state at all — the same inertness
contract the fault package established.

Because benchmarks construct their processors internally, callers that
need the traces use the :func:`collect` context manager: every observer
created while it is active is registered with it::

    with observe.collect() as collected:
        result = fft.run(base_config(trace=True), n=16)
    tracer = collected.observers[0].tracer

The ``REPRO_TRACE`` environment variable overlays observability knobs
onto every machine preset (mirroring ``REPRO_FAULTS``), e.g.
``REPRO_TRACE="trace=1,metrics=2,profile=64,path=out.json"``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.errors import ConfigurationError
from repro.observe.events import Tracer
from repro.observe.metrics import MetricsRegistry
from repro.observe.profile import CycleProfiler

#: Environment variable carrying observability overrides for the presets.
TRACE_ENV = "REPRO_TRACE"

#: REPRO_TRACE key -> (MachineConfig field, parser).
_ENV_KEYS = {
    "trace": ("trace", lambda v: bool(int(v))),
    "path": ("trace_path", str),
    "metrics": ("metrics_level", int),
    "buffer": ("trace_buffer_events", int),
    "profile": ("profile_sample_period", int),
}

#: Shorthand values enabling tracing alone: ``REPRO_TRACE=1``.
_BARE_ON = ("1", "true", "on", "yes")


def trace_overrides_from_env(environ=None) -> dict:
    """Parse ``REPRO_TRACE`` into :class:`MachineConfig` overrides.

    The variable is a comma-separated ``key=value`` list with keys
    ``trace``, ``metrics``, ``profile``, ``buffer`` and ``path``; the
    bare values ``1``/``true``/``on`` enable tracing alone. Empty or
    unset yields ``{}`` so the presets are untouched by default.
    """
    environ = os.environ if environ is None else environ
    spec = environ.get(TRACE_ENV, "").strip()
    if not spec:
        return {}
    if spec.lower() in _BARE_ON:
        return {"trace": True}
    overrides = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or key not in _ENV_KEYS or not value:
            raise ConfigurationError(
                f"bad {TRACE_ENV} entry {item!r} "
                f"(known keys: {', '.join(_ENV_KEYS)})"
            )
        field, parser = _ENV_KEYS[key]
        try:
            overrides[field] = parser(value)
        except ValueError:
            raise ConfigurationError(
                f"{TRACE_ENV}: {key} needs an integer, got {value!r}"
            ) from None
    return overrides


class Observer:
    """Tracer + metrics + profiler for one simulated machine."""

    def __init__(self, tracer: "Tracer | None" = None,
                 metrics: "MetricsRegistry | None" = None,
                 profiler: "CycleProfiler | None" = None,
                 machine: str = "", trace_path: "str | None" = None):
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.machine = machine
        self.trace_path = trace_path
        if profiler is not None and metrics is not None:
            metrics.add_provider(profiler.report)

    @classmethod
    def from_config(cls, config) -> "Observer | None":
        """Build the observer a config asks for, or None when inert."""
        if not (config.trace or config.metrics_level
                or config.profile_sample_period):
            return None
        tracer = (
            Tracer(config.trace_buffer_events, clock_hz=config.clock_hz)
            if config.trace else None
        )
        metrics = (
            MetricsRegistry(level=config.metrics_level)
            if config.metrics_level else None
        )
        profiler = (
            CycleProfiler(config.profile_sample_period)
            if config.profile_sample_period else None
        )
        return cls(tracer=tracer, metrics=metrics, profiler=profiler,
                   machine=config.name, trace_path=config.trace_path)

    @property
    def enabled(self) -> bool:
        return (
            self.tracer is not None or self.metrics is not None
            or self.profiler is not None
        )


# ----------------------------------------------------------------------
# Observer collection (for callers that do not own the processor)
# ----------------------------------------------------------------------
class Collection:
    """Observers registered while a :func:`collect` block was active."""

    def __init__(self):
        self.observers = []

    def tracers(self) -> dict:
        """Machine label -> tracer for every traced observer collected.

        Duplicate machine names (several processors of one config) are
        disambiguated with a ``#k`` suffix, so the dict is loss-free.
        """
        out = {}
        for observer in self.observers:
            if observer.tracer is None:
                continue
            label = observer.machine or "machine"
            if label in out:
                suffix = 2
                while f"{label}#{suffix}" in out:
                    suffix += 1
                label = f"{label}#{suffix}"
            out[label] = observer.tracer
        return out


_collections = []


def register(observer: Observer) -> None:
    """Offer a newly created observer to every active collect block."""
    for collection in _collections:
        collection.observers.append(observer)


@contextmanager
def collect():
    """Collect every observer created inside the ``with`` block."""
    collection = Collection()
    _collections.append(collection)
    try:
        yield collection
    finally:
        _collections.remove(collection)
