"""Sampling profiler for simulated cycles.

Attributes simulated cycles to machine components (kernel main loop,
kernel startup, memory stall, idle) by sampling every
``sample_period``-th cycle instead of every cycle, so profiling a long
run costs a fraction of full accounting. The processor drives it from
both the per-cycle loop and the fast-forward bulk path, so sampled
attribution is identical with fast-forward on or off.
"""

from __future__ import annotations


class CycleProfiler:
    """Deterministic systematic sampler over the simulated cycle stream.

    Samples land on a fixed lattice (every ``period`` cycles from the
    first observed cycle), so the same run always yields the same sample
    counts regardless of how the cycle stream was chunked into
    per-cycle steps and fast-forward windows.
    """

    def __init__(self, period: int):
        if period <= 0:
            raise ValueError("profiler sample period must be positive")
        self.period = period
        #: category -> number of samples attributed.
        self.samples = {}
        self._next = None  # first sample lands on the first observed cycle

    def sample(self, cycle: int, category: str) -> None:
        """Attribute the single cycle ``cycle`` to ``category``."""
        self.sample_window(cycle, 1, category)

    def sample_window(self, start: int, cycles: int, category: str) -> None:
        """Attribute the window ``[start, start + cycles)`` in bulk."""
        if cycles <= 0:
            return
        if self._next is None:
            self._next = start
        end = start + cycles
        if self._next >= end:
            return
        taken = 1 + (end - 1 - self._next) // self.period
        self.samples[category] = self.samples.get(category, 0) + taken
        self._next += taken * self.period

    # ------------------------------------------------------------------
    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def attributed_cycles(self) -> dict:
        """category -> estimated cycles (samples scaled by the period)."""
        return {
            category: samples * self.period
            for category, samples in self.samples.items()
        }

    def report(self) -> dict:
        """Flat provider-style view for the metrics registry."""
        out = {}
        for category, samples in self.samples.items():
            out[f"profile.{category}.samples"] = samples
            out[f"profile.{category}.cycles"] = samples * self.period
        out["profile.sample_period"] = self.period
        return out
