"""Chrome ``trace_event`` / Perfetto JSON export.

:func:`chrome_trace` converts one or more :class:`~repro.observe.events.
Tracer` buffers into the JSON object format understood by
``chrome://tracing`` and https://ui.perfetto.dev: each machine becomes a
process (``pid``), each traced component a named thread (``tid``), and
cycle timestamps become microseconds via the machine clock.

:func:`validate_chrome_trace` is the schema check used by the test suite
and the CI smoke run: required keys, known phases, numeric timestamps,
balanced ``B``/``E`` nesting per track and ``b``/``e`` pairing per async
id.

Trace files are written atomically: the payload is staged next to the
final path as ``<name>.<experiment>.trace.tmp`` and renamed into place,
so readers never observe a half-written trace. A worker killed mid-write
leaks only the staging file; :func:`cleanup_orphan_traces` removes the
leftovers of a named experiment (the harness runner calls it after a
crashed or timed-out worker).
"""

from __future__ import annotations

import json
import os

from repro.observe.events import (
    PHASE_ASYNC_BEGIN,
    PHASE_ASYNC_END,
    PHASE_BEGIN,
    PHASE_COUNTER,
    PHASE_END,
    PHASES,
    Tracer,
)
from repro.store.atomic import atomic_write_text

#: Filename suffix of staged (not yet renamed) trace exports.
STAGING_SUFFIX = ".trace.tmp"

#: Chrome metadata phase (process/thread naming events).
PHASE_METADATA = "M"

_VALID_PHASES = set(PHASES) | {PHASE_METADATA}


def _cycles_to_us(cycle: int, clock_hz: float) -> float:
    return cycle * 1e6 / clock_hz


def chrome_trace(machines: dict) -> dict:
    """Build one Chrome trace object from per-machine tracers.

    ``machines`` maps a machine label (e.g. ``"Base"``, ``"ISRF4"``) to
    its :class:`Tracer`. Each machine gets its own ``pid`` so a Base vs
    ISRF4 comparison renders as two aligned process groups.
    """
    trace_events = []
    dropped = {}
    for pid, (label, tracer) in enumerate(machines.items(), start=1):
        if not isinstance(tracer, Tracer):
            raise TypeError(f"{label}: expected a Tracer, got {tracer!r}")
        trace_events.append({
            "name": "process_name", "ph": PHASE_METADATA, "pid": pid,
            "tid": 0, "ts": 0, "args": {"name": label},
        })
        tids = {}
        for event in tracer.events:
            tid = tids.get(event.component)
            if tid is None:
                tid = len(tids) + 1
                tids[event.component] = tid
                trace_events.append({
                    "name": "thread_name", "ph": PHASE_METADATA,
                    "pid": pid, "tid": tid, "ts": 0,
                    "args": {"name": event.component},
                })
            record = {
                "name": event.name,
                "cat": event.component,
                "ph": event.phase,
                "ts": _cycles_to_us(event.cycle, tracer.clock_hz),
                "pid": pid,
                "tid": tid,
            }
            if event.args:
                record["args"] = dict(event.args)
            if event.event_id is not None:
                record["id"] = str(event.event_id)
            trace_events.append(record)
        dropped[label] = tracer.dropped_events
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.observe",
            "dropped_events": dropped,
        },
    }


def validate_chrome_trace(payload) -> dict:
    """Check a trace object against the Chrome trace_event schema.

    Raises :class:`ValueError` on the first violation. Returns summary
    counts (events per phase) on success so callers can assert
    non-emptiness.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload needs a traceEvents list")
    phase_counts = {}
    open_spans = {}  # (pid, tid) -> [names]
    open_async = {}  # (pid, cat, id) -> count
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: not an object")
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in event:
                raise ValueError(f"{where}: missing required key {key!r}")
        phase = event["ph"]
        if phase not in _VALID_PHASES:
            raise ValueError(f"{where}: unknown phase {phase!r}")
        if not isinstance(event["name"], str) or not event["name"]:
            raise ValueError(f"{where}: name must be a non-empty string")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(f"{where}: ts must be a non-negative number")
        if not isinstance(event["pid"], int) or not isinstance(
                event["tid"], int):
            raise ValueError(f"{where}: pid/tid must be integers")
        phase_counts[phase] = phase_counts.get(phase, 0) + 1
        track = (event["pid"], event["tid"])
        if phase == PHASE_BEGIN:
            open_spans.setdefault(track, []).append(event["name"])
        elif phase == PHASE_END:
            stack = open_spans.get(track)
            if not stack:
                raise ValueError(
                    f"{where}: E event {event['name']!r} with no open span "
                    f"on pid={track[0]} tid={track[1]}"
                )
            opened = stack.pop()
            if opened != event["name"]:
                raise ValueError(
                    f"{where}: E event {event['name']!r} closes span "
                    f"{opened!r} (improper nesting)"
                )
        elif phase in (PHASE_ASYNC_BEGIN, PHASE_ASYNC_END):
            if "id" not in event:
                raise ValueError(f"{where}: async event needs an id")
            key = (event["pid"], event.get("cat", ""), event["id"])
            if phase == PHASE_ASYNC_BEGIN:
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    raise ValueError(
                        f"{where}: async end without begin for id "
                        f"{event['id']!r}"
                    )
                open_async[key] -= 1
        elif phase == PHASE_COUNTER:
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(f"{where}: counter event needs args values")
    unbalanced = {k: v for k, v in open_spans.items() if v}
    if unbalanced:
        track, names = next(iter(unbalanced.items()))
        raise ValueError(
            f"unbalanced B/E spans on pid={track[0]} tid={track[1]}: "
            f"{names!r} never closed"
        )
    pending = {k: n for k, n in open_async.items() if n}
    if pending:
        key = next(iter(pending))
        raise ValueError(f"async span id {key[2]!r} never ended")
    return phase_counts


# ----------------------------------------------------------------------
def staging_path(path: str, experiment: "str | None" = None,
                 staging_dir: "str | None" = None) -> str:
    """The temp path a trace export is staged at before the rename.

    The experiment name is embedded in the filename so a crashed
    worker's leftovers can be attributed (and removed) per experiment.
    """
    directory = staging_dir or os.path.dirname(os.path.abspath(path))
    base = os.path.basename(path)
    tag = f".{experiment}" if experiment else ""
    return os.path.join(directory, f"{base}{tag}{STAGING_SUFFIX}")


def write_trace(payload: dict, path: str, experiment: "str | None" = None,
                staging_dir: "str | None" = None) -> str:
    """Atomically write a trace JSON object to ``path``; returns it.

    Delegates the staging/fsync/rename dance to
    :func:`repro.store.atomic.atomic_write_text` — the one audited
    write path — while keeping the per-experiment staging filename so
    crashed workers' leftovers stay attributable to
    :func:`cleanup_orphan_traces`.
    """
    temp_path = staging_path(path, experiment, staging_dir)
    return atomic_write_text(path, json.dumps(payload), staging=temp_path)


def cleanup_orphan_traces(directory: str,
                          experiment: "str | None" = None) -> int:
    """Remove staged ``*.trace.tmp`` leftovers; returns how many.

    With ``experiment`` given, only files that experiment staged (its
    name is embedded before the suffix) are removed, so concurrent
    healthy workers' staging files are left alone.
    """
    try:
        entries = os.listdir(directory)
    except OSError:
        return 0
    marker = f".{experiment}{STAGING_SUFFIX}" if experiment else STAGING_SUFFIX
    removed = 0
    for filename in entries:
        if not filename.endswith(marker):
            continue
        try:
            os.unlink(os.path.join(directory, filename))
        except OSError:
            continue
        removed += 1
    return removed
