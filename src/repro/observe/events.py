"""Structured event tracing with cycle timestamps.

The :class:`Tracer` records *begin/end* spans, *instant* events,
*counter* samples, and *async* spans (for operations that overlap on one
track, like concurrent stream memory transfers) into a bounded ring
buffer. Events carry the simulated cycle at which they occurred; the
exporter (:mod:`repro.observe.export`) converts cycles to wall-clock
microseconds using the machine clock so traces load directly into
``chrome://tracing`` or Perfetto.

The buffer is a ring: when full, the *oldest* events are discarded and
counted in :attr:`Tracer.dropped_events`, so a long run keeps the most
recent window instead of aborting or growing without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: Chrome trace_event phase codes used by the tracer.
PHASE_BEGIN = "B"
PHASE_END = "E"
PHASE_INSTANT = "i"
PHASE_COUNTER = "C"
PHASE_ASYNC_BEGIN = "b"
PHASE_ASYNC_END = "e"

PHASES = (
    PHASE_BEGIN, PHASE_END, PHASE_INSTANT, PHASE_COUNTER,
    PHASE_ASYNC_BEGIN, PHASE_ASYNC_END,
)


@dataclass
class TraceEvent:
    """One recorded event.

    ``component`` names the track (exported as the Chrome ``tid`` /
    thread name); ``event_id`` pairs async begin/end events that may
    overlap on a track.
    """

    name: str
    component: str
    phase: str
    cycle: int
    args: "dict | None" = field(default=None)
    event_id: "int | None" = None


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent` objects.

    All emit methods are cheap (one dataclass + one deque append); the
    machine only calls them when tracing is enabled, so a disabled build
    carries no cost at all.
    """

    def __init__(self, capacity: int, clock_hz: float = 1e9):
        if capacity <= 0:
            raise ValueError("trace buffer capacity must be positive")
        self.capacity = capacity
        self.clock_hz = clock_hz
        self._events = deque(maxlen=capacity)
        #: Events discarded because the ring buffer was full.
        self.dropped_events = 0
        #: (component, phase) -> number of events emitted (including any
        #: later dropped from the ring), for reconciliation tests.
        self.counts = {}

    # ------------------------------------------------------------------
    def _emit(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped_events += 1
        self._events.append(event)
        key = (event.component, event.phase)
        self.counts[key] = self.counts.get(key, 0) + 1

    def begin(self, component: str, name: str, cycle: int,
              **args: object) -> None:
        """Open a synchronous span on ``component``'s track."""
        self._emit(TraceEvent(name, component, PHASE_BEGIN, cycle,
                              args or None))

    def end(self, component: str, name: str, cycle: int,
            **args: object) -> None:
        """Close the most recent open span on ``component``'s track."""
        self._emit(TraceEvent(name, component, PHASE_END, cycle,
                              args or None))

    def instant(self, component: str, name: str, cycle: int,
                **args: object) -> None:
        """Record a point-in-time event."""
        self._emit(TraceEvent(name, component, PHASE_INSTANT, cycle,
                              args or None))

    def counter(self, component: str, name: str, cycle: int,
                values: dict) -> None:
        """Record a counter sample (rendered as a stacked area chart)."""
        self._emit(TraceEvent(name, component, PHASE_COUNTER, cycle,
                              dict(values)))

    def async_begin(self, component: str, name: str, cycle: int,
                    event_id: int, **args: object) -> None:
        """Open an async span; overlapping spans are paired by id."""
        self._emit(TraceEvent(name, component, PHASE_ASYNC_BEGIN, cycle,
                              args or None, event_id))

    def async_end(self, component: str, name: str, cycle: int,
                  event_id: int, **args: object) -> None:
        self._emit(TraceEvent(name, component, PHASE_ASYNC_END, cycle,
                              args or None, event_id))

    # ------------------------------------------------------------------
    @property
    def events(self) -> list:
        """The buffered events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def count(self, component: str, phase: str) -> int:
        """Events emitted on a (component, phase) pair, drops included."""
        return self.counts.get((component, phase), 0)

    def components(self) -> list:
        """Component (track) names in first-emission order."""
        seen = []
        for component, _phase in self.counts:
            if component not in seen:
                seen.append(component)
        return seen
