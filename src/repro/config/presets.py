"""The four machine configurations of paper Table 2.

========  ==========================================================
Config    Description (paper Table 2)
========  ==========================================================
Base      Sequential SRF backed by off-chip DRAM.
ISRF1     Indexed SRF, one in-lane indexed word/cycle/lane (no
          sub-banking used for indexing) plus cross-lane indexing.
ISRF4     Indexed SRF, up to 4 in-lane indexed words/cycle/lane
          (4 sub-arrays per lane) plus cross-lane indexing.
Cache     Sequential SRF backed by an on-chip cache and DRAM.
========  ==========================================================

All four share the Table 3 common parameters: 8 lanes, 1 GHz,
32 GFLOPs peak, 9.14 GB/s DRAM, 128 KB SRF, 32 words/cycle peak
sequential SRF bandwidth, 3-cycle sequential SRF latency and 8-word
stream buffers.
"""

from __future__ import annotations

import os

from repro.config.machine import (
    BACKEND_KINDS,
    TIMING_ENGINES,
    MachineConfig,
    SrfMode,
)
from repro.errors import ConfigurationError
from repro.faults.plan import fault_overrides_from_env
from repro.observe.observer import trace_overrides_from_env

#: Environment variable overlaying the functional-evaluation backend
#: ("scalar" / "vector") onto every preset — how the harness CLI's
#: ``--backend`` flag reaches forked worker processes.
BACKEND_ENV = "REPRO_BACKEND"


def backend_overrides_from_env() -> dict:
    """Backend override from ``REPRO_BACKEND``, empty when unset."""
    value = os.environ.get(BACKEND_ENV)
    if value is None or value == "":
        return {}
    if value not in BACKEND_KINDS:
        raise ConfigurationError(
            f"{BACKEND_ENV}={value!r}: unknown backend "
            f"(known: {', '.join(BACKEND_KINDS)})"
        )
    return {"backend": value}


#: Environment variable overlaying the timing engine
#: ("object" / "columnar", see :attr:`MachineConfig.timing_engine`)
#: onto every preset — how the harness CLI's ``--timing-engine`` flag
#: reaches forked worker processes.
TIMING_ENGINE_ENV = "REPRO_TIMING_ENGINE"


def timing_engine_overrides_from_env() -> dict:
    """Timing-engine override from ``REPRO_TIMING_ENGINE``, empty if unset."""
    value = os.environ.get(TIMING_ENGINE_ENV)
    if value is None or value == "":
        return {}
    if value not in TIMING_ENGINES:
        raise ConfigurationError(
            f"{TIMING_ENGINE_ENV}={value!r}: unknown timing engine "
            f"(known: {', '.join(TIMING_ENGINES)})"
        )
    return {"timing_engine": value}


#: Environment variable overlaying the timing source
#: (:attr:`MachineConfig.timing_source`) onto every preset — how the
#: harness CLI's ``--replay`` flag reaches forked worker processes.
REPLAY_ENV = "REPRO_REPLAY"


def replay_overrides_from_env() -> dict:
    """Timing-source override from ``REPRO_REPLAY``, empty when unset.

    ``1``/``replay`` select trace-replay timing, ``0``/``execute``
    explicitly select functional execution (useful to countermand a
    value exported by a wrapper script).
    """
    value = os.environ.get(REPLAY_ENV)
    if value is None or value == "":
        return {}
    if value in ("1", "replay"):
        return {"timing_source": "replay"}
    if value in ("0", "execute"):
        return {"timing_source": "execute"}
    raise ConfigurationError(
        f"{REPLAY_ENV}={value!r}: expected 1/replay or 0/execute"
    )


def _finish(cfg: MachineConfig, overrides: dict) -> MachineConfig:
    """Apply env overrides, then explicit ones, and validate.

    The ``REPRO_FAULTS`` environment variable (see
    :func:`repro.faults.fault_overrides_from_env`) overlays fault/
    protection knobs onto every preset, so the whole harness can run
    under injected faults without touching any call site; explicit
    keyword overrides still win. ``REPRO_TRACE`` (see
    :func:`repro.observe.trace_overrides_from_env`) does the same for
    the observability knobs, ``REPRO_BACKEND`` for the functional
    evaluation backend (:attr:`MachineConfig.backend`),
    ``REPRO_REPLAY`` for the timing source
    (:attr:`MachineConfig.timing_source`), and ``REPRO_TIMING_ENGINE``
    for the cycle engine (:attr:`MachineConfig.timing_engine`).
    """
    merged = {
        **fault_overrides_from_env(),
        **trace_overrides_from_env(),
        **backend_overrides_from_env(),
        **replay_overrides_from_env(),
        **timing_engine_overrides_from_env(),
        **overrides,
    }
    return cfg.replace(**merged) if merged else _validated(cfg)


def base_config(**overrides: object) -> MachineConfig:
    """Sequential-only SRF backed by off-chip DRAM (paper ``Base``)."""
    cfg = MachineConfig(name="Base", srf_mode=SrfMode.SEQUENTIAL_ONLY)
    return _finish(cfg, overrides)


def isrf1_config(**overrides: object) -> MachineConfig:
    """Indexed SRF with 1 word/cycle/lane in-lane bandwidth (``ISRF1``)."""
    cfg = MachineConfig(
        name="ISRF1",
        srf_mode=SrfMode.INDEXED,
        inlane_indexed_bandwidth=1,
        crosslane_indexed_bandwidth=1,
    )
    return _finish(cfg, overrides)


def isrf4_config(**overrides: object) -> MachineConfig:
    """Indexed SRF with 4 words/cycle/lane in-lane bandwidth (``ISRF4``)."""
    cfg = MachineConfig(
        name="ISRF4",
        srf_mode=SrfMode.INDEXED,
        inlane_indexed_bandwidth=4,
        crosslane_indexed_bandwidth=1,
    )
    return _finish(cfg, overrides)


def cache_config(**overrides: object) -> MachineConfig:
    """Sequential SRF backed by a 128 KB on-chip cache (``Cache``)."""
    cfg = MachineConfig(
        name="Cache",
        srf_mode=SrfMode.SEQUENTIAL_ONLY,
        has_cache=True,
    )
    return _finish(cfg, overrides)


def all_configs() -> dict:
    """All four paper configurations keyed by name, in Table 2 order."""
    configs = [base_config(), isrf1_config(), isrf4_config(), cache_config()]
    return {cfg.name: cfg for cfg in configs}


def _validated(cfg: MachineConfig) -> MachineConfig:
    cfg.validate()
    return cfg
