"""Machine configuration for the simulated stream processor.

:class:`MachineConfig` captures every parameter from Table 3 of the paper
("Machine parameters") plus the implementation knobs exposed by the
parameter studies in Section 5.4 (address/data separation, sub-arrays per
bank, address-FIFO size, cross-lane network ports per SRF bank).

The four machine configurations of Table 2 (Base, ISRF1, ISRF4, Cache) are
constructed by :mod:`repro.config.presets`.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Bytes in one machine word. The paper uses a 32-bit word throughout.
WORD_BYTES = 4

#: Word-level protection schemes modelled for the SRF and main memory.
PROTECTION_KINDS = ("none", "parity", "secded")

#: Functional-evaluation backends (see :attr:`MachineConfig.backend`).
BACKEND_KINDS = ("scalar", "vector")

#: Where the timing model gets each kernel iteration's stream-access
#: details (see :attr:`MachineConfig.timing_source`).
TIMING_SOURCES = ("execute", "replay")

#: Cycle engines driving the timing model (see
#: :attr:`MachineConfig.timing_engine`).
TIMING_ENGINES = ("object", "columnar")


class SrfMode(enum.Enum):
    """How the SRF may be accessed in a given machine configuration."""

    #: Sequential block access only (Base and Cache configurations).
    SEQUENTIAL_ONLY = "sequential"
    #: Sequential plus indexed access (ISRF1 / ISRF4 configurations).
    INDEXED = "indexed"


@dataclass(frozen=True)
class MachineConfig:
    """Full parameter set of one simulated machine (paper Tables 2 and 3).

    Instances are immutable; use :meth:`replace` to derive variants for
    parameter sweeps.
    """

    name: str = "base"
    srf_mode: SrfMode = SrfMode.SEQUENTIAL_ONLY

    # --- Processor organisation (Table 3, top block) -------------------
    #: Number of lanes (SRF bank + compute cluster pairs).
    lanes: int = 8
    #: System clock in Hz; used to convert bandwidths to words/cycle.
    clock_hz: float = 1e9
    #: Fully pipelined ALUs per cluster (add + multiply capable).
    alus_per_cluster: int = 4
    #: Unpipelined dividers per cluster.
    dividers_per_cluster: int = 1

    # --- SRF organisation (Section 4, Table 3) --------------------------
    #: Total SRF capacity in bytes (128 KB in the paper).
    srf_bytes: int = 128 * 1024
    #: Words accessed per lane per sequential SRF block access (m).
    words_per_lane_access: int = 4
    #: SRAM sub-arrays per SRF bank (s). Determines peak in-lane indexed
    #: bandwidth for ISRF4-style machines.
    subarrays_per_bank: int = 4
    #: Sequential SRF access latency in cycles.
    srf_sequential_latency: int = 3
    #: Stream buffer capacity in words, per lane per stream.
    stream_buffer_words: int = 8

    # --- Indexed access (Table 3, middle block) ------------------------
    #: Address FIFO capacity in words, per lane per indexed stream.
    address_fifo_words: int = 8
    #: Peak in-lane indexed SRF bandwidth in words/cycle/cluster.
    #: 1 for ISRF1, ``subarrays_per_bank`` for ISRF4. 0 disables.
    inlane_indexed_bandwidth: int = 0
    #: Peak cross-lane indexed SRF bandwidth in words/cycle/cluster.
    crosslane_indexed_bandwidth: int = 0
    #: In-lane indexed SRF latency (cycles, conflict-free).
    inlane_indexed_latency: int = 4
    #: Cross-lane indexed SRF latency (cycles, conflict-free).
    crosslane_indexed_latency: int = 6
    #: Cross-lane network ports per SRF bank (Figure 18 study).
    crosslane_ports_per_bank: int = 1
    #: Static scheduler separation between indexed-address issue and data
    #: read, in cycles (Section 5.1: 6 in-lane, 20 cross-lane).
    inlane_addr_data_separation: int = 6
    crosslane_addr_data_separation: int = 20
    #: Cross-lane address network topology: "crossbar" (the paper's
    #: implementation, §4.5) or "ring" (the sparse alternative of §7).
    crosslane_network: str = "crossbar"
    #: Multiplex cross-lane index traffic onto the inter-cluster network
    #: instead of a dedicated address network — §4.5's conclusion:
    #: "multiplexing both types of inter-lane traffic over a single
    #: network instead of two dedicated networks is the preferred design
    #: option, particularly given the high area cost of the networks."
    #: When True, explicit comm cycles also block cross-lane index
    #: injection.
    shared_interlane_network: bool = False
    #: Local indexed arbitration policy: "round_robin" (the paper's
    #: choice) or "occupancy" (a stall-aware arbiter prioritising the
    #: fullest address FIFOs — §5.4 found such arbiters worth <10%).
    indexed_arbitration: str = "round_robin"

    # --- Simulation knobs (not machine parameters) ----------------------
    #: Functional-evaluation backend: "scalar" steps each lane's cluster
    #: one value at a time (the reference engine); "vector" evaluates
    #: kernel iterations lane-batched as NumPy array operations (see
    #: :mod:`repro.machine.vector`), falling back to scalar for kernels
    #: it cannot cover (read-write indexed streams) and for faulted
    #: runs. The backends produce bit-identical :class:`ProgramStats`;
    #: "vector" is purely a simulation speed knob, not a machine
    #: parameter.
    backend: str = "scalar"
    #: Where the timing model gets each kernel iteration's stream-access
    #: details: "execute" evaluates the kernel functionally at issue (the
    #: default, and the only mode that produces a trace); "replay"
    #: re-drives the full timing model (processor, SRF arbitration,
    #: crossbar, DRAM) from a trace recorded by an earlier run with an
    #: identical *functional* configuration (see
    #: :mod:`repro.machine.replay`), skipping kernel re-execution across
    #: timing-only config sweeps. Stats are bit-identical either way;
    #: replay requires an active :func:`repro.machine.replay.session`
    #: (without one, or under fault injection, runs execute normally).
    timing_source: str = "execute"
    #: Cycle engine driving the timing model: "object" steps the
    #: Python-object machine graph one cycle at a time (the reference
    #: engine); "columnar" (see :mod:`repro.machine.columnar`) keeps SRF
    #: completion state in flat calendar columns and batch-steps
    #: event-horizon windows (drain loops, stall windows) that the
    #: object engine walks cycle by cycle. Both engines produce
    #: bit-identical :class:`ProgramStats`; "columnar" is purely a
    #: simulation speed knob, not a machine parameter, and runs fall
    #: back to the object engine for configurations the columnar engine
    #: does not model exactly (fault injection, sanitize, per-event
    #: tracing/metrics/profiling, fast_forward=False).
    timing_engine: str = "object"
    #: Abort a run after this many cycles without forward progress (a bug
    #: in the program or the model). ``None`` uses the simulator default
    #: (:data:`repro.machine.processor.DEADLOCK_CYCLES`).
    deadlock_cycles: "int | None" = None
    #: Let :meth:`repro.machine.processor.StreamProcessor.run_program`
    #: skip straight over cycles that are provably pure waits (DRAM
    #: latency windows, kernel startup with quiescent stream units),
    #: charging them to the same stall categories in bulk. Results are
    #: bit-identical to per-cycle stepping; disable only to cross-check.
    fast_forward: bool = True
    #: Debug mode: assert cycle-level machine invariants (SRF occupancy
    #: conservation, stream-buffer credit balance, address-FIFO head
    #: coherence, crossbar budget bounds) every simulated cycle, raising
    #: :class:`repro.errors.SanitizerError` with a forensic report on the
    #: first violation. Inert when off — like trace/faults, a disabled
    #: machine carries no sanitizer state and stats are bit-identical.
    sanitize: bool = False

    # --- Observability (repro.observe) -----------------------------------
    #: Record structured trace events (Chrome trace_event export). Off by
    #: default: a disabled machine carries no tracer at all, and observed
    #: runs are bit-identical to unobserved ones — observation never
    #: alters timing or control flow.
    trace: bool = False
    #: Where the harness ``trace`` experiment writes the exported JSON.
    trace_path: "str | None" = None
    #: Ring-buffer capacity of the tracer (oldest events drop when full).
    trace_buffer_events: int = 1 << 20
    #: Metrics depth: 0 = off, 1 = per-run aggregates via lazy providers,
    #: 2 = adds per-bank conflict counters and occupancy histograms.
    metrics_level: int = 0
    #: Sampling profiler period in cycles (0 disables the profiler).
    profile_sample_period: int = 0

    # --- Fault injection & protection (repro.faults) --------------------
    #: Seed for the deterministic :class:`repro.faults.FaultPlan`. Must be
    #: set whenever any fault count below is non-zero.
    fault_seed: "int | None" = None
    #: Bit flips struck on SRF reads / DRAM transfer words.
    fault_srf_flips: int = 0
    fault_dram_flips: int = 0
    #: Transient cross-lane grant-drop windows and delayed memory
    #: responses.
    fault_crossbar_drops: int = 0
    fault_memory_delays: int = 0
    #: Fault event cycles are drawn uniformly from ``[0, fault_horizon)``.
    fault_horizon: int = 50_000
    #: Word protection for the SRF banks and for main memory transfers:
    #: "none", "parity" (detect + refetch) or "secded" (correct in
    #: place). Protection also adds modelled area/energy overhead via
    #: :mod:`repro.area`.
    srf_protection: str = "none"
    memory_protection: str = "none"

    # --- Memory system (Table 3) ----------------------------------------
    #: Peak off-chip DRAM bandwidth in bytes/second (9.14 GB/s).
    dram_bandwidth_bytes_per_s: float = 9.14e9
    #: Minimum latency of a DRAM access in cycles.
    dram_latency_cycles: int = 100
    #: Number of DRAM banks (row-buffer locality model).
    dram_banks: int = 8
    #: DRAM row size in words.
    dram_row_words: int = 512
    #: Extra cycles charged when an access misses the open row of a bank.
    dram_row_miss_penalty: int = 24

    # --- Cache (Cache configuration only; Table 3 bottom block) --------
    has_cache: bool = False
    cache_bytes: int = 128 * 1024
    cache_associativity: int = 4
    cache_banks: int = 4
    #: Peak cache bandwidth in bytes/second (16 GB/s).
    cache_bandwidth_bytes_per_s: float = 16e9
    #: Cache line size in words (short lines per vector-cache studies).
    cache_line_words: int = 2
    cache_hit_latency: int = 8

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def srf_words(self) -> int:
        """Total SRF capacity in words."""
        return self.srf_bytes // WORD_BYTES

    @property
    def bank_words(self) -> int:
        """SRF words per bank (one bank per lane)."""
        return self.srf_words // self.lanes

    @property
    def subarray_words(self) -> int:
        """SRF words per sub-array."""
        return self.bank_words // self.subarrays_per_bank

    @property
    def sequential_block_words(self) -> int:
        """Words moved by one sequential SRF access (N x m)."""
        return self.lanes * self.words_per_lane_access

    @property
    def peak_sequential_srf_words_per_cycle(self) -> int:
        """Peak sequential SRF bandwidth in words/cycle (32 in the paper)."""
        return self.sequential_block_words

    @property
    def dram_words_per_cycle(self) -> float:
        """Peak DRAM bandwidth expressed in words per processor cycle."""
        return self.dram_bandwidth_bytes_per_s / self.clock_hz / WORD_BYTES

    @property
    def cache_words_per_cycle(self) -> float:
        """Peak cache bandwidth expressed in words per processor cycle."""
        return self.cache_bandwidth_bytes_per_s / self.clock_hz / WORD_BYTES

    @property
    def peak_flops_per_cycle(self) -> int:
        """Peak compute: one op per pipelined ALU per cycle (32 GFLOPs)."""
        return self.lanes * self.alus_per_cluster

    @property
    def supports_indexing(self) -> bool:
        """True when the SRF accepts indexed accesses (ISRF machines)."""
        return self.srf_mode is SrfMode.INDEXED

    @property
    def faults_enabled(self) -> bool:
        """True when any fault-injection counter is non-zero.

        Faulted runs pin the scalar backend and per-cycle stepping of
        the kernel loop, keeping fault-event interleaving byte-for-byte
        reproducible against the seed fixtures.
        """
        return any((
            self.fault_srf_flips, self.fault_dram_flips,
            self.fault_crossbar_drops, self.fault_memory_delays,
        ))

    @property
    def cache_lines(self) -> int:
        """Total number of cache lines."""
        return self.cache_bytes // (self.cache_line_words * WORD_BYTES)

    @property
    def cache_sets(self) -> int:
        """Number of cache sets (lines / associativity)."""
        return self.cache_lines // self.cache_associativity

    # ------------------------------------------------------------------
    def replace(self, **changes: object) -> "MachineConfig":
        """Return a validated copy with ``changes`` applied."""
        cfg = dataclasses.replace(self, **changes)
        cfg.validate()
        return cfg

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent parameters."""
        if self.lanes <= 0:
            raise ConfigurationError("lanes must be positive")
        if self.srf_bytes % (self.lanes * WORD_BYTES):
            raise ConfigurationError(
                "SRF capacity must divide evenly across lanes"
            )
        if self.subarrays_per_bank <= 0:
            raise ConfigurationError("subarrays_per_bank must be positive")
        if self.bank_words % self.subarrays_per_bank:
            raise ConfigurationError(
                "bank capacity must divide evenly across sub-arrays"
            )
        if self.words_per_lane_access <= 0:
            raise ConfigurationError("words_per_lane_access must be positive")
        if self.stream_buffer_words < self.words_per_lane_access:
            raise ConfigurationError(
                "stream buffers must hold at least one SRF block per lane"
            )
        if self.supports_indexing:
            if self.inlane_indexed_bandwidth <= 0:
                raise ConfigurationError(
                    "indexed machines need inlane_indexed_bandwidth >= 1"
                )
            if self.inlane_indexed_bandwidth > self.subarrays_per_bank:
                raise ConfigurationError(
                    "in-lane indexed bandwidth cannot exceed sub-arrays/bank"
                )
            if self.address_fifo_words <= 0:
                raise ConfigurationError(
                    "indexed machines need a non-empty address FIFO"
                )
        if self.has_cache:
            if self.cache_bytes % (self.cache_line_words * WORD_BYTES):
                raise ConfigurationError(
                    "cache capacity must be a whole number of lines"
                )
            if self.cache_lines % self.cache_associativity:
                raise ConfigurationError(
                    "cache lines must divide evenly into sets"
                )
            if self.cache_sets % self.cache_banks:
                raise ConfigurationError(
                    "cache sets must divide evenly across banks"
                )
        if self.crosslane_network not in ("crossbar", "ring"):
            raise ConfigurationError(
                f"unknown cross-lane network {self.crosslane_network!r}"
            )
        if self.indexed_arbitration not in ("round_robin", "occupancy"):
            raise ConfigurationError(
                f"unknown arbitration policy {self.indexed_arbitration!r}"
            )
        if self.backend not in BACKEND_KINDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r} "
                f"(known: {', '.join(BACKEND_KINDS)})"
            )
        if self.timing_engine not in TIMING_ENGINES:
            raise ConfigurationError(
                f"unknown timing_engine {self.timing_engine!r} "
                f"(known: {', '.join(TIMING_ENGINES)})"
            )
        if self.timing_source not in TIMING_SOURCES:
            raise ConfigurationError(
                f"unknown timing_source {self.timing_source!r} "
                f"(known: {', '.join(TIMING_SOURCES)})"
            )
        if self.deadlock_cycles is not None and self.deadlock_cycles <= 0:
            raise ConfigurationError("deadlock_cycles must be positive")
        if self.trace_buffer_events <= 0:
            raise ConfigurationError("trace_buffer_events must be positive")
        if self.metrics_level not in (0, 1, 2):
            raise ConfigurationError(
                f"metrics_level must be 0, 1 or 2, got {self.metrics_level}"
            )
        if self.profile_sample_period < 0:
            raise ConfigurationError(
                "profile_sample_period must be non-negative"
            )
        fault_counts = (
            self.fault_srf_flips, self.fault_dram_flips,
            self.fault_crossbar_drops, self.fault_memory_delays,
        )
        if any(count < 0 for count in fault_counts):
            raise ConfigurationError("fault counts must be non-negative")
        if any(fault_counts) and self.fault_seed is None:
            raise ConfigurationError(
                "fault injection requires fault_seed (determinism)"
            )
        if self.fault_horizon <= 0:
            raise ConfigurationError("fault_horizon must be positive")
        for protection in (self.srf_protection, self.memory_protection):
            if protection not in PROTECTION_KINDS:
                raise ConfigurationError(
                    f"unknown protection {protection!r} "
                    f"(known: {', '.join(PROTECTION_KINDS)})"
                )
        if self.dram_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("DRAM bandwidth must be positive")
        if self.dram_row_words <= 0 or self.dram_banks <= 0:
            raise ConfigurationError("DRAM geometry must be positive")
