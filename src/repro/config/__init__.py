"""Machine configuration (paper Tables 2 and 3)."""

from repro.config.machine import WORD_BYTES, MachineConfig, SrfMode
from repro.config.presets import (
    all_configs,
    base_config,
    cache_config,
    isrf1_config,
    isrf4_config,
)

__all__ = [
    "WORD_BYTES",
    "MachineConfig",
    "SrfMode",
    "all_configs",
    "base_config",
    "cache_config",
    "isrf1_config",
    "isrf4_config",
]
