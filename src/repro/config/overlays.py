"""Central registry of every ``REPRO_*`` environment overlay.

The simulator is steered by environment variables in exactly one
pattern: a harness CLI flag (or an operator) exports ``REPRO_<NAME>``,
and one owner module parses it into :class:`~repro.config.machine.
MachineConfig` overrides or behaviour switches. Before this registry,
the set of live variables existed only as grep output — a new overlay
could ship undocumented, and the sweep journal's result-affecting
fingerprint (:data:`repro.harness.sweep.RESULT_ENV_VARS`) had to be
maintained by hand.

This module is the single source of truth. Every entry carries the
variable's name, the module that parses it, its scope (``src`` for the
simulator, ``tests``/``tools`` for the suites around it), whether it
changes experiment *results* (and therefore must key sweep journals and
caches), one documentation line, and an example value. ``ENV.md`` at
the repository root is generated from this table
(``python -m repro.selfcheck --write-env-md``) and CI fails when it
drifts.

The ``repro.selfcheck`` overlay pass statically enforces the contract:
any ``os.environ``/``os.getenv`` read of a ``REPRO_*`` name anywhere in
``src/`` must resolve to an entry here (code ``SC201``), and every
``src``-scoped entry must actually be read by its owner module
(``SC203``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnvOverlay:
    """One registered ``REPRO_*`` environment variable."""

    #: Variable name, e.g. ``"REPRO_BACKEND"``.
    name: str
    #: Dotted module that owns (parses) the variable.
    owner: str
    #: One-line description for ``ENV.md``.
    doc: str
    #: Example value, shown verbatim in ``ENV.md``.
    example: str
    #: ``"src"``, ``"tests"`` or ``"tools"`` — where the variable is
    #: read. Only ``src``-scoped entries are enforced by the selfcheck
    #: overlay pass (the others are documented here so ``ENV.md`` is
    #: complete).
    scope: str = "src"
    #: True when the variable changes experiment *results* (not just
    #: speed or diagnostics). These names key the sweep journal
    #: fingerprint so a journal recorded under one overlay is never
    #: served under another.
    result_affecting: bool = False


#: Every known ``REPRO_*`` variable. Keep alphabetical by name within
#: each scope block; ``ENV.md`` and the selfcheck pass both key on this
#: tuple.
OVERLAYS: "tuple[EnvOverlay, ...]" = (
    # --- src: simulator and harness ----------------------------------
    EnvOverlay(
        name="REPRO_BACKEND",
        owner="repro.config.presets",
        doc="Functional-evaluation backend overlaid onto every preset: "
            "scalar (reference) or vector (NumPy lane-batched).",
        example="REPRO_BACKEND=vector",
        result_affecting=True,
    ),
    EnvOverlay(
        name="REPRO_CACHE_DIR",
        owner="repro.harness.resultcache",
        doc="Directory of the harness result cache (and the trace store "
            "under <dir>/traces). Default .repro-cache.",
        example="REPRO_CACHE_DIR=/tmp/repro-cache",
    ),
    EnvOverlay(
        name="REPRO_FAIL_EXPERIMENT",
        owner="repro.harness.runner",
        doc="Test hook: the named harness experiment raises on entry, "
            "for graceful-degradation checks.",
        example="REPRO_FAIL_EXPERIMENT=table4",
    ),
    EnvOverlay(
        name="REPRO_FAULTS",
        owner="repro.faults.plan",
        doc="Fault-injection overlay for every preset: seed, strike "
            "counts (srf/dram/xbar/delay), horizon, protection.",
        example='REPRO_FAULTS="seed=7,srf=24,dram=8,protection=secded"',
        result_affecting=True,
    ),
    EnvOverlay(
        name="REPRO_HANG_EXPERIMENT",
        owner="repro.harness.runner",
        doc="Test hook: the named harness experiment sleeps forever, "
            "for timeout/watchdog checks.",
        example="REPRO_HANG_EXPERIMENT=fig11",
    ),
    EnvOverlay(
        name="REPRO_REPLAY",
        owner="repro.config.presets",
        doc="Timing-source overlay: 1/replay re-times recorded kernel "
            "traces, 0/execute forces functional execution.",
        example="REPRO_REPLAY=1",
        result_affecting=True,
    ),
    EnvOverlay(
        name="REPRO_SCALE",
        owner="repro.harness.figures",
        doc="Workload scale for every harness experiment: small, "
            "medium or paper.",
        example="REPRO_SCALE=paper",
        result_affecting=True,
    ),
    EnvOverlay(
        name="REPRO_STORE_CHAOS",
        owner="repro.store.chaos",
        doc="Deterministic ENOSPC/torn-commit injection into durable "
            "store writes (chaos gate only).",
        example='REPRO_STORE_CHAOS="seed=7,enospc=0.05,torn=0.05"',
    ),
    EnvOverlay(
        name="REPRO_STORE_QUARANTINE_CAP",
        owner="repro.store.durable",
        doc="Maximum quarantined (.bad) entries kept per durable store "
            "directory; oldest evicted beyond it.",
        example="REPRO_STORE_QUARANTINE_CAP=32",
    ),
    EnvOverlay(
        name="REPRO_TIMING_ENGINE",
        owner="repro.config.presets",
        doc="Timing-engine overlay onto every preset: object "
            "(reference) or columnar (calendar-ring batch stepping).",
        example="REPRO_TIMING_ENGINE=columnar",
        result_affecting=True,
    ),
    EnvOverlay(
        name="REPRO_TRACE",
        owner="repro.observe.observer",
        doc="Observability overlay for every preset: tracing, metrics "
            "level, profiler period, export path.",
        example='REPRO_TRACE="trace=1,metrics=2,profile=64"',
        result_affecting=True,
    ),
    # --- tests -------------------------------------------------------
    EnvOverlay(
        name="REPRO_FUZZ_EXAMPLES",
        owner="tests.fuzz.conftest",
        doc="Hypothesis example budget for the fuzz suite (scale up "
            "for soak runs).",
        example="REPRO_FUZZ_EXAMPLES=1000",
        scope="tests",
    ),
    # --- tools -------------------------------------------------------
    EnvOverlay(
        name="REPRO_CHAOS_MARK",
        owner="tools.chaos_sweep",
        doc="Marker the chaos gate plants in worker environments to "
            "find orphaned processes via /proc scans.",
        example="REPRO_CHAOS_MARK=chaos-4711",
        scope="tools",
    ),
)

#: Registered names, for membership tests.
REGISTERED: "frozenset[str]" = frozenset(entry.name for entry in OVERLAYS)

#: Names that change experiment results — the sweep journal fingerprint
#: folds these in (see :func:`repro.harness.sweep.sweep_fingerprint`).
RESULT_AFFECTING: "tuple[str, ...]" = tuple(
    entry.name for entry in OVERLAYS if entry.result_affecting
)


def overlay(name: str) -> EnvOverlay:
    """Look up one registry entry by variable name."""
    for entry in OVERLAYS:
        if entry.name == name:
            return entry
    raise KeyError(f"unregistered environment overlay {name!r}")


_SCOPE_TITLES = (
    ("src", "Simulator and harness"),
    ("tests", "Test suite"),
    ("tools", "Tools"),
)

_HEADER = (
    "# Environment variables",
    "",
    "<!-- Generated from repro.config.overlays by"
    " `python -m repro.selfcheck --write-env-md`."
    " Do not edit by hand: CI fails when this file drifts from the"
    " registry (selfcheck code SC204). -->",
    "",
    "Every `REPRO_*` variable the repository reads, from the central",
    "registry in `src/repro/config/overlays.py`. *Result-affecting*",
    "variables change experiment results (not just speed or",
    "diagnostics); they key the sweep journal and result cache, so two",
    "runs under different values never share cached artifacts.",
)


def render_env_md(entries: "tuple[EnvOverlay, ...]" = OVERLAYS) -> str:
    """Render ``ENV.md`` from ``entries`` (deterministic text).

    Takes the entry tuple as a parameter so the selfcheck drift pass
    can render a *scanned* (possibly mutated fixture) registry with the
    same template the shipped registry uses.
    """
    lines = list(_HEADER)
    for scope, title in _SCOPE_TITLES:
        scoped = [entry for entry in entries if entry.scope == scope]
        if not scoped:
            continue
        lines.append("")
        lines.append(f"## {title}")
        lines.append("")
        lines.append("| Variable | Owner | Results? | Description | Example |")
        lines.append("| --- | --- | --- | --- | --- |")
        for entry in sorted(scoped, key=lambda item: item.name):
            lines.append(
                f"| `{entry.name}` | `{entry.owner}` "
                f"| {'yes' if entry.result_affecting else 'no'} "
                f"| {entry.doc} | `{entry.example}` |"
            )
    lines.append("")
    return "\n".join(lines)
