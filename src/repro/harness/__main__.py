"""Print every reproduced table and figure: ``python -m repro.harness``.

Pass experiment names (``fig11 fig17 area ...``) to run a subset, and
``--json PATH`` to additionally dump the structured results. Set
``REPRO_SCALE`` (small / medium / paper) to choose workload sizes.

``--jobs N`` fans independent experiments across N worker processes;
``--cache-dir DIR`` / ``--no-cache`` control the on-disk result cache
(default ``.repro-cache``, see :mod:`repro.harness.resultcache`).

The harness degrades gracefully: a raising, crashing, or (with
``--timeout``) hung experiment is reported as a structured failure —
and reflected in a non-zero exit code — while every other experiment's
results are still printed and exported. ``--fail-fast`` opts out,
aborting on the first failure.
"""

from __future__ import annotations

import json
import os
import sys

from repro.config.machine import BACKEND_KINDS, TIMING_ENGINES
from repro.config.presets import BACKEND_ENV, REPLAY_ENV, TIMING_ENGINE_ENV
from repro.errors import SweepInterrupted
from repro.harness import figures, runner
from repro.harness.resultcache import default_cache_dir
from repro.harness.sweep import default_sweep_journal
from repro.store.atomic import atomic_write_text

USAGE = """\
usage: python -m repro.harness [EXPERIMENT ...] [options]

Runs every experiment when none is named. Known experiments:
  {experiments}

options:
  --jobs N         run experiments in N parallel worker processes
  --timeout S      per-experiment timeout in seconds (isolated workers)
  --deadline S     total sweep wall-clock budget; past it, unfinished
                   experiments become structured failures (exit 1)
                   instead of running or retrying unbounded
  --resume         continue an interrupted sweep from the journal in
                   the cache directory: journaled completions are
                   served without re-execution (needs the cache)
  --fail-fast      abort on the first failure instead of degrading
  --json PATH      also dump structured results as JSON to PATH
                   (includes durable-store entry/quarantine counts)
  --cache-dir DIR  on-disk benchmark result cache (default {cache_dir})
  --no-cache       disable the on-disk cache for this run
  --trace-path P   output file of the `trace` experiment
                   (default repro-trace.json; load in Perfetto)
  --backend B      functional-evaluation backend for every machine
                   config: scalar (reference) or vector (lane-batched
                   NumPy; bit-identical stats, faster). Equivalent to
                   setting REPRO_BACKEND.
  --replay         trace-replay timing mode: record each benchmark's
                   kernel data once, then re-time later runs and config
                   sweeps from the recorded trace (bit-identical
                   stats). Traces live in <cache-dir>/traces.
                   Equivalent to setting REPRO_REPLAY=1.
  --timing-engine E  cycle engine driving the timing model: object
                   (reference) or columnar (calendar-queue SRF with
                   batch-stepped drain windows; bit-identical stats,
                   faster — falls back to object for faulted /
                   sanitized / traced configs). Equivalent to setting
                   REPRO_TIMING_ENGINE.
  --list           list experiment names and exit

Workload scale is chosen by the REPRO_SCALE environment variable
(small / medium / paper; default small). REPRO_TRACE overlays
observability knobs on every machine config
(e.g. REPRO_TRACE="trace=1,metrics=2,profile=64"); REPRO_BACKEND
overlays the evaluation backend the same way."""


def _usage() -> str:
    return USAGE.format(
        experiments=" ".join(runner.experiment_names()),
        cache_dir=default_cache_dir(),
    )


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    print(_usage(), file=sys.stderr)
    return 2


def _store_stats(cache_dir: "str | None") -> dict:
    """Durable-store health (entries, quarantined, tmp) for --json.

    Quarantine counts make silent corruption visible: a torn or
    undecodable entry costs a recompute, but the operator should see
    that it happened.
    """
    if cache_dir is None:
        return {}
    from repro.harness.resultcache import ResultCache
    from repro.machine.replay import TraceStore

    stats = {"results": ResultCache(cache_dir).stats()}
    traces_dir = os.path.join(cache_dir, "traces")
    if os.path.isdir(traces_dir):
        stats["traces"] = TraceStore(traces_dir).stats()
    return stats


def _parse_args(argv):
    """Split argv into (names, options) or raise ValueError."""
    options = {"json": None, "jobs": 1, "cache_dir": default_cache_dir(),
               "no_cache": False, "list": False, "timeout": None,
               "fail_fast": False, "trace_path": None, "backend": None,
               "replay": False, "deadline": None, "resume": False,
               "timing_engine": None}
    names = []
    position = 0
    while position < len(argv):
        token = argv[position]
        if token in ("--json", "--jobs", "--cache-dir", "--timeout",
                     "--trace-path", "--backend", "--deadline",
                     "--timing-engine"):
            if position + 1 >= len(argv):
                raise ValueError(f"{token} requires a value")
            value = argv[position + 1]
            if token == "--json":
                options["json"] = value
            elif token == "--cache-dir":
                options["cache_dir"] = value
            elif token == "--trace-path":
                options["trace_path"] = value
            elif token == "--backend":
                if value not in BACKEND_KINDS:
                    raise ValueError(
                        f"--backend must be one of "
                        f"{', '.join(BACKEND_KINDS)}; got {value!r}"
                    )
                options["backend"] = value
            elif token == "--timing-engine":
                if value not in TIMING_ENGINES:
                    raise ValueError(
                        f"--timing-engine must be one of "
                        f"{', '.join(TIMING_ENGINES)}; got {value!r}"
                    )
                options["timing_engine"] = value
            elif token in ("--timeout", "--deadline"):
                field = token.lstrip("-")
                try:
                    options[field] = float(value)
                except ValueError:
                    raise ValueError(
                        f"{token} needs a number of seconds, got "
                        f"{value!r}"
                    ) from None
                if options[field] <= 0:
                    raise ValueError(f"{token} must be positive")
            else:
                try:
                    options["jobs"] = int(value)
                except ValueError:
                    raise ValueError(
                        f"--jobs needs an integer, got {value!r}"
                    ) from None
                if options["jobs"] < 1:
                    raise ValueError("--jobs must be >= 1")
            position += 2
            continue
        if token == "--no-cache":
            options["no_cache"] = True
        elif token == "--resume":
            options["resume"] = True
        elif token == "--replay":
            options["replay"] = True
        elif token == "--fail-fast":
            options["fail_fast"] = True
        elif token == "--list":
            options["list"] = True
        elif token in ("-h", "--help"):
            options["help"] = True
        elif token.startswith("-"):
            raise ValueError(f"unknown option {token}")
        else:
            names.append(token)
        position += 1
    return names, options


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    try:
        names, options = _parse_args(argv)
    except ValueError as exc:
        return _fail(str(exc))
    if options.get("help"):
        print(_usage())
        return 0
    if options["list"]:
        for name in runner.experiment_names():
            print(name)
        return 0
    known = runner.experiment_names()
    unknown = [name for name in names if name not in known]
    if unknown:
        return _fail(f"unknown experiment(s): {', '.join(unknown)}")
    selected = [name for name in known if name in set(names)] if names \
        else known
    if options["json"] is not None:
        # Validate up front: discovering a bad path only after every
        # experiment ran would discard all their results.
        json_dir = os.path.dirname(os.path.abspath(options["json"]))
        if not os.path.isdir(json_dir):
            return _fail(
                f"--json: directory {json_dir!r} does not exist"
            )

    cache_dir = None if options["no_cache"] else options["cache_dir"]
    if options["resume"] and cache_dir is None:
        return _fail("--resume requires the on-disk cache (no --no-cache)")
    # Backend travels via the environment: forked workers inherit it,
    # and the preset factories overlay it onto every machine config.
    if options["backend"] is not None:
        os.environ[BACKEND_ENV] = options["backend"]
    # So does the replay timing source.
    if options["replay"]:
        os.environ[REPLAY_ENV] = "1"
    # And the timing engine.
    if options["timing_engine"] is not None:
        os.environ[TIMING_ENGINE_ENV] = options["timing_engine"]
    # Forked workers inherit the path, so isolated runs see it too.
    figures.set_trace_path(options["trace_path"])
    scale = figures.default_scale()
    print(f"# repro harness (scale: {scale}, jobs: {options['jobs']})\n")
    sweep_journal = (default_sweep_journal(cache_dir)
                     if cache_dir is not None else None)
    try:
        results, timings = runner.run_many(
            selected, jobs=options["jobs"], cache_dir=cache_dir,
            timeout=options["timeout"], fail_fast=options["fail_fast"],
            deadline=options["deadline"], sweep_journal=sweep_journal,
            resume=options["resume"],
        )
    except runner.ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except SweepInterrupted as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 130
    collected = {}
    failures = []
    for name in selected:
        result = results[name]
        if runner.failed(result):
            failures.append(name)
            print(
                f"FAILED {name} (attempts: {result['attempts']}): "
                f"{result['error']}"
            )
            print(f"[{name}: {timings[name]:.1f}s]\n")
            collected[name] = _jsonable(result)
        else:
            print(result["text"])
            print(f"[{name}: {timings[name]:.1f}s]\n")
            collected[name] = {"status": "ok"}
            collected[name].update(
                _jsonable({k: v for k, v in result.items() if k != "text"})
            )
    store_stats = _store_stats(cache_dir)
    quarantined = sum(
        block.get("quarantined", 0) for block in store_stats.values()
    )
    if quarantined:
        # Silent corruption must be visible: quarantined entries mean
        # torn or undecodable store files were detected and recomputed.
        print(
            f"warning: {quarantined} quarantined store entr"
            f"{'y' if quarantined == 1 else 'ies'} under {cache_dir}",
            file=sys.stderr,
        )
    if options["json"] is not None:
        payload = {
            "scale": scale,
            "jobs": options["jobs"],
            "timings_s": {k: round(v, 3) for k, v in timings.items()},
            "experiments": collected,
        }
        if store_stats:
            payload["store"] = store_stats
        # Atomic + durable: a crash mid-dump must not leave a torn
        # report for a consumer to half-parse.
        atomic_write_text(options["json"], json.dumps(payload, indent=2))
        print(f"wrote {options['json']}")
    if failures:
        print(
            f"error: {len(failures)} experiment(s) failed: "
            f"{', '.join(failures)}", file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
