"""Print every reproduced table and figure: ``python -m repro.harness``.

Pass experiment names (``fig11 fig17 area ...``) to run a subset, and
``--json PATH`` to additionally dump the structured results. Set
``REPRO_SCALE`` (small / medium / paper) to choose workload sizes.
"""

from __future__ import annotations

import json
import sys
import time

from repro.harness import figures


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    json_path = None
    if "--json" in argv:
        position = argv.index("--json")
        json_path = argv[position + 1]
        argv = argv[:position] + argv[position + 2:]
    wanted = set(argv)
    experiments = [
        ("table3", figures.table3),
        ("table4", figures.table4),
        ("area", figures.area_overheads),
        ("energy", figures.energy_table),
        ("energy_cmp", figures.energy_comparison),
        ("fig11", figures.figure11),
        ("fig12", figures.figure12),
        ("fig13", figures.figure13),
        ("fig14", figures.figure14),
        ("fig15", figures.figure15),
        ("fig16", figures.figure16),
        ("fig17", figures.figure17),
        ("fig18", figures.figure18),
        ("headline", figures.headline),
    ]
    scale = figures.default_scale()
    print(f"# repro harness (scale: {scale})\n")
    collected = {}
    for name, fn in experiments:
        if wanted and name not in wanted:
            continue
        start = time.time()
        result = fn()
        print(result["text"])
        print(f"[{name}: {time.time() - start:.1f}s]\n")
        collected[name] = {
            k: _jsonable(v) for k, v in result.items() if k != "text"
        }
    if json_path is not None:
        with open(json_path, "w") as handle:
            json.dump({"scale": scale, "experiments": collected}, handle,
                      indent=2)
        print(f"wrote {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
