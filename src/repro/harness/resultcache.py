"""Keyed on-disk cache for benchmark results.

Running the full figure suite re-simulates the same (benchmark, config,
scale) triples many times across processes and invocations. The
:class:`ResultCache` persists each verified :class:`AppResult` to disk so
repeat runs — and the worker processes of the parallel runner — can skip
the simulation entirely.

Keys combine a *code fingerprint* (a hash over every ``repro`` source
file) with the benchmark name, a :func:`config_fingerprint` over EVERY
field of the machine configuration, and the workload scale, so any
source change or config tweak invalidates the cache automatically.
Deleting the cache directory (default ``.repro-cache``, overridable via
``REPRO_CACHE_DIR``) is always safe.

Both fingerprints live in :mod:`repro.fingerprint` (shared with the
kernel trace store of :mod:`repro.machine.replay`) and are re-exported
here for compatibility; the code fingerprint is memoized per process,
so constructing a second :class:`ResultCache` does no file I/O.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile

from repro.fingerprint import code_fingerprint, config_fingerprint

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "code_fingerprint",
    "config_fingerprint",
    "default_cache_dir",
]

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


class ResultCache:
    """Pickle-per-entry disk cache of benchmark results.

    Writes are atomic (temp file + :func:`os.replace`) so concurrent
    worker processes can share one cache directory without locking: the
    worst case is two workers computing the same entry, and last-write
    wins with identical content.
    """

    def __init__(self, directory: "str | None" = None):
        self.directory = directory or default_cache_dir()
        self._fingerprint = code_fingerprint()

    # ------------------------------------------------------------------
    def key(self, benchmark: str, config, scale: str) -> str:
        """Stable key for one (benchmark, config, scale) triple."""
        payload = "\n".join(
            [self._fingerprint, benchmark, config_fingerprint(config),
             scale]
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.pkl")

    # ------------------------------------------------------------------
    def get(self, benchmark: str, config, scale: str):
        """Cached result, or None on miss / unreadable entry.

        A present-but-unreadable entry (truncated write, stale class
        layout, garbage) is *quarantined* — renamed to ``<key>.pkl.bad``
        — so it is not re-parsed on every subsequent run; a later
        :meth:`put` recreates the entry cleanly.
        """
        path = self._path(self.key(benchmark, config, scale))
        try:
            handle = open(path, "rb")
        except OSError:
            return None  # plain miss
        try:
            with handle:
                return pickle.load(handle)
        except Exception:
            self._quarantine(path)
            return None  # corrupt/stale entry: recompute

    @staticmethod
    def _quarantine(path: str) -> None:
        try:
            os.replace(path, path + ".bad")
        except OSError:
            pass

    def put(self, benchmark: str, config, scale: str, result) -> None:
        """Store a result; failures to write are non-fatal.

        The temp file is removed on *any* failure — including
        non-``OSError`` ones such as an unpicklable result — so aborted
        writes cannot litter the cache directory.
        """
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(self.key(benchmark, config, scale))
        fd, temp_path = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(
                        result, handle, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(temp_path, path)
            except Exception:
                pass
        finally:
            if os.path.exists(temp_path):
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def clear(self) -> "int":
        """Delete all cache entries; returns how many were removed.

        Leftover temp files and quarantined (``.bad``) entries are
        deleted too but not counted — the return value is the number of
        actual cache entries, as the name promises.
        """
        removed = 0
        try:
            entries = os.listdir(self.directory)
        except OSError:
            return 0
        for filename in entries:
            if filename.endswith((".pkl", ".tmp", ".bad")):
                try:
                    os.unlink(os.path.join(self.directory, filename))
                except OSError:
                    continue
                if filename.endswith(".pkl"):
                    removed += 1
        return removed
