"""Keyed on-disk cache for benchmark results.

Running the full figure suite re-simulates the same (benchmark, config,
scale) triples many times across processes and invocations. The
:class:`ResultCache` persists each verified :class:`AppResult` to disk so
repeat runs — and the worker processes of the parallel runner — can skip
the simulation entirely.

Keys combine a *code fingerprint* (a hash over every ``repro`` source
file) with the benchmark name, a :func:`config_fingerprint` over EVERY
field of the machine configuration, and the workload scale, so any
source change or config tweak invalidates the cache automatically.
Deleting the cache directory (default ``.repro-cache``, overridable via
``REPRO_CACHE_DIR``) is always safe.

Durability is delegated wholesale to
:class:`repro.store.DurableStore`: entries are journaled in a manifest
before they become visible, verified against a SHA-256 checksum on
every read, quarantined (bounded) when torn or undecodable, and
recovered after crashes — the cache itself is just the pickle codec
and the key schema. Both fingerprints live in
:mod:`repro.fingerprint` (shared with the kernel trace store of
:mod:`repro.machine.replay`) and are re-exported here for
compatibility; the code fingerprint is memoized per process, so
constructing a second :class:`ResultCache` does no file I/O.
"""

from __future__ import annotations

import hashlib
import os
import pickle

from repro.fingerprint import code_fingerprint, config_fingerprint
from repro.store import DurableStore

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "code_fingerprint",
    "config_fingerprint",
    "default_cache_dir",
]

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


class ResultCache:
    """Pickle codec over a :class:`~repro.store.DurableStore`.

    Concurrent worker processes share one cache directory safely: the
    store serializes writes through its advisory lock, readers verify
    checksums, and the worst case is two workers computing the same
    entry, last-write-wins with identical content.
    """

    def __init__(self, directory: "str | None" = None):
        self.directory = directory or default_cache_dir()
        self._fingerprint = code_fingerprint()
        self._store = DurableStore(self.directory, suffix=".pkl")

    # ------------------------------------------------------------------
    def key(self, benchmark: str, config, scale: str) -> str:
        """Stable key for one (benchmark, config, scale) triple."""
        payload = "\n".join(
            [self._fingerprint, benchmark, config_fingerprint(config),
             scale]
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> str:
        return self._store.path(key)

    # ------------------------------------------------------------------
    def get(self, benchmark: str, config, scale: str):
        """Cached result, or None on miss / unreadable entry.

        A present-but-unusable entry — torn write (checksum mismatch),
        unjournaled file, stale class layout, garbage — is *quarantined*
        (renamed to ``<key>.pkl.bad``, bounded per directory) so it is
        not re-parsed on every subsequent run; a later :meth:`put`
        recreates the entry cleanly.
        """
        key = self.key(benchmark, config, scale)
        data = self._store.get_bytes(key)
        if data is None:
            return None
        try:
            return pickle.loads(data)
        except Exception:
            # Checksum-valid bytes that no longer unpickle (e.g. a
            # result class changed shape without a source edit the
            # fingerprint could see): quarantine and recompute.
            self._store.quarantine(key)
            return None

    def put(self, benchmark: str, config, scale: str, result) -> None:
        """Store a result; failures to write are non-fatal.

        Serialization failures (an unpicklable result) and write
        failures (ENOSPC, permissions) leave the store untouched — no
        temp files, no manifest entry.
        """
        try:
            data = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return
        self._store.put_bytes(self.key(benchmark, config, scale), data)

    # ------------------------------------------------------------------
    def clear(self) -> "int":
        """Delete all cache entries; returns how many were removed.

        Leftover temp files and quarantined (``.bad``) entries are
        deleted too but not counted — the return value is the number of
        actual cache entries, as the name promises.
        """
        return self._store.clear()

    def stats(self) -> dict:
        """Entry/quarantine counts (surfaced in harness ``--json``)."""
        return self._store.stats()

    def quarantine_count(self) -> int:
        return self._store.quarantine_count()
