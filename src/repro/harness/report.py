"""Plain-text rendering of experiment tables and series."""

from __future__ import annotations


def format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(title: str, headers: list, rows: list) -> str:
    """Render an ASCII table with a title line."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[col])),
            max((len(row[col]) for row in cells), default=0))
        for col in range(len(headers))
    ]

    def line(parts):
        return "  ".join(str(p).rjust(w) for p, w in zip(parts, widths))

    out = [title, line(headers), line("-" * w for w in widths)]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_grid(title: str, row_label: str, row_keys: list,
                col_label: str, col_keys: list, values: dict) -> str:
    """Render a 2D sweep: ``values[(row, col)]`` keyed by sweep points."""
    headers = [f"{row_label}\\{col_label}"] + [str(c) for c in col_keys]
    rows = [
        [str(r)] + [values[(r, c)] for c in col_keys] for r in row_keys
    ]
    return render_table(title, headers, rows)
