"""Experiment runners: one function per table/figure of the paper.

Every function returns plain data (lists/dicts) plus a rendered text
table, so the pytest-benchmark harness under ``benchmarks/`` can both
time the experiment and print the same rows/series the paper reports.

Workload sizes are selected by a *scale*:

=========  =====================================================
``small``  seconds per experiment — CI-friendly default
``medium`` tens of seconds — tighter statistics
``paper``  the paper's exact workload sizes (64x64 FFT, 4096-way
           sort, 256x256 filter, Table 4 strips) — minutes
=========  =====================================================

Set the ``REPRO_SCALE`` environment variable to override the default.
The *shapes* under study are size-independent; absolute cycle counts
are not comparable to the Imagine testbed either way (see DESIGN.md).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro import observe
from repro.apps import (
    fft, filter2d, igraph, microbench, rijndael, sort, spmv, stencil,
)
from repro.apps.common import AppResult
from repro.area.energy import EnergyModel
from repro.area.floorplan import DieModel
from repro.area.sram import SrfAreaModel
from repro.config.presets import all_configs, base_config, isrf4_config
from repro.harness.report import render_grid, render_table
from repro.harness.resultcache import config_fingerprint
from repro.kernel.resources import ClusterResources
from repro.kernel.scheduler import ModuloScheduler

SCALES = {
    "small": dict(fft_n=16, rijndael_blocks=4, sort_n=512,
                  filter_size=(32, 32), ig_nodes=384, ig_strips=2,
                  spmv_shape=(96, 96, 6), spmv_strips=2,
                  stencil_size=(16, 32)),
    "medium": dict(fft_n=32, rijndael_blocks=8, sort_n=1024,
                   filter_size=(64, 64), ig_nodes=768, ig_strips=3,
                   spmv_shape=(192, 192, 8), spmv_strips=3,
                   stencil_size=(32, 64)),
    "paper": dict(fft_n=64, rijndael_blocks=16, sort_n=4096,
                  filter_size=(256, 256), ig_nodes=4096, ig_strips=4,
                  spmv_shape=(512, 512, 10), spmv_strips=4,
                  stencil_size=(64, 128)),
}

#: Figure 11/12 benchmark order, as in the paper. The sparse suite is
#: deliberately NOT in this tuple: the paper figures enumerate exactly
#: the paper's eight applications, and the sparse/stencil workloads get
#: their own ``sparse``/``locality`` experiments below.
BENCHMARKS = (
    "FFT 2D", "Rijndael", "Sort", "Filter",
    "IG_SML", "IG_DMS", "IG_DCS", "IG_SCL",
)

#: The ISSUE-10 sparse & stencil workload suite (own experiments).
SPARSE_BENCHMARKS = ("SpMV_CSR", "SpMV_CSC", "Stencil_STAR", "Stencil_BOX")

_run_cache = {}

#: Optional on-disk cache (see :mod:`repro.harness.resultcache`),
#: installed by the CLI / parallel runner via :func:`set_result_cache`.
_result_cache = None

#: On-disk store of recorded kernel traces for replay-mode configs
#: (see :mod:`repro.machine.replay`), installed by the parallel runner
#: via :func:`set_trace_store`; created lazily under the default cache
#: directory the first time a replay-mode benchmark runs without one.
_trace_store = None


def default_scale() -> str:
    scale = os.environ.get("REPRO_SCALE", "small")
    if scale not in SCALES:
        raise ValueError(f"unknown REPRO_SCALE {scale!r}")
    return scale


def clear_cache() -> None:
    _run_cache.clear()


def set_result_cache(cache) -> None:
    """Install (or with None, remove) a disk cache behind run_benchmark."""
    global _result_cache
    _result_cache = cache


def set_trace_store(store) -> None:
    """Install (or with None, remove) the replay trace store."""
    global _trace_store
    _trace_store = store


def _replay_store():
    global _trace_store
    if _trace_store is None:
        from repro.machine.replay import TraceStore

        _trace_store = TraceStore()
    return _trace_store


#: Explicit trace output path (CLI ``--trace-path``); overrides the
#: ``REPRO_TRACE`` path and the default.
_trace_path = None

#: Default trace export filename of the ``trace`` experiment.
DEFAULT_TRACE_PATH = "repro-trace.json"


def set_trace_path(path: "str | None") -> None:
    """Install (or with None, remove) the trace experiment output path."""
    global _trace_path
    _trace_path = path


def trace_output_path() -> str:
    """Where the ``trace`` experiment writes its Perfetto JSON.

    Precedence: CLI ``--trace-path`` > ``REPRO_TRACE``'s ``path=`` key >
    :data:`DEFAULT_TRACE_PATH`.
    """
    if _trace_path is not None:
        return _trace_path
    env = observe.trace_overrides_from_env().get("trace_path")
    return env or DEFAULT_TRACE_PATH


def run_benchmark(name: str, config, scale: str) -> AppResult:
    """Run (and cache) one benchmark on one machine configuration."""
    # Key on a fingerprint of every config field: the config *name*
    # alone would alias derived variants (separation sweeps,
    # fast_forward or backend toggles), and repr() would miss any
    # field declared with repr=False.
    key = (name, config_fingerprint(config), scale)
    if key in _run_cache:
        return _run_cache[key]
    if _result_cache is not None:
        cached = _result_cache.get(name, config, scale)
        if cached is not None:
            _run_cache[key] = cached
            return cached
    if config.timing_source == "replay" and not config.faults_enabled:
        # Record the kernel trace on the first run of a functional
        # config; replay it on every later one (including under
        # different timing-only parameters). The trace is saved only
        # after the result verified — an unverified run publishes
        # nothing. Faulted configs always execute (flips change data).
        from repro.machine import replay

        with replay.session(_replay_store(), name, config, scale):
            result = _simulate(name, config, scale)
    else:
        result = _simulate(name, config, scale)
    _run_cache[key] = result
    if _result_cache is not None:
        _result_cache.put(name, config, scale, result)
    return result


def _simulate(name: str, config, scale: str) -> AppResult:
    """Simulate one benchmark fresh and verify it (no caches)."""
    params = SCALES[scale]
    if name == "FFT 2D":
        result = fft.run(config, n=params["fft_n"])
    elif name == "Rijndael":
        result = rijndael.run(
            config, blocks_per_lane=params["rijndael_blocks"]
        )
    elif name == "Sort":
        result = sort.run(config, n=params["sort_n"])
    elif name == "Filter":
        height, width = params["filter_size"]
        result = filter2d.run(config, height=height, width=width)
    elif name.startswith("IG_"):
        result = igraph.run(config, dataset=name, nodes=params["ig_nodes"],
                            strips_to_run=params["ig_strips"])
    elif name.startswith("SpMV_"):
        # "SpMV_CSR@clustered" selects a non-default index ordering; the
        # suffix keeps run_benchmark's (name, config, scale) cache keys
        # distinct across the locality sweep's variants.
        fmt, _, ordering = name[len("SpMV_"):].partition("@")
        rows, cols, avg_nnz = params["spmv_shape"]
        result = spmv.run(config, fmt=fmt.lower(), rows=rows, cols=cols,
                          avg_nnz=avg_nnz, ordering=ordering or "sorted",
                          strips_to_run=params["spmv_strips"])
    elif name.startswith("Stencil_"):
        height, width = params["stencil_size"]
        result = stencil.run(config, pattern=name[len("Stencil_"):].lower(),
                             height=height, width=width)
    else:
        raise ValueError(f"unknown benchmark {name!r}")
    result.require_verified()
    return result


def _work_units(result: AppResult) -> float:
    """Per-benchmark work normaliser (IG strips differ between configs;
    the sparse suite normalises per nonzero / per pixel)."""
    details = result.details
    for key in ("edges_processed", "nnz_processed", "pixels_processed"):
        if key in details:
            return float(details[key])
    return 1.0


# ----------------------------------------------------------------------
# Figure 11: off-chip memory traffic normalised to Base
# ----------------------------------------------------------------------
def figure11(scale: "str | None" = None) -> dict:
    scale = scale or default_scale()
    configs = all_configs()
    rows = []
    data = {}
    for name in BENCHMARKS:
        base = run_benchmark(name, configs["Base"], scale)
        base_traffic = base.offchip_words / _work_units(base)
        row = [name]
        for config_name in ("ISRF4", "Cache"):
            result = run_benchmark(name, configs[config_name], scale)
            normalised = (
                result.offchip_words / _work_units(result)
            ) / base_traffic
            label = "ISRF" if config_name == "ISRF4" else "Cache"
            data[(name, label)] = normalised
            row.append(normalised)
        rows.append(row)
    text = render_table(
        "Figure 11: off-chip memory traffic normalised to Base",
        ["benchmark", "ISRF", "Cache"], rows,
    )
    return {"data": data, "rows": rows, "text": text}


# ----------------------------------------------------------------------
# Figure 12: execution-time breakdown normalised to Base
# ----------------------------------------------------------------------
def figure12(scale: "str | None" = None) -> dict:
    scale = scale or default_scale()
    configs = all_configs()
    rows = []
    data = {}
    for name in BENCHMARKS:
        base = run_benchmark(name, configs["Base"], scale)
        base_time = base.cycles / _work_units(base)
        for config_name, config in configs.items():
            result = run_benchmark(name, config, scale)
            unit = _work_units(result)
            breakdown = result.stats.breakdown()
            scale_factor = 1.0 / unit / base_time
            entry = {
                "loop": breakdown["kernel_loop_body"] * scale_factor,
                "srf_stall": breakdown["srf_stall"] * scale_factor,
                "mem_stall": breakdown["memory_stall"] * scale_factor,
                "overhead": (breakdown["kernel_overheads"]
                             + breakdown["idle"]) * scale_factor,
            }
            entry["total"] = result.cycles / unit / base_time
            data[(name, config_name)] = entry
            rows.append([name, config_name, entry["loop"],
                         entry["srf_stall"], entry["mem_stall"],
                         entry["overhead"], entry["total"]])
    text = render_table(
        "Figure 12: execution time normalised to Base "
        "(loop body / SRF stall / memory stall / overheads)",
        ["benchmark", "config", "loop", "srf", "mem", "ovh", "total"],
        rows,
    )
    return {"data": data, "rows": rows, "text": text}


def speedup(name: str, config_name: str = "ISRF4",
            scale: "str | None" = None) -> float:
    """Base-relative speedup of one benchmark (per unit of work)."""
    scale = scale or default_scale()
    configs = all_configs()
    base = run_benchmark(name, configs["Base"], scale)
    other = run_benchmark(name, configs[config_name], scale)
    return (base.cycles / _work_units(base)) / (
        other.cycles / _work_units(other)
    )


# ----------------------------------------------------------------------
# Figure 13: sustained SRF bandwidth demands (ISRF4 main loops)
# ----------------------------------------------------------------------
_FIG13_KERNELS = {
    "FFT 2D": ("FFT 2D", "fft_col"),
    "Rijndael": ("Rijndael", "rijndael_isrf"),
    "Sort1": ("Sort", "sort1"),
    "Sort2": ("Sort", "sort2"),
    "Filter": ("Filter", "filter"),
    "IG_SML": ("IG_SML", "igraph_isrf"),
    "IG_SCL": ("IG_SCL", "igraph_isrf"),
    "IG_DMS": ("IG_DMS", "igraph_isrf"),
    "IG_DCS": ("IG_DCS", "igraph_isrf"),
}


def figure13(scale: "str | None" = None) -> dict:
    scale = scale or default_scale()
    config = isrf4_config()
    rows = []
    data = {}
    for label, (bench, prefix) in _FIG13_KERNELS.items():
        result = run_benchmark(bench, config, scale)
        runs = [r for r in result.stats.kernel_runs
                if r.kernel_name.startswith(prefix)]
        cycles = sum(r.total_cycles for r in runs) or 1
        lanes = runs[0].lanes if runs else 8
        seq = sum(r.sequential_words for r in runs) / cycles / lanes
        inlane = sum(r.inlane_words + r.indexed_write_words
                     for r in runs) / cycles / lanes
        cross = sum(r.crosslane_words for r in runs) / cycles / lanes
        data[label] = {"sequential": seq, "inlane": inlane,
                       "crosslane": cross}
        rows.append([label, seq, cross, inlane])
    text = render_table(
        "Figure 13: sustained SRF bandwidth (words/cycle/cluster, ISRF4)",
        ["kernel", "sequential", "cross-lane idx", "in-lane idx"], rows,
    )
    return {"data": data, "rows": rows, "text": text}


# ----------------------------------------------------------------------
# Figure 14: static schedule length vs address-data separation
# ----------------------------------------------------------------------
def _figure14_kernels() -> dict:
    """The seven kernels of Figure 14 (IGraph1/2 are cross-lane)."""
    from repro.apps import aes
    from repro.apps.fft import Fft2dBenchmark
    from repro.apps.filter2d import FilterBenchmark
    from repro.apps.igraph import IgBenchmark, TABLE4
    from repro.apps.rijndael import build_isrf_kernel
    from repro.apps.sort import build_inlane_merge_kernel

    cfg = isrf4_config()
    fft_bench = Fft2dBenchmark(cfg, n=16)
    filter_bench = FilterBenchmark(cfg, height=16, width=32)
    round_keys = aes.expand_key(bytes(range(16)))
    ig1 = IgBenchmark(cfg, TABLE4["IG_SML"], nodes=128)
    ig2 = IgBenchmark(cfg, TABLE4["IG_SCL"], nodes=128)
    return {
        "FFT2D": (fft_bench.col_kernel, "inlane"),
        "Rijndael": (build_isrf_kernel(round_keys, (0, 0, 0, 0)), "inlane"),
        "Sort1": (build_inlane_merge_kernel(4, "sort1"), "inlane"),
        "Sort2": (build_inlane_merge_kernel(64, "sort2"), "inlane"),
        "Filter": (filter_bench.kernel, "inlane"),
        "IGraph1": (ig1.edge_kernel, "crosslane"),
        "IGraph2": (ig2.edge_kernel, "crosslane"),
    }


def figure14(separations=(2, 4, 6, 8, 10, 12, 16, 20, 24)) -> dict:
    scheduler = ModuloScheduler(ClusterResources())
    kernels = _figure14_kernels()
    data = {}
    for name, (kernel, kind) in kernels.items():
        series = {}
        for sep in separations:
            if kind == "inlane" and sep > 10:
                continue
            inlane = sep if kind == "inlane" else 6
            cross = sep if kind == "crosslane" else 20
            schedule = scheduler.schedule(
                kernel, inlane_separation=inlane, crosslane_separation=cross
            )
            series[sep] = schedule.loop_length
        first = series[min(series)]
        data[name] = {sep: ii / first for sep, ii in series.items()}
    cols = list(separations)
    values = {
        (name, sep): (f"{data[name][sep]:.2f}" if sep in data[name] else "-")
        for name in kernels for sep in cols
    }
    text = render_grid(
        "Figure 14: static schedule (loop) length vs addr-data separation "
        "(normalised to smallest separation)",
        "kernel", list(kernels), "sep", cols, values,
    )
    return {"data": data, "text": text}


# ----------------------------------------------------------------------
# Figures 15/16: kernel execution time vs separation (machine runs)
# ----------------------------------------------------------------------
_FIG15_KERNELS = {
    "FFT2D": ("FFT 2D", "fft_col"),
    "Rijndael": ("Rijndael", "rijndael_isrf"),
    "Filter": ("Filter", "filter"),
    "Sort1": ("Sort", "sort1"),
    "Sort2": ("Sort", "sort2"),
}


def _kernel_time(result: AppResult, prefix: str) -> float:
    runs = [r for r in result.stats.kernel_runs
            if r.kernel_name.startswith(prefix)]
    total = sum(r.total_cycles for r in runs)
    return total / max(1, len(runs))


def figure15(separations=(2, 4, 6, 8, 10),
             scale: "str | None" = None) -> dict:
    scale = scale or default_scale()
    data = {name: {} for name in _FIG15_KERNELS}
    for sep in separations:
        config = isrf4_config(inlane_addr_data_separation=sep)
        for name, (bench, prefix) in _FIG15_KERNELS.items():
            result = run_benchmark(bench, config, scale)
            data[name][sep] = _kernel_time(result, prefix)
    normalised = {
        name: {sep: v / series[separations[0]]
               for sep, v in series.items()}
        for name, series in data.items()
    }
    values = {
        (name, sep): f"{normalised[name][sep]:.3f}"
        for name in data for sep in separations
    }
    text = render_grid(
        "Figure 15: in-lane kernel execution time vs separation "
        "(normalised to smallest separation)",
        "kernel", list(data), "sep", list(separations), values,
    )
    return {"data": normalised, "raw": data, "text": text}


def figure16(separations=(4, 8, 12, 16, 20, 24),
             scale: "str | None" = None) -> dict:
    scale = scale or default_scale()
    series = {"IGraph1": "IG_SML", "IGraph2": "IG_SCL"}
    data = {name: {} for name in series}
    for sep in separations:
        config = isrf4_config(crosslane_addr_data_separation=sep)
        for name, bench in series.items():
            result = run_benchmark(bench, config, scale)
            data[name][sep] = _kernel_time(result, "igraph_isrf")
    normalised = {
        name: {sep: v / s[separations[0]] for sep, v in s.items()}
        for name, s in data.items()
    }
    values = {
        (name, sep): f"{normalised[name][sep]:.3f}"
        for name in data for sep in separations
    }
    text = render_grid(
        "Figure 16: cross-lane kernel execution time vs separation "
        "(normalised to smallest separation)",
        "kernel", list(data), "sep", list(separations), values,
    )
    return {"data": normalised, "raw": data, "text": text}


# ----------------------------------------------------------------------
# Figures 17/18: SRF throughput microbenchmarks
# ----------------------------------------------------------------------
def figure17(subarrays=(1, 2, 4, 8), fifo_sizes=(1, 2, 4, 6, 8),
             cycles: int = 1500) -> dict:
    data = {}
    for s in subarrays:
        for f in fifo_sizes:
            result = microbench.inlane_random_read_throughput(
                subarrays=s, fifo_entries=f, cycles=cycles
            )
            data[(s, f)] = result.words_per_cycle_per_lane
    values = {k: f"{v:.2f}" for k, v in data.items()}
    text = render_grid(
        "Figure 17: in-lane indexed throughput (words/cycle/lane)",
        "sub-arrays", list(subarrays), "FIFO", list(fifo_sizes), values,
    )
    return {"data": data, "text": text}


def figure18(ports=(1, 2, 4), occupancies=(0.0, 0.2, 0.4, 0.6, 0.8),
             cycles: int = 1500) -> dict:
    data = {}
    for p in ports:
        for occ in occupancies:
            result = microbench.crosslane_random_read_throughput(
                ports_per_bank=p, comm_occupancy=occ, cycles=cycles
            )
            data[(p, occ)] = result.words_per_cycle_per_lane
    values = {k: f"{v:.3f}" for k, v in data.items()}
    text = render_grid(
        "Figure 18: cross-lane indexed throughput (words/cycle/lane)",
        "ports/bank", list(ports), "comm%", list(occupancies), values,
    )
    return {"data": data, "text": text}


# ----------------------------------------------------------------------
# Tables and §4.6 quantities
# ----------------------------------------------------------------------
def table3() -> dict:
    configs = all_configs()
    rows = []
    for name, cfg in configs.items():
        rows.append([
            name, cfg.lanes, cfg.srf_bytes // 1024,
            cfg.peak_sequential_srf_words_per_cycle,
            cfg.inlane_indexed_bandwidth or "-",
            cfg.crosslane_indexed_bandwidth or "-",
            cfg.cache_bytes // 1024 if cfg.has_cache else "-",
        ])
    text = render_table(
        "Table 3: machine parameters",
        ["config", "lanes", "SRF KB", "seq w/cyc", "in-lane w/c/l",
         "x-lane w/c/l", "cache KB"], rows,
    )
    return {"rows": rows, "text": text}


def table4() -> dict:
    rows = []
    for name, ds in igraph.TABLE4.items():
        rows.append([
            name, ds.flops_per_neighbor, ds.avg_degree,
            ds.base_strip_edges, ds.isrf_strip_edges,
            round(ds.isrf_strip_edges / ds.base_strip_edges, 2),
        ])
    text = render_table(
        "Table 4: IG dataset parameters (strip size = neighbour records "
        "per kernel invocation)",
        ["dataset", "FP ops/nbr", "avg degree", "Base strip", "ISRF strip",
         "ratio"], rows,
    )
    return {"rows": rows, "text": text}


def area_overheads() -> dict:
    model = SrfAreaModel()
    die = DieModel(model)
    rows = []
    for entry in die.report():
        rows.append([
            entry.variant,
            f"{entry.srf_overhead * 100:.1f}%",
            f"{entry.die_overhead * 100:.2f}%",
        ])
    cache = die.cache_overhead()
    rows.append([
        cache.variant, f"{cache.srf_overhead * 100:.0f}%",
        f"{cache.die_overhead * 100:.1f}%",
    ])
    text = render_table(
        "Section 4.6: area overheads over the sequential SRF "
        f"(sequential SRF = {model.sequential().total_mm2:.2f} mm^2, "
        f"die = {die.die_area_mm2:.0f} mm^2)",
        ["variant", "SRF overhead", "die overhead"], rows,
    )
    return {"rows": rows, "text": text,
            "overheads": model.overhead_report()}


def energy_comparison(scale: "str | None" = None) -> dict:
    """Per-benchmark energy: Base vs ISRF4, from measured access counts.

    Applies the §4.4 per-access energies to each run's off-chip words
    and SRF words. The paper's argument — an indexed SRF access costs
    4x a sequential word but 50x less than a DRAM word, so moving
    lookups on-chip is a large energy win wherever it cuts traffic —
    falls out per benchmark.
    """
    scale = scale or default_scale()
    configs = all_configs()
    model = EnergyModel()

    def run_energy(result: AppResult) -> float:
        stats = result.stats
        seq_words = sum(r.sequential_words for r in stats.kernel_runs)
        idx_words = sum(
            r.inlane_words + r.crosslane_words + r.indexed_write_words
            for r in stats.kernel_runs
        )
        return (
            stats.offchip_words * model.dram_word_nj
            + seq_words * model.sequential_word_nj
            + idx_words * model.indexed_word_nj
        ) / _work_units(result)

    rows = []
    data = {}
    for name in BENCHMARKS:
        base = run_energy(run_benchmark(name, configs["Base"], scale))
        isrf = run_energy(run_benchmark(name, configs["ISRF4"], scale))
        data[name] = (base, isrf, isrf / base)
        rows.append([name, base, isrf, isrf / base])
    text = render_table(
        "Energy per unit of work (nJ, from §4.4 access energies): "
        "Base vs ISRF4",
        ["benchmark", "Base nJ", "ISRF4 nJ", "ratio"], rows,
    )
    return {"data": data, "rows": rows, "text": text}


def energy_table() -> dict:
    model = EnergyModel()
    rows = [
        ["sequential SRF access (per word)", model.sequential_word_nj],
        ["indexed SRF access (per word)", model.indexed_word_nj],
        ["off-chip DRAM access (per word)", model.dram_word_nj],
        ["indexed-vs-sequential ratio", model.indexed_word_nj
         / model.sequential_word_nj],
        ["DRAM-vs-indexed ratio", model.indexed_vs_dram_ratio],
    ]
    text = render_table(
        "Section 4.4: access energies (nJ; paper: ~0.1 nJ indexed vs "
        "~5 nJ DRAM)",
        ["quantity", "value"], rows,
    )
    return {"rows": rows, "text": text}


# ----------------------------------------------------------------------
# Reliability: injected faults vs protection, with modelled overheads
# ----------------------------------------------------------------------
#: Seeded single-bit-flip plan used by the reliability experiment. The
#: small horizon keeps every strike inside even the smallest run, so the
#: protection counters are guaranteed to be exercised.
RELIABILITY_FAULTS = dict(
    fault_seed=13, fault_srf_flips=12, fault_dram_flips=12,
    fault_horizon=2_000,
)

#: Machine config -> SRF area-model organisation for protection costing.
_RELIABILITY_VARIANTS = {
    "Base": "sequential", "ISRF1": "isrf1", "ISRF4": "crosslane",
    "Cache": "sequential",
}


def reliability(scale: "str | None" = None) -> dict:
    """The reliability-vs-overhead tradeoff per machine configuration.

    Runs FFT 2D on every Table 2 configuration under a seeded
    single-bit-flip plan (:data:`RELIABILITY_FAULTS`), once with parity
    (detect + refetch) and once with SEC-DED ECC (correct in place),
    and reports the protection counters next to the modelled SRF area
    overhead and per-access energy ratio of each scheme. Both schemes
    restore the true word on a single-bit strike, so the benchmark still
    verifies end to end — the point of paying for protection.
    """
    scale = scale or default_scale()
    configs = all_configs()
    area = SrfAreaModel()
    energy = EnergyModel()
    rows = []
    data = {}
    for config_name, config in configs.items():
        for protection in ("parity", "secded"):
            faulted = config.replace(
                srf_protection=protection, memory_protection=protection,
                **RELIABILITY_FAULTS,
            )
            result = run_benchmark("FFT 2D", faulted, scale)
            faults = result.stats.faults
            area_overhead = area.protection_overhead(
                protection, _RELIABILITY_VARIANTS[config_name]
            )
            energy_ratio = energy.protection_energy_ratio(protection)
            data[(config_name, protection)] = {
                "injected": faults.injected,
                "corrected": faults.corrected,
                "detected": faults.detected,
                "uncorrected": faults.uncorrected,
                "retries": faults.retries,
                "srf_area_overhead": area_overhead,
                "energy_ratio": energy_ratio,
            }
            rows.append([
                config_name, protection, faults.injected, faults.corrected,
                faults.detected, faults.retries,
                f"{area_overhead * 100:.1f}%", f"{energy_ratio:.2f}x",
            ])
    text = render_table(
        "Reliability: seeded single-bit faults (FFT 2D) under parity vs "
        "SEC-DED, with modelled protection overheads",
        ["config", "protection", "injected", "corrected", "detected",
         "retries", "SRF area", "energy"], rows,
    )
    return {"data": data, "rows": rows, "text": text}


# ----------------------------------------------------------------------
# Observability: exported Base vs ISRF4 execution trace
# ----------------------------------------------------------------------
#: Sampling-profiler period used by the trace experiment.
TRACE_SAMPLE_PERIOD = 64


def trace(scale: "str | None" = None) -> dict:
    """Run FFT 2D on Base and ISRF4 with full observability and export
    the combined Chrome ``trace_event`` / Perfetto JSON.

    Unlike the figure experiments this never goes through the benchmark
    result cache: a cache hit would skip the simulation and produce no
    events, so the runs are always simulated fresh. The export is staged
    as ``<name>.trace.trace.tmp`` (in the result-cache directory when one
    is installed) and renamed into place atomically; the parallel runner
    sweeps up staging leftovers if a worker dies mid-export.
    """
    scale = scale or default_scale()
    params = SCALES[scale]
    path = trace_output_path()
    observability = dict(
        trace=True, metrics_level=2,
        profile_sample_period=TRACE_SAMPLE_PERIOD,
    )
    rows = []
    with observe.collect() as collected:
        for config in (base_config(**observability),
                       isrf4_config(**observability)):
            result = fft.run(config, n=params["fft_n"])
            result.require_verified()
            profile = {
                name.split(".")[1]: entry["value"]
                for name, entry in result.stats.metrics.items()
                if name.startswith("profile.") and name.endswith(".cycles")
            }
            rows.append([
                config.name, result.cycles,
                profile.get("kernel", 0) + profile.get("kernel_startup", 0),
                profile.get("memory_stall", 0), profile.get("idle", 0),
            ])
    tracers = collected.tracers()
    payload = observe.chrome_trace(tracers)
    phase_counts = observe.validate_chrome_trace(payload)
    staging_dir = (
        _result_cache.directory if _result_cache is not None else None
    )
    observe.write_trace(payload, path, experiment="trace",
                        staging_dir=staging_dir)
    events = sum(len(tracer) for tracer in tracers.values())
    text = render_table(
        f"Trace: FFT 2D on Base vs ISRF4 ({events} events -> {path}; "
        "load in https://ui.perfetto.dev). Profiled cycles sampled every "
        f"{TRACE_SAMPLE_PERIOD} cycles.",
        ["config", "cycles", "~kernel", "~mem stall", "~idle"], rows,
    )
    return {
        "rows": rows,
        "trace_path": path,
        "events": events,
        "phase_counts": phase_counts,
        "dropped_events": {
            label: tracer.dropped_events
            for label, tracer in tracers.items()
        },
        "text": text,
    }


@dataclass
class HeadlineClaim:
    benchmark: str
    speedup: float
    traffic_ratio: float


def headline(scale: "str | None" = None) -> dict:
    """The abstract's claims: 1.03x-4.1x speedups, up to 95% traffic cut."""
    scale = scale or default_scale()
    configs = all_configs()
    claims = []
    for name in BENCHMARKS:
        base = run_benchmark(name, configs["Base"], scale)
        isrf = run_benchmark(name, configs["ISRF4"], scale)
        s = (base.cycles / _work_units(base)) / (
            isrf.cycles / _work_units(isrf))
        t = (isrf.offchip_words / _work_units(isrf)) / (
            base.offchip_words / _work_units(base))
        claims.append(HeadlineClaim(name, s, t))
    rows = [[c.benchmark, f"{c.speedup:.2f}x", f"{c.traffic_ratio:.3f}"]
            for c in claims]
    text = render_table(
        "Headline: ISRF4 vs Base (paper: speedups 1.03x-4.1x, traffic "
        "reductions up to 95%)",
        ["benchmark", "speedup", "traffic vs Base"], rows,
    )
    return {"claims": claims, "rows": rows, "text": text}


# ----------------------------------------------------------------------
# Sparse & stencil workload suite (ISSUE 10)
# ----------------------------------------------------------------------
def sparse(scale: "str | None" = None) -> dict:
    """The sparse/stencil suite on every preset, normalised per unit.

    SpMV rows report cycles and off-chip words per *nonzero* (the
    format-independent unit of sparse work), the stencils per output
    pixel. Every cell is a fully verified simulation — the scipy/NumPy
    functional references inside :mod:`repro.apps.spmv` and
    :mod:`repro.apps.stencil` checked the results word for word.
    """
    scale = scale or default_scale()
    configs = all_configs()
    rows = []
    data = {}
    for name in SPARSE_BENCHMARKS:
        unit = "nnz" if name.startswith("SpMV") else "pixel"
        for config_name, config in configs.items():
            result = run_benchmark(name, config, scale)
            work = _work_units(result)
            entry = {
                "cycles_per_unit": result.cycles / work,
                "offchip_per_unit": result.offchip_words / work,
                "unit": unit,
            }
            data[(name, config_name)] = entry
            rows.append([
                name, config_name, unit,
                f"{entry['cycles_per_unit']:.2f}",
                f"{entry['offchip_per_unit']:.3f}",
            ])
    text = render_table(
        "Sparse suite: SpMV (CSR/CSC) and 2D stencils on every preset "
        "(verified against scipy/NumPy references)",
        ["benchmark", "config", "unit", "cycles/unit", "offchip w/unit"],
        rows,
    )
    return {"data": data, "rows": rows, "text": text}


#: Locality-sweep presets: indexed SRF vs the no-indexing baselines.
_LOCALITY_CONFIGS = ("Base", "ISRF4", "Cache")


def locality(scale: "str | None" = None) -> dict:
    """Index-locality sweep: SpMV_CSR under three column orderings.

    The same matrix sparsity (rows, nnz/row, empty rows, duplicates)
    is regenerated with ``sorted``, ``random`` and ``clustered`` column
    index orderings (see :data:`repro.apps.spmv.ORDERINGS`), and each
    variant runs on Base, ISRF4 and Cache. The ISRF4/Base cycle ratio
    per ordering is the experiment's point: the indexed SRF's bank
    conflicts make it *ordering-sensitive* where the Base gather
    pipeline is indifferent — the tradeoff ISSUE 10 asks RESULTS.txt
    to exhibit.
    """
    scale = scale or default_scale()
    configs = all_configs()
    rows = []
    data = {}
    for ordering in spmv.ORDERINGS:
        name = f"SpMV_CSR@{ordering}"
        cycles = {}
        for config_name in _LOCALITY_CONFIGS:
            result = run_benchmark(name, configs[config_name], scale)
            cycles[config_name] = result.cycles / _work_units(result)
        ratio = cycles["ISRF4"] / cycles["Base"]
        data[ordering] = dict(cycles, isrf_vs_base=ratio)
        rows.append([
            ordering,
            f"{cycles['Base']:.2f}", f"{cycles['ISRF4']:.2f}",
            f"{cycles['Cache']:.2f}", f"{ratio:.3f}",
        ])
    text = render_table(
        "Locality sweep: SpMV CSR cycles/nnz by column-index ordering "
        "(ISRF4/Base ratio exposes indexed-bank ordering sensitivity)",
        ["ordering", "Base", "ISRF4", "Cache", "ISRF4/Base"], rows,
    )
    return {"data": data, "rows": rows, "text": text}


# ----------------------------------------------------------------------
# Static analysis gate: verifier + program analyzer + sanitizer smoke
# ----------------------------------------------------------------------
def check(scale: "str | None" = None) -> dict:
    """Static analysis of every benchmark program on every preset.

    Runs the kernel verifier and the stream-program analyzer (see
    :mod:`repro.analyze`) over the same steady-state program chains the
    figure experiments execute, without simulating a cycle, then runs
    one short FFT simulation on ISRF4 with ``sanitize=True`` so the
    cycle-level invariant checks get exercised end to end. Any
    error-level finding fails the experiment — this is the harness face
    of the ``python -m repro.analyze`` CI gate.
    """
    from repro.analyze.diagnostics import Severity
    from repro.analyze.driver import check_everything
    from repro.errors import AnalysisError

    scale = scale or default_scale()
    params = SCALES[scale]
    reports = check_everything()
    rows = []
    failures = []
    for report in reports:
        errors = report.errors
        warnings = report.warnings
        notes = report.by_severity(Severity.INFO)
        rows.append([
            report.subject, "FAIL" if errors else "ok",
            len(errors), len(warnings), len(notes),
        ])
        failures.extend(d.describe() for d in errors)

    sanitized = isrf4_config(sanitize=True)
    result = fft.run(sanitized, n=params["fft_n"])
    result.require_verified()
    rows.append([
        f"sanitizer smoke (FFT 2D on {sanitized.name})", "ok",
        0, 0, result.cycles,
    ])

    if failures:
        raise AnalysisError(
            f"static analysis found {len(failures)} error(s):\n"
            + "\n".join(f"  {line}" for line in failures)
        )
    text = render_table(
        "Check: static analysis over every app x preset, plus a "
        "sanitizer-enabled smoke simulation (last row: cycles column "
        "holds the simulated cycle count)",
        ["subject", "status", "errors", "warnings", "notes"], rows,
    )
    return {"rows": rows, "failures": failures, "text": text}
