"""Sweep journal: crash-consistent bookkeeping for ``run_many``.

An interrupted sweep used to lose every completed experiment that had
not yet been printed. The runner now appends one record per event to a
:class:`~repro.store.journal.Journal` (same checksummed, torn-tail-
tolerant format as the store manifest):

``sweep``
    Header: journal format version, code/environment fingerprint and
    scale. A journal whose header does not match the current process
    is *stale* — its results were computed by different code or under
    different env overlays — and is restarted, never served.
``launch``
    An attempt of one experiment started (name, attempt number).
``done``
    An experiment completed; carries the full pickled result (base64)
    and wall-clock, so ``--resume`` can serve it without re-executing.
``failed``
    An experiment failed terminally (error text, classification,
    attempts).
``resume``
    A resumed run started, listing the names served from the journal.
``interrupted``
    The sweep was drained on SIGINT/SIGTERM.
``complete``
    The sweep finished; a journal ending in ``complete`` resumes to a
    pure replay (every result served, nothing executed).

The journal lives next to the result cache (``<cache-dir>/
sweep.journal`` by default) and is self-contained: resuming needs no
store lookups, and the chaos harness can audit re-execution behaviour
from the record stream alone (a ``launch`` after a ``done`` for the
same name is the bug the whole design exists to prevent).
"""

from __future__ import annotations

import base64
import hashlib
import os
import pickle
from dataclasses import dataclass, field

from repro.config.overlays import RESULT_AFFECTING
from repro.fingerprint import code_fingerprint
from repro.store.journal import Journal

#: Bump when record semantics change; mismatched journals restart.
SWEEP_JOURNAL_VERSION = 1

#: Default sweep journal filename inside the cache directory.
SWEEP_JOURNAL_NAME = "sweep.journal"

#: Environment variables that change experiment *results*; they are
#: folded into the journal fingerprint so a journal recorded under one
#: overlay is never served under another. Sourced from the central
#: overlay registry (:mod:`repro.config.overlays`) so a new
#: result-affecting variable can never be forgotten here.
RESULT_ENV_VARS = RESULT_AFFECTING


def default_sweep_journal(cache_dir: str) -> str:
    return os.path.join(cache_dir, SWEEP_JOURNAL_NAME)


def sweep_fingerprint() -> str:
    """Hash of everything that could change an experiment's result."""
    parts = [code_fingerprint()]
    for name in RESULT_ENV_VARS:
        parts.append(f"{name}={os.environ.get(name, '')}")
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def _encode_result(result) -> str:
    return base64.b64encode(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode_result(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


@dataclass
class SweepState:
    """What a sweep journal says already happened."""

    header: "dict | None" = None
    #: name -> (result, elapsed seconds) for journaled completions.
    completed: dict = field(default_factory=dict)
    #: name -> failure record for journaled terminal failures.
    failed: dict = field(default_factory=dict)
    #: names with a launch but no terminal record (in-flight at crash).
    in_flight: set = field(default_factory=set)
    #: torn/corrupt trailing records dropped by the reader.
    dropped: int = 0
    #: the journal ended with a ``complete`` record.
    complete: bool = False

    def compatible(self) -> bool:
        """Whether journaled results may be served by this process."""
        return (self.header is not None
                and self.header.get("version") == SWEEP_JOURNAL_VERSION
                and self.header.get("fingerprint") == sweep_fingerprint())


class SweepJournal:
    """Typed append/replay interface over the raw journal."""

    def __init__(self, path: str, fsync: bool = True):
        self.path = path
        self._journal = Journal(path, fsync=fsync)

    def exists(self) -> bool:
        return self._journal.exists()

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def load(self) -> SweepState:
        """Parse the journal into a :class:`SweepState`.

        Records that fail to decode (a torn result payload inside a
        checksummed line cannot happen, but a schema drift could) are
        treated as absent — resuming then re-executes, which is always
        correct, just slower.
        """
        records, dropped = self._journal.read()
        state = SweepState(dropped=dropped)
        for record in records:
            event = record.get("event")
            if event == "sweep":
                # A later header restarts the story: earlier records
                # belong to a sweep superseded by a fresh begin().
                state = SweepState(header=record, dropped=dropped)
            elif event == "launch":
                state.in_flight.add(record.get("name"))
                state.complete = False
            elif event == "done":
                name = record.get("name")
                try:
                    result = _decode_result(record["result"])
                except Exception:
                    continue
                state.completed[name] = (
                    result, float(record.get("elapsed", 0.0))
                )
                state.failed.pop(name, None)
                state.in_flight.discard(name)
            elif event == "failed":
                name = record.get("name")
                state.failed[name] = {
                    "status": "failed",
                    "error": record.get("error", "unknown"),
                    "attempts": int(record.get("attempts", 1)),
                    "error_kind": record.get("error_kind", "transient"),
                }
                state.in_flight.discard(name)
            elif event == "complete":
                state.complete = True
        return state

    # ------------------------------------------------------------------
    # Appends (all non-fatal: journaling must never kill a sweep)
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        try:
            self._journal.append(record)
        except Exception:
            pass

    def begin(self, names) -> None:
        """Start a fresh sweep: truncate and write the header."""
        try:
            self._journal.rewrite([{
                "event": "sweep", "version": SWEEP_JOURNAL_VERSION,
                "fingerprint": sweep_fingerprint(),
                "scale": os.environ.get("REPRO_SCALE", "small"),
                "names": list(names),
            }])
        except Exception:
            pass

    def record_resume(self, served) -> None:
        self._append({"event": "resume", "served": sorted(served)})

    def record_launch(self, name: str, attempt: int) -> None:
        self._append({"event": "launch", "name": name,
                      "attempt": attempt})

    def record_done(self, name: str, result, elapsed: float) -> None:
        try:
            encoded = _encode_result(result)
        except Exception:
            return  # unpicklable result: resume will re-execute
        self._append({"event": "done", "name": name,
                      "elapsed": round(elapsed, 6), "result": encoded})

    def record_failed(self, name: str, error: str, attempts: int,
                      elapsed: float, error_kind: str) -> None:
        self._append({
            "event": "failed", "name": name, "error": error,
            "attempts": attempts, "elapsed": round(elapsed, 6),
            "error_kind": error_kind,
        })

    def record_interrupted(self, reason: str) -> None:
        self._append({"event": "interrupted", "reason": reason})

    def record_complete(self) -> None:
        self._append({"event": "complete"})
