"""Experiment registry and crash-isolated parallel execution.

The figure/table experiments are independent of one another, so the CLI
can fan them out across worker processes with :func:`run_many`. Workers
share results through the on-disk :class:`~repro.harness.resultcache.
ResultCache` rather than through memory: each worker installs the cache
behind ``run_benchmark``, so a (benchmark, config, scale) triple
simulated by one worker is a cache hit for every later experiment that
needs it — in this run or the next.

The runner degrades gracefully instead of dying: a crashing, raising or
hung experiment is recorded as a structured failure
(``{"status": "failed", "error": ..., "attempts": ...}``) while every
other experiment's results are kept. Each isolated experiment gets a
per-attempt ``timeout`` and one retry with a short backoff; opt out of
graceful degradation with ``fail_fast=True``, which aborts on the first
unrecoverable failure.

Workload scale is selected by the ``REPRO_SCALE`` environment variable
(as everywhere else in the harness); forked workers inherit it. The
functional-evaluation backend is selected the same way via
``REPRO_BACKEND`` (the CLI's ``--backend`` flag sets it), so workers
simulate on the scalar or vector engine uniformly — and since the
backend is a :class:`~repro.config.machine.MachineConfig` field, it is
part of every result-cache key. ``REPRO_REPLAY`` (the CLI's ``--replay``
flag) selects the trace-replay timing source the same way; workers
share recorded kernel traces through a ``traces/`` subdirectory of the
cache directory.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time

from repro.errors import ReproError
from repro.harness import figures

#: Experiment name -> runner, in report order (the CLI preserves it).
EXPERIMENTS = {
    "check": figures.check,
    "table3": figures.table3,
    "table4": figures.table4,
    "area": figures.area_overheads,
    "energy": figures.energy_table,
    "energy_cmp": figures.energy_comparison,
    "fig11": figures.figure11,
    "fig12": figures.figure12,
    "fig13": figures.figure13,
    "fig14": figures.figure14,
    "fig15": figures.figure15,
    "fig16": figures.figure16,
    "fig17": figures.figure17,
    "fig18": figures.figure18,
    "reliability": figures.reliability,
    "headline": figures.headline,
    "trace": figures.trace,
}

#: Test/CI hooks: name an experiment in these variables to force it to
#: raise or hang, exercising the crash-isolation and timeout paths.
FAIL_EXPERIMENT_ENV = "REPRO_FAIL_EXPERIMENT"
HANG_EXPERIMENT_ENV = "REPRO_HANG_EXPERIMENT"

#: Seconds before retrying a failed/timed-out experiment.
RETRY_BACKOFF_S = 0.25


class ExperimentError(ReproError):
    """An experiment failed and ``fail_fast`` was requested.

    ``results``/``timings`` carry everything completed before the
    abort, *including* the failing experiment's structured failure
    entry and wall-clock — the two dicts are always consistent with
    each other, exactly as :func:`run_many` would have returned them.
    """

    def __init__(self, name: str, error: str, results=None, timings=None):
        super().__init__(f"experiment {name!r} failed: {error}")
        self.experiment = name
        self.error = error
        self.results = dict(results) if results is not None else {}
        self.timings = dict(timings) if timings is not None else {}


def experiment_names() -> list:
    return list(EXPERIMENTS)


def _apply_test_hooks(name: str) -> None:
    if os.environ.get(FAIL_EXPERIMENT_ENV) == name:
        raise RuntimeError(
            f"{name}: forced failure ({FAIL_EXPERIMENT_ENV})"
        )
    if os.environ.get(HANG_EXPERIMENT_ENV) == name:
        while True:  # pragma: no cover - killed by the runner's timeout
            time.sleep(3600)


def run_experiment(name: str) -> dict:
    """Run one registered experiment; returns its result dict."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r} "
            f"(known: {', '.join(EXPERIMENTS)})"
        ) from None
    _apply_test_hooks(name)
    return runner()


def failed(result) -> bool:
    """Whether a run_many result entry is a structured failure record."""
    return isinstance(result, dict) and result.get("status") == "failed"


def _failure(error: str, attempts: int) -> dict:
    return {"status": "failed", "error": error, "attempts": attempts}


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _init_worker(cache_dir: "str | None") -> None:
    """Install the shared disk cache inside a worker process.

    The replay trace store rides along in a ``traces/`` subdirectory of
    the cache, so workers of a ``--replay`` run share recorded kernel
    traces exactly like they share results.
    """
    if cache_dir is not None:
        from repro.harness.resultcache import ResultCache
        from repro.machine.replay import TraceStore

        figures.set_result_cache(ResultCache(cache_dir))
        figures.set_trace_store(
            TraceStore(os.path.join(cache_dir, "traces"))
        )


def run_many(names, jobs: int = 1, cache_dir: "str | None" = None,
             timeout: "float | None" = None,
             fail_fast: bool = False) -> "tuple[dict, dict]":
    """Run experiments, optionally across ``jobs`` worker processes.

    Returns ``(results, timings)``: experiment name -> result dict and
    name -> wall-clock seconds, both in the order of ``names``. A failed
    experiment's entry is ``{"status": "failed", "error": ...,
    "attempts": ...}`` (test with :func:`failed`); successful entries
    are the raw experiment result dicts.

    With ``jobs <= 1`` and no ``timeout`` everything runs in-process
    (sharing the in-memory benchmark cache), isolating failures per
    experiment. Otherwise each experiment runs in its own forked worker
    process so a crash or hang cannot take the run down: a worker
    exceeding ``timeout`` seconds is terminated, and any failed attempt
    is retried once after a short backoff. ``fail_fast=True`` raises
    :class:`ExperimentError` at the first unrecoverable failure instead
    of degrading.
    """
    names = list(names)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {', '.join(unknown)}")
    if jobs <= 1 and timeout is None:
        return _run_serial(names, cache_dir, fail_fast)
    return _run_isolated(names, max(1, jobs), cache_dir, timeout, fail_fast)


def _run_serial(names, cache_dir, fail_fast) -> "tuple[dict, dict]":
    results = {}
    timings = {}
    previous = figures._result_cache
    previous_store = figures._trace_store
    _init_worker(cache_dir)
    try:
        for name in names:
            start = time.perf_counter()
            try:
                results[name] = run_experiment(name)
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                # Record the failure entry AND its timing before
                # raising: the dicts must stay consistent for callers
                # that catch ExperimentError (which carries both).
                results[name] = _failure(error, attempts=1)
                timings[name] = time.perf_counter() - start
                if fail_fast:
                    raise ExperimentError(
                        name, error, results=results, timings=timings
                    ) from exc
            else:
                timings[name] = time.perf_counter() - start
    finally:
        figures.set_result_cache(previous)
        figures.set_trace_store(previous_store)
    return results, timings


def _worker_entry(name: str, cache_dir: "str | None", conn) -> None:
    """Run one experiment in a forked worker, reporting over ``conn``."""
    try:
        _init_worker(cache_dir)
        result = run_experiment(name)
        conn.send((True, result))
    except Exception as exc:  # reported to the parent, not raised
        try:
            conn.send((False, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


class _Attempt:
    """One in-flight worker process."""

    def __init__(self, name: str, number: int, first_start: float,
                 context, cache_dir, timeout):
        self.name = name
        self.number = number
        self.first_start = first_start
        recv, send = multiprocessing.Pipe(duplex=False)
        self.conn = recv
        self.process = context.Process(
            target=_worker_entry, args=(name, cache_dir, send), daemon=True
        )
        self.process.start()
        send.close()  # parent keeps only the receiving end
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )

    def stop(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
        self.process.join()
        self.conn.close()


def _run_isolated(names, jobs, cache_dir, timeout,
                  fail_fast) -> "tuple[dict, dict]":
    """Process-per-experiment scheduler with timeouts and one retry."""
    context = multiprocessing.get_context("fork")
    ready = list(names)  # (name, attempt=1) launches, FIFO
    attempts_of = {name: 1 for name in names}
    first_start = {}
    delayed = []  # (ready_at, name) retry launches
    active = []  # _Attempt objects
    results = {}
    timings = {}

    def finish(attempt: _Attempt, success: bool, payload) -> None:
        elapsed = time.perf_counter() - attempt.first_start
        if success:
            results[attempt.name] = payload
            timings[attempt.name] = elapsed
            return
        # A worker killed mid-export (crash or timeout) leaks its
        # staged trace file; remove exactly the dead experiment's
        # leftovers so healthy workers' staging files survive. The
        # trace experiment stages in the cache directory when one is
        # installed but next to its output file under --no-cache, so
        # the output directory is swept regardless of caching.
        from repro.observe import cleanup_orphan_traces

        directories = {
            os.path.dirname(os.path.abspath(figures.trace_output_path()))
        }
        if cache_dir is not None:
            directories.add(os.path.abspath(cache_dir))
        for directory in sorted(directories):
            cleanup_orphan_traces(directory, experiment=attempt.name)
        if attempt.number == 1:
            # Retry once with a short backoff (transient failures:
            # OOM-killed workers, contended caches, flaky hangs).
            attempts_of[attempt.name] = 2
            delayed.append((time.monotonic() + RETRY_BACKOFF_S,
                            attempt.name))
            return
        results[attempt.name] = _failure(payload, attempts=attempt.number)
        timings[attempt.name] = elapsed
        if fail_fast:
            for other in active:
                other.stop()
            raise ExperimentError(
                attempt.name, payload, results=results, timings=timings
            )

    while ready or delayed or active:
        now = time.monotonic()
        # Promote retries whose backoff has elapsed.
        for entry in [e for e in delayed if e[0] <= now]:
            delayed.remove(entry)
            ready.append(entry[1])
        # Launch up to the job limit.
        while ready and len(active) < jobs:
            name = ready.pop(0)
            number = attempts_of[name]
            start = first_start.setdefault(name, time.perf_counter())
            active.append(_Attempt(
                name, number, start, context, cache_dir, timeout
            ))
        if not active:
            if delayed:  # every slot idle: wait out the earliest backoff
                time.sleep(max(0.0, min(e[0] for e in delayed) - now))
            continue
        # Wait for a result, a timeout, or a retry becoming ready.
        wait = None
        deadlines = [a.deadline for a in active if a.deadline is not None]
        if deadlines:
            wait = max(0.0, min(deadlines) - time.monotonic())
        if delayed:
            backoff = max(0.0, min(e[0] for e in delayed) - time.monotonic())
            wait = backoff if wait is None else min(wait, backoff)
        readable = multiprocessing.connection.wait(
            [a.conn for a in active], timeout=wait
        )
        done = set()
        for attempt in [a for a in active if a.conn in readable]:
            try:
                success, payload = attempt.conn.recv()
            except EOFError:
                exit_code = attempt.process.exitcode
                success, payload = False, (
                    f"worker crashed (exit code {exit_code})"
                )
            attempt.stop()
            done.add(attempt)
            finish(attempt, success, payload)
        now = time.monotonic()
        for attempt in [a for a in active if a not in done]:
            if attempt.deadline is not None and now >= attempt.deadline:
                attempt.stop()
                done.add(attempt)
                finish(attempt, False, f"timed out after {timeout:g}s")
        active = [a for a in active if a not in done]

    ordered = {name: results[name] for name in names}
    ordered_timings = {name: timings[name] for name in names}
    return ordered, ordered_timings
