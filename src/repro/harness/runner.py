"""Experiment registry and crash-isolated, resumable parallel execution.

The figure/table experiments are independent of one another, so the CLI
can fan them out across worker processes with :func:`run_many`. Workers
share results through the on-disk :class:`~repro.harness.resultcache.
ResultCache` rather than through memory: each worker installs the cache
behind ``run_benchmark``, so a (benchmark, config, scale) triple
simulated by one worker is a cache hit for every later experiment that
needs it — in this run or the next.

The runner degrades gracefully instead of dying: a crashing, raising or
hung experiment is recorded as a structured failure
(``{"status": "failed", "error": ..., "attempts": ...,
"error_kind": ...}``) while every other experiment's results are kept.
Failures are *classified*: transient ones (worker crashes, timeouts,
OS-level errors) are retried with jittered exponential backoff, while
deterministic ones (a ``ValueError``, a failed verification — anything
that would fail identically on a re-run) are recorded immediately.
Opt out of graceful degradation with ``fail_fast=True``, which aborts
on the first unrecoverable failure.

Sweeps are crash-consistent: with a ``sweep_journal`` configured (the
CLI wires ``<cache-dir>/sweep.journal``), every launch, completion and
failure is journaled write-ahead, so an interrupted run — SIGINT,
SIGTERM, or ``kill -9`` of the parent — can continue with
``resume=True`` (CLI ``--resume``), serving journaled completions
without re-executing them. SIGINT/SIGTERM trigger a graceful drain
that terminates each worker's *process group* (workers run in their
own groups, with ``PR_SET_PDEATHSIG`` as a backstop against parent
``kill -9``), journals the interruption, and raises
:class:`~repro.errors.SweepInterrupted` carrying everything completed.
A ``deadline`` bounds the sweep's total wall clock: when it passes,
in-flight workers are stopped and every unfinished experiment is
recorded as a structured failure instead of running (or retrying)
unbounded.

Workload scale is selected by the ``REPRO_SCALE`` environment variable
(as everywhere else in the harness); forked workers inherit it. The
functional-evaluation backend is selected the same way via
``REPRO_BACKEND`` (the CLI's ``--backend`` flag sets it), so workers
simulate on the scalar or vector engine uniformly — and since the
backend is a :class:`~repro.config.machine.MachineConfig` field, it is
part of every result-cache key. ``REPRO_REPLAY`` (the CLI's ``--replay``
flag) selects the trace-replay timing source the same way; workers
share recorded kernel traces through a ``traces/`` subdirectory of the
cache directory.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import multiprocessing.connection
import os
import random
import signal
import time

from repro.errors import ReproError, SweepInterrupted
from repro.harness import figures
from repro.harness.sweep import SweepJournal

#: Experiment name -> runner, in report order (the CLI preserves it).
EXPERIMENTS = {
    "check": figures.check,
    "table3": figures.table3,
    "table4": figures.table4,
    "area": figures.area_overheads,
    "energy": figures.energy_table,
    "energy_cmp": figures.energy_comparison,
    "fig11": figures.figure11,
    "fig12": figures.figure12,
    "fig13": figures.figure13,
    "fig14": figures.figure14,
    "fig15": figures.figure15,
    "fig16": figures.figure16,
    "fig17": figures.figure17,
    "fig18": figures.figure18,
    "reliability": figures.reliability,
    "sparse": figures.sparse,
    "locality": figures.locality,
    "headline": figures.headline,
    "trace": figures.trace,
}

#: Test/CI hooks: name an experiment in these variables to force it to
#: raise or hang, exercising the crash-isolation and timeout paths.
FAIL_EXPERIMENT_ENV = "REPRO_FAIL_EXPERIMENT"
HANG_EXPERIMENT_ENV = "REPRO_HANG_EXPERIMENT"

#: Base seconds before retrying a transient failure (exponential with
#: jitter: attempt n waits ~ base * 2^(n-1) * uniform(0.5, 1.5)).
RETRY_BACKOFF_S = 0.25

#: Ceiling on any single retry backoff.
RETRY_BACKOFF_MAX_S = 10.0

#: Total attempts per experiment (first run + retries of transients).
MAX_ATTEMPTS = 2

#: Seconds between SIGTERM and SIGKILL when stopping a worker group.
STOP_GRACE_S = 2.0

#: Exception types whose failures are deterministic: an identical rerun
#: fails identically, so retrying only wastes the retry budget. Any
#: *other* exception — and every crash, hang, or OS-level error — is
#: treated as transient and retried.
DETERMINISTIC_ERRORS = (
    ReproError, ValueError, TypeError, KeyError, IndexError,
    AttributeError, ArithmeticError, AssertionError, NotImplementedError,
)

#: Exceptions that are always transient even though they subclass a
#: deterministic base (OSError is not in the set above, listed for
#: clarity in classify_error's contract).
TRANSIENT_ERRORS = (OSError, MemoryError, TimeoutError)


class ExperimentError(ReproError):
    """An experiment failed and ``fail_fast`` was requested.

    ``results``/``timings`` carry everything completed before the
    abort, *including* the failing experiment's structured failure
    entry and wall-clock — the two dicts are always consistent with
    each other, exactly as :func:`run_many` would have returned them.
    """

    def __init__(self, name: str, error: str, results=None, timings=None):
        super().__init__(f"experiment {name!r} failed: {error}")
        self.experiment = name
        self.error = error
        self.results = dict(results) if results is not None else {}
        self.timings = dict(timings) if timings is not None else {}


def experiment_names() -> list:
    return list(EXPERIMENTS)


def _apply_test_hooks(name: str) -> None:
    if os.environ.get(FAIL_EXPERIMENT_ENV) == name:
        raise RuntimeError(
            f"{name}: forced failure ({FAIL_EXPERIMENT_ENV})"
        )
    if os.environ.get(HANG_EXPERIMENT_ENV) == name:
        while True:  # pragma: no cover - killed by the runner's timeout
            time.sleep(3600)


def run_experiment(name: str) -> dict:
    """Run one registered experiment; returns its result dict."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r} "
            f"(known: {', '.join(EXPERIMENTS)})"
        ) from None
    _apply_test_hooks(name)
    return runner()


def failed(result) -> bool:
    """Whether a run_many result entry is a structured failure record."""
    return isinstance(result, dict) and result.get("status") == "failed"


def classify_error(exc: BaseException) -> str:
    """``"deterministic"`` or ``"transient"`` for one exception.

    Transient wins for :data:`TRANSIENT_ERRORS` (resource exhaustion
    and I/O can succeed on retry); :data:`DETERMINISTIC_ERRORS` are
    never retried; everything unknown is conservatively transient —
    a wasted retry is cheaper than a lost result.
    """
    if isinstance(exc, TRANSIENT_ERRORS):
        return "transient"
    if isinstance(exc, DETERMINISTIC_ERRORS):
        return "deterministic"
    return "transient"


def _failure(error: str, attempts: int,
             error_kind: str = "transient") -> dict:
    return {"status": "failed", "error": error, "attempts": attempts,
            "error_kind": error_kind}


def _retry_delay(attempt: int) -> float:
    """Jittered exponential backoff before launching ``attempt``."""
    base = RETRY_BACKOFF_S * (2 ** max(0, attempt - 2))
    return min(RETRY_BACKOFF_MAX_S, base * random.uniform(0.5, 1.5))


# ----------------------------------------------------------------------
# Worker-side plumbing
# ----------------------------------------------------------------------
def _init_worker(cache_dir: "str | None") -> None:
    """Install the shared disk cache inside a worker process.

    The replay trace store rides along in a ``traces/`` subdirectory of
    the cache, so workers of a ``--replay`` run share recorded kernel
    traces exactly like they share results.
    """
    if cache_dir is not None:
        from repro.harness.resultcache import ResultCache
        from repro.machine.replay import TraceStore

        figures.set_result_cache(ResultCache(cache_dir))
        figures.set_trace_store(
            TraceStore(os.path.join(cache_dir, "traces"))
        )


def _isolate_worker() -> None:
    """Detach into our own process group, tied to the parent's life.

    The group lets the parent stop the worker *and everything it
    spawned* with one ``killpg`` — no orphan grandchildren — and keeps
    terminal-generated SIGINT away from workers so the parent alone
    coordinates the drain. ``PR_SET_PDEATHSIG`` is the backstop for
    the one signal the parent cannot handle: ``kill -9`` of the parent
    delivers SIGKILL here, so even a hard parent death leaves no
    orphans.
    """
    try:
        os.setpgid(0, 0)
    except OSError:
        pass
    for signum in (signal.SIGTERM, signal.SIGINT):
        # The fork inherited the parent's drain handlers; a worker must
        # just die quietly when its group is terminated.
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):
            pass
    try:  # Linux only; harmless no-op elsewhere
        import ctypes

        PR_SET_PDEATHSIG = 1
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(PR_SET_PDEATHSIG, int(signal.SIGKILL), 0, 0, 0)
    except Exception:
        pass
    if os.getppid() == 1:  # parent died before prctl took effect
        os._exit(1)


def _worker_entry(name: str, cache_dir: "str | None", conn) -> None:
    """Run one experiment in a forked worker, reporting over ``conn``."""
    _isolate_worker()
    try:
        _init_worker(cache_dir)
        result = run_experiment(name)
        conn.send((True, result))
    except Exception as exc:  # reported to the parent, not raised
        try:
            conn.send((False, {
                "error": f"{type(exc).__name__}: {exc}",
                "kind": classify_error(exc),
            }))
        except Exception:
            pass
    finally:
        conn.close()


class _Attempt:
    """One in-flight worker process (its own process group)."""

    def __init__(self, name: str, number: int, first_start: float,
                 context, cache_dir, timeout):
        self.name = name
        self.number = number
        self.first_start = first_start
        recv, send = multiprocessing.Pipe(duplex=False)
        self.conn = recv
        self.process = context.Process(
            target=_worker_entry, args=(name, cache_dir, send), daemon=True
        )
        self.process.start()
        send.close()  # parent keeps only the receiving end
        try:
            # Both sides race to create the group (standard idiom); the
            # loser's EACCES/EPERM is fine — the group then exists.
            os.setpgid(self.process.pid, self.process.pid)
        except OSError:
            pass
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )

    def _signal_group(self, signum) -> bool:
        pid = self.process.pid
        if pid is None:
            return False
        try:
            os.killpg(pid, signum)
            return True
        except (ProcessLookupError, PermissionError, OSError):
            return False

    def stop(self) -> None:
        """Terminate the whole worker group: TERM, grace, then KILL."""
        if self.process.is_alive():
            if not self._signal_group(signal.SIGTERM):
                self.process.terminate()
            self.process.join(STOP_GRACE_S)
        if self.process.is_alive():
            if not self._signal_group(signal.SIGKILL):
                self.process.kill()
        self.process.join()
        # Grandchildren may outlive the group leader; one final sweep
        # of the (now leaderless) group reaps them.
        self._signal_group(signal.SIGKILL)
        self.conn.close()


# ----------------------------------------------------------------------
# Sweep orchestration
# ----------------------------------------------------------------------
def run_many(names, jobs: int = 1, cache_dir: "str | None" = None,
             timeout: "float | None" = None,
             fail_fast: bool = False,
             deadline: "float | None" = None,
             sweep_journal: "str | None" = None,
             resume: bool = False) -> "tuple[dict, dict]":
    """Run experiments, optionally across ``jobs`` worker processes.

    Returns ``(results, timings)``: experiment name -> result dict and
    name -> wall-clock seconds, both in the order of ``names``. A failed
    experiment's entry is ``{"status": "failed", "error": ...,
    "attempts": ..., "error_kind": ...}`` (test with :func:`failed`);
    successful entries are the raw experiment result dicts.

    With ``jobs <= 1`` and no ``timeout`` everything runs in-process
    (sharing the in-memory benchmark cache), isolating failures per
    experiment. Otherwise each experiment runs in its own forked worker
    process — in its own *process group* — so a crash or hang cannot
    take the run down: a worker exceeding ``timeout`` seconds has its
    group terminated, and transient failures are retried with jittered
    exponential backoff (deterministic ones are not retried at all).
    ``fail_fast=True`` raises :class:`ExperimentError` at the first
    unrecoverable failure instead of degrading.

    ``deadline`` bounds the *total* sweep wall clock; past it, every
    unfinished experiment is recorded as a structured failure.
    ``sweep_journal`` names a journal file recording progress
    write-ahead; ``resume=True`` serves completions already journaled
    there (same code fingerprint and env overlays required) instead of
    re-executing them. SIGINT/SIGTERM drain the workers and raise
    :class:`~repro.errors.SweepInterrupted` with partial results.
    """
    names = list(names)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {', '.join(unknown)}")
    if resume and sweep_journal is None:
        raise ValueError("resume=True requires a sweep_journal path")

    journal = None
    served: "dict[str, tuple]" = {}
    if sweep_journal is not None:
        journal = SweepJournal(sweep_journal)
        if resume and journal.exists():
            state = journal.load()
            if state.compatible():
                served = {
                    name: state.completed[name]
                    for name in names if name in state.completed
                }
                journal.record_resume(served)
            else:
                journal.begin(names)  # stale journal: start over
        else:
            journal.begin(names)

    pending = [name for name in names if name not in served]
    if jobs <= 1 and timeout is None:
        results, timings = _run_serial(
            pending, cache_dir, fail_fast, deadline, journal, served
        )
    else:
        results, timings = _run_isolated(
            pending, max(1, jobs), cache_dir, timeout, fail_fast,
            deadline, journal, served
        )
    if journal is not None:
        journal.record_complete()
    ordered = {name: results[name] for name in names}
    ordered_timings = {name: timings[name] for name in names}
    return ordered, ordered_timings


def _seed_served(results, timings, served) -> None:
    for name, (result, elapsed) in served.items():
        results[name] = result
        timings[name] = elapsed


@contextlib.contextmanager
def _sigterm_drains(received: dict):
    """Map SIGTERM onto the KeyboardInterrupt drain path.

    SIGINT already raises KeyboardInterrupt natively; SIGTERM (the
    polite kill every process supervisor sends first) must drain the
    same way instead of dying mid-bookkeeping. Restored on exit; a
    non-main-thread caller (tests) simply keeps default behaviour.
    """
    def _handler(signum, _frame):
        received["signal"] = "SIGTERM"
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except ValueError:  # not the main thread
        previous = None
    try:
        yield
    finally:
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except ValueError:
                pass


def _interrupt_reason(received: dict) -> str:
    return received.get("signal", "SIGINT")


def _run_serial(names, cache_dir, fail_fast, deadline, journal,
                served) -> "tuple[dict, dict]":
    results = {}
    timings = {}
    _seed_served(results, timings, served)
    deadline_at = (time.monotonic() + deadline
                   if deadline is not None else None)
    previous = figures._result_cache
    previous_store = figures._trace_store
    _init_worker(cache_dir)
    received: dict = {}
    try:
        with _sigterm_drains(received):
            for index, name in enumerate(names):
                if deadline_at is not None \
                        and time.monotonic() >= deadline_at:
                    _record_deadline_failures(
                        names[index:], results, timings, deadline,
                        journal, {},
                    )
                    break
                if journal is not None:
                    journal.record_launch(name, attempt=1)
                start = time.perf_counter()
                try:
                    results[name] = run_experiment(name)
                except Exception as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    kind = classify_error(exc)
                    # Record the failure entry AND its timing before
                    # raising: the dicts must stay consistent for
                    # callers that catch ExperimentError (which
                    # carries both).
                    results[name] = _failure(error, attempts=1,
                                             error_kind=kind)
                    timings[name] = time.perf_counter() - start
                    if journal is not None:
                        journal.record_failed(
                            name, error, 1, timings[name], kind
                        )
                    if fail_fast:
                        raise ExperimentError(
                            name, error, results=results, timings=timings
                        ) from exc
                else:
                    timings[name] = time.perf_counter() - start
                    if journal is not None:
                        journal.record_done(
                            name, results[name], timings[name]
                        )
    except KeyboardInterrupt:
        reason = _interrupt_reason(received)
        if journal is not None:
            journal.record_interrupted(reason)
        raise SweepInterrupted(
            f"sweep interrupted by {reason} "
            f"({len(results)} experiment(s) completed"
            f"{' — resumable with --resume' if journal else ''})",
            results=results, timings=timings,
        ) from None
    finally:
        figures.set_result_cache(previous)
        figures.set_trace_store(previous_store)
    return results, timings


def _record_deadline_failures(unfinished, results, timings, deadline,
                              journal, attempts_of) -> None:
    """Mark every unfinished experiment as failed on the deadline."""
    error = f"sweep deadline of {deadline:g}s exceeded"
    for name in unfinished:
        if name in results:
            continue
        attempts = attempts_of.get(name, 0)
        results[name] = _failure(error, attempts=attempts,
                                 error_kind="deadline")
        timings[name] = timings.get(name, 0.0)
        if journal is not None:
            journal.record_failed(name, error, attempts, timings[name],
                                  "deadline")


def _run_isolated(names, jobs, cache_dir, timeout, fail_fast, deadline,
                  journal, served) -> "tuple[dict, dict]":
    """Process-group-per-experiment scheduler: timeouts, classified
    retries with jittered backoff, deadline, journaling, drain."""
    context = multiprocessing.get_context("fork")
    ready = list(names)  # (name, attempt=1) launches, FIFO
    attempts_of = {name: 1 for name in names}
    first_start = {}
    delayed = []  # (ready_at, name) retry launches
    active = []  # _Attempt objects
    results = {}
    timings = {}
    _seed_served(results, timings, served)
    deadline_at = (time.monotonic() + deadline
                   if deadline is not None else None)
    received: dict = {}

    def finish(attempt: _Attempt, success: bool, payload) -> None:
        elapsed = time.perf_counter() - attempt.first_start
        if success:
            results[attempt.name] = payload
            timings[attempt.name] = elapsed
            if journal is not None:
                journal.record_done(attempt.name, payload, elapsed)
            return
        if isinstance(payload, dict):
            error, kind = payload["error"], payload.get("kind",
                                                        "transient")
        else:  # crash/timeout paths pass a plain string
            error, kind = str(payload), "transient"
        # A worker killed mid-export (crash or timeout) leaks its
        # staged trace file; remove exactly the dead experiment's
        # leftovers so healthy workers' staging files survive. The
        # trace experiment stages in the cache directory when one is
        # installed but next to its output file under --no-cache, so
        # the output directory is swept regardless of caching.
        from repro.observe import cleanup_orphan_traces

        directories = {
            os.path.dirname(os.path.abspath(figures.trace_output_path()))
        }
        if cache_dir is not None:
            directories.add(os.path.abspath(cache_dir))
        for directory in sorted(directories):
            cleanup_orphan_traces(directory, experiment=attempt.name)
        out_of_time = (deadline_at is not None
                       and time.monotonic() >= deadline_at)
        if (attempt.number < MAX_ATTEMPTS and kind == "transient"
                and not out_of_time):
            # Retry transient failures (OOM-killed workers, contended
            # caches, flaky hangs) with jittered exponential backoff;
            # deterministic failures would fail identically and are
            # recorded at once.
            attempts_of[attempt.name] = attempt.number + 1
            delayed.append((
                time.monotonic() + _retry_delay(attempt.number + 1),
                attempt.name,
            ))
            return
        results[attempt.name] = _failure(error, attempts=attempt.number,
                                         error_kind=kind)
        timings[attempt.name] = elapsed
        if journal is not None:
            journal.record_failed(attempt.name, error, attempt.number,
                                  elapsed, kind)
        if fail_fast:
            raise ExperimentError(
                attempt.name, error, results=results, timings=timings
            )

    try:
        with _sigterm_drains(received):
            while ready or delayed or active:
                now = time.monotonic()
                if deadline_at is not None and now >= deadline_at:
                    for attempt in active:
                        attempt.stop()
                    active = []
                    _record_deadline_failures(
                        list(attempts_of), results, timings, deadline,
                        journal, attempts_of,
                    )
                    break
                # Promote retries whose backoff has elapsed.
                for entry in [e for e in delayed if e[0] <= now]:
                    delayed.remove(entry)
                    ready.append(entry[1])
                # Launch up to the job limit.
                while ready and len(active) < jobs:
                    name = ready.pop(0)
                    number = attempts_of[name]
                    start = first_start.setdefault(name,
                                                   time.perf_counter())
                    if journal is not None:
                        journal.record_launch(name, attempt=number)
                    active.append(_Attempt(
                        name, number, start, context, cache_dir, timeout
                    ))
                if not active:
                    if delayed:  # all slots idle: wait out the backoff
                        time.sleep(_bounded_wait(
                            min(e[0] for e in delayed) - now, deadline_at
                        ))
                    continue
                # Wait for a result, a timeout, a retry becoming ready,
                # or the deadline.
                wait = None
                deadlines = [a.deadline for a in active
                             if a.deadline is not None]
                if deadlines:
                    wait = max(0.0, min(deadlines) - time.monotonic())
                if delayed:
                    backoff = max(
                        0.0, min(e[0] for e in delayed) - time.monotonic()
                    )
                    wait = backoff if wait is None else min(wait, backoff)
                wait = _bounded_wait(wait, deadline_at)
                readable = multiprocessing.connection.wait(
                    [a.conn for a in active], timeout=wait
                )
                done = set()
                for attempt in [a for a in active if a.conn in readable]:
                    try:
                        success, payload = attempt.conn.recv()
                    except EOFError:
                        exit_code = attempt.process.exitcode
                        success, payload = False, (
                            f"worker crashed (exit code {exit_code})"
                        )
                    attempt.stop()
                    done.add(attempt)
                    finish(attempt, success, payload)
                now = time.monotonic()
                for attempt in [a for a in active if a not in done]:
                    if attempt.deadline is not None \
                            and now >= attempt.deadline:
                        attempt.stop()
                        done.add(attempt)
                        finish(attempt, False,
                               f"timed out after {timeout:g}s")
                active = [a for a in active if a not in done]
    except KeyboardInterrupt:
        reason = _interrupt_reason(received)
        for attempt in active:
            attempt.stop()
        active = []
        if journal is not None:
            journal.record_interrupted(reason)
        raise SweepInterrupted(
            f"sweep interrupted by {reason} "
            f"({len(results)} experiment(s) completed"
            f"{' — resumable with --resume' if journal else ''})",
            results=results, timings=timings,
        ) from None
    finally:
        # Reap every worker group no matter how we leave (fail_fast's
        # ExperimentError, an internal bug): no orphans, ever.
        for attempt in active:
            attempt.stop()
    return results, timings


def _bounded_wait(wait: "float | None",
                  deadline_at: "float | None") -> "float | None":
    """Cap a wait so the loop re-checks signals and the deadline."""
    bounds = [0.25]
    if wait is not None:
        bounds.append(max(0.0, wait))
    if deadline_at is not None:
        bounds.append(max(0.0, deadline_at - time.monotonic()))
    return min(bounds)
