"""Experiment registry and parallel execution for the harness.

The figure/table experiments are independent of one another, so the CLI
can fan them out across worker processes with :func:`run_many`. Workers
share results through the on-disk :class:`~repro.harness.resultcache.
ResultCache` rather than through memory: each worker installs the cache
behind ``run_benchmark``, so a (benchmark, config, scale) triple
simulated by one worker is a cache hit for every later experiment that
needs it — in this run or the next.

Workload scale is selected by the ``REPRO_SCALE`` environment variable
(as everywhere else in the harness); forked workers inherit it.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.harness import figures

#: Experiment name -> runner, in report order (the CLI preserves it).
EXPERIMENTS = {
    "table3": figures.table3,
    "table4": figures.table4,
    "area": figures.area_overheads,
    "energy": figures.energy_table,
    "energy_cmp": figures.energy_comparison,
    "fig11": figures.figure11,
    "fig12": figures.figure12,
    "fig13": figures.figure13,
    "fig14": figures.figure14,
    "fig15": figures.figure15,
    "fig16": figures.figure16,
    "fig17": figures.figure17,
    "fig18": figures.figure18,
    "headline": figures.headline,
}


def experiment_names() -> list:
    return list(EXPERIMENTS)


def run_experiment(name: str) -> dict:
    """Run one registered experiment; returns its result dict."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r} "
            f"(known: {', '.join(EXPERIMENTS)})"
        ) from None
    return runner()


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------
def _init_worker(cache_dir: "str | None") -> None:
    """Install the shared disk cache inside a worker process."""
    if cache_dir is not None:
        from repro.harness.resultcache import ResultCache

        figures.set_result_cache(ResultCache(cache_dir))


def _run_timed(name: str) -> tuple:
    start = time.perf_counter()
    result = run_experiment(name)
    return name, result, time.perf_counter() - start


def run_many(names, jobs: int = 1,
             cache_dir: "str | None" = None) -> "tuple[dict, dict]":
    """Run experiments, optionally across ``jobs`` worker processes.

    Returns ``(results, timings)``: experiment name -> result dict and
    name -> wall-clock seconds, both in the order of ``names``. With
    ``jobs <= 1`` everything runs in-process (sharing the in-memory
    benchmark cache); with more, a ``fork`` pool is used so workers
    inherit the parent's imports cheaply, and simulated benchmarks are
    shared between experiments through the disk cache instead.
    """
    names = list(names)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise ValueError(f"unknown experiments: {', '.join(unknown)}")
    results = {}
    timings = {}
    if jobs <= 1 or len(names) <= 1:
        previous = figures._result_cache
        _init_worker(cache_dir)
        try:
            for name in names:
                name, result, elapsed = _run_timed(name)
                results[name] = result
                timings[name] = elapsed
        finally:
            figures.set_result_cache(previous)
        return results, timings
    context = multiprocessing.get_context("fork")
    with context.Pool(
        processes=min(jobs, len(names)),
        initializer=_init_worker,
        initargs=(cache_dir,),
    ) as pool:
        for name, result, elapsed in pool.imap(_run_timed, names):
            results[name] = result
            timings[name] = elapsed
    ordered = {name: results[name] for name in names}
    ordered_timings = {name: timings[name] for name in names}
    return ordered, ordered_timings
