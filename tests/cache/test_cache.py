"""Banked set-associative LRU cache (Table 3 Cache configuration)."""

import pytest

from repro.cache import BankedCache, LruSet
from repro.config import base_config, cache_config
from repro.errors import MemorySystemError


class TestLruSet:
    def test_insert_until_full_then_evict_lru(self):
        s = LruSet(2)
        assert s.insert("a") is None
        assert s.insert("b") is None
        assert s.victim() == "a"
        assert s.insert("c") == ("a", False)
        assert s.resident_tags() == ["b", "c"]

    def test_lookup_promotes_to_mru(self):
        s = LruSet(2)
        s.insert("a")
        s.insert("b")
        assert s.lookup("a")
        assert s.insert("c") == ("b", False)

    def test_dirty_eviction_reported(self):
        s = LruSet(1)
        s.insert("a")
        s.mark_dirty("a")
        assert s.insert("b") == ("a", True)

    def test_double_insert_rejected(self):
        s = LruSet(2)
        s.insert("a")
        with pytest.raises(MemorySystemError):
            s.insert("a")

    def test_mark_dirty_requires_residency(self):
        s = LruSet(1)
        with pytest.raises(MemorySystemError):
            s.mark_dirty("ghost")


class TestBankedCache:
    def make(self):
        return BankedCache(cache_config())

    def test_requires_cache_config(self):
        with pytest.raises(MemorySystemError):
            BankedCache(base_config())

    def test_geometry_matches_table3(self):
        cache = self.make()
        assert cache.line_words == 2
        assert cache.ways == 4
        assert cache.banks == 4
        assert cache.num_sets == 4096
        # Total capacity: sets * ways * line = 128 KB of 4-byte words.
        assert cache.num_sets * cache.ways * cache.line_words == 32768

    def test_miss_then_hit_on_same_line(self):
        cache = self.make()
        first = cache.access(10, is_write=False)
        assert not first.hit
        assert first.dram_read_words == cache.line_words
        second = cache.access(11, is_write=False)  # same 2-word line
        assert second.hit
        assert second.dram_words == 0

    def test_write_allocate_and_dirty_writeback(self):
        cache = self.make()
        # Fill one set's 4 ways with conflicting lines, dirtying the first.
        stride = cache.num_sets * cache.line_words
        cache.access(0, is_write=True)
        for way in range(1, 4):
            cache.access(way * stride, is_write=False)
        result = cache.access(4 * stride, is_write=False)
        assert not result.hit
        assert result.dram_writeback_words == cache.line_words
        assert result.writeback_base == 0

    def test_probe_is_non_destructive(self):
        cache = self.make()
        assert not cache.probe(0)
        cache.access(0, False)
        hits_before = cache.stats.hits
        assert cache.probe(0)
        assert cache.stats.hits == hits_before

    def test_lru_within_set(self):
        cache = self.make()
        stride = cache.num_sets * cache.line_words
        for way in range(4):
            cache.access(way * stride, False)
        cache.access(0, False)  # touch way 0 -> MRU
        cache.access(4 * stride, False)  # evicts way 1 (addr stride)
        assert cache.probe(0)
        assert not cache.probe(stride)

    def test_rijndael_sized_table_fits_entirely(self):
        # 4 T-tables of 256 words each: 1024 words << 32768-word cache.
        cache = self.make()
        for addr in range(1024):
            cache.access(addr, False)
        relookups = [cache.access(addr, False).hit for addr in range(1024)]
        assert all(relookups)

    def test_flush_reports_dirty_words_and_invalidates(self):
        cache = self.make()
        cache.access(0, is_write=True)
        cache.access(100, is_write=False)
        assert cache.flush() == cache.line_words
        assert not cache.probe(0)

    def test_stats_hit_rate(self):
        cache = self.make()
        cache.access(0, False)
        cache.access(0, False)
        cache.access(0, False)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
