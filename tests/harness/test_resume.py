"""Sweep resume, error classification, deadline, and orphan reaping."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.errors import ReproError, SweepInterrupted
from repro.harness import runner
from repro.harness.__main__ import _parse_args, main
from repro.harness.sweep import (
    SWEEP_JOURNAL_NAME,
    SweepJournal,
    default_sweep_journal,
    sweep_fingerprint,
)
from repro.harness.runner import (
    RETRY_BACKOFF_MAX_S,
    classify_error,
    failed,
    run_many,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


def install_fakes(monkeypatch, log_path, spec):
    """Replace the experiment registry with logging fakes.

    ``spec`` maps name -> callable or None (None = succeed). Every
    execution appends the experiment name to ``log_path`` — an on-disk
    side effect, so executions inside forked workers are counted too.
    """
    registry = {}
    for name, behaviour in spec.items():
        def fake(name=name, behaviour=behaviour):
            with open(log_path, "a") as handle:
                handle.write(name + "\n")
            if behaviour is not None:
                behaviour()
            return {"text": f"{name} output", "value": len(name)}
        registry[name] = fake
    monkeypatch.setattr(runner, "EXPERIMENTS", registry)


def executions(log_path):
    try:
        with open(log_path) as handle:
            return [line.strip() for line in handle if line.strip()]
    except OSError:
        return []


class TestResume:
    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="sweep_journal"):
            run_many(["table3"], resume=True)

    def test_completed_sweep_resumes_as_pure_replay(self, tmp_path,
                                                    monkeypatch):
        log = tmp_path / "log"
        journal = str(tmp_path / SWEEP_JOURNAL_NAME)
        install_fakes(monkeypatch, log, {"expa": None, "expb": None})
        first, _ = run_many(["expa", "expb"], sweep_journal=journal)
        assert executions(log) == ["expa", "expb"]
        resumed, timings = run_many(["expa", "expb"],
                                    sweep_journal=journal, resume=True)
        assert executions(log) == ["expa", "expb"]  # nothing re-ran
        assert resumed == first
        assert set(timings) == {"expa", "expb"}

    def test_interrupted_sweep_resumes_where_it_left_off(
            self, tmp_path, monkeypatch):
        log = tmp_path / "log"
        journal = str(tmp_path / SWEEP_JOURNAL_NAME)

        def interrupt():
            raise KeyboardInterrupt

        install_fakes(monkeypatch, log,
                      {"expa": None, "expb": interrupt, "expc": None})
        with pytest.raises(SweepInterrupted) as info:
            run_many(["expa", "expb", "expc"], sweep_journal=journal)
        assert "resumable" in str(info.value)
        assert "text" in info.value.results["expa"]
        # Heal expb and resume: expa must be served, not re-executed.
        install_fakes(monkeypatch, log,
                      {"expa": None, "expb": None, "expc": None})
        results, _ = run_many(["expa", "expb", "expc"],
                              sweep_journal=journal, resume=True)
        assert executions(log) == ["expa", "expb", "expb", "expc"]
        assert all("text" in results[n] for n in ("expa", "expb", "expc"))

    def test_isolated_resume_counts_via_disk(self, tmp_path,
                                             monkeypatch):
        """Fork-based workers re-execute nothing on resume either."""
        log = tmp_path / "log"
        journal = str(tmp_path / SWEEP_JOURNAL_NAME)
        install_fakes(monkeypatch, log, {"expa": None, "expb": None})
        first, _ = run_many(["expa", "expb"], jobs=2,
                            sweep_journal=journal)
        ran = executions(log)
        assert sorted(ran) == ["expa", "expb"]
        resumed, _ = run_many(["expa", "expb"], jobs=2,
                              sweep_journal=journal, resume=True)
        assert executions(log) == ran
        assert resumed == first

    def test_stale_journal_restarted_not_served(self, tmp_path,
                                                monkeypatch):
        log = tmp_path / "log"
        journal = str(tmp_path / SWEEP_JOURNAL_NAME)
        install_fakes(monkeypatch, log, {"expa": None})
        monkeypatch.setenv("REPRO_SCALE", "small")
        run_many(["expa"], sweep_journal=journal)
        # A result-affecting env overlay changed: the journaled result
        # was computed under different conditions and must not be
        # served.
        monkeypatch.setenv("REPRO_SCALE", "medium")
        run_many(["expa"], sweep_journal=journal, resume=True)
        assert executions(log) == ["expa", "expa"]

    def test_failed_experiments_are_retried_on_resume(self, tmp_path,
                                                      monkeypatch):
        """Only completions are served; journaled failures re-run."""
        log = tmp_path / "log"
        journal = str(tmp_path / SWEEP_JOURNAL_NAME)

        def boom():
            raise ValueError("deterministic failure")

        install_fakes(monkeypatch, log, {"expa": None, "expb": boom})
        results, _ = run_many(["expa", "expb"], sweep_journal=journal)
        assert failed(results["expb"])
        install_fakes(monkeypatch, log, {"expa": None, "expb": None})
        results, _ = run_many(["expa", "expb"], sweep_journal=journal,
                              resume=True)
        assert executions(log) == ["expa", "expb", "expb"]
        assert "text" in results["expb"]


class TestSweepJournalUnits:
    def test_empty_journal_is_incompatible(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j"))
        state = journal.load()
        assert state.header is None
        assert not state.compatible()

    def test_begin_makes_compatible(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j"))
        journal.begin(["a", "b"])
        assert journal.load().compatible()

    def test_launch_without_done_is_in_flight(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j"))
        journal.begin(["a"])
        journal.record_launch("a", attempt=1)
        state = journal.load()
        assert state.in_flight == {"a"}
        assert not state.complete

    def test_done_round_trips_the_result(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j"))
        journal.begin(["a"])
        journal.record_launch("a", attempt=1)
        journal.record_done("a", {"text": "hi", "rows": [1, 2]}, 1.5)
        journal.record_complete()
        state = journal.load()
        result, elapsed = state.completed["a"]
        assert result == {"text": "hi", "rows": [1, 2]}
        assert elapsed == 1.5
        assert state.in_flight == set()
        assert state.complete

    def test_unpicklable_result_is_skipped_not_fatal(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "j"))
        journal.begin(["a"])
        journal.record_done("a", {"handle": open(os.devnull)}, 0.1)
        assert "a" not in journal.load().completed

    def test_fingerprint_tracks_result_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        small = sweep_fingerprint()
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert sweep_fingerprint() != small

    def test_default_journal_lives_in_cache_dir(self):
        assert default_sweep_journal("/x/cache") == \
            os.path.join("/x/cache", SWEEP_JOURNAL_NAME)


class TestErrorClassification:
    @pytest.mark.parametrize("exc,kind", [
        (ValueError("x"), "deterministic"),
        (TypeError("x"), "deterministic"),
        (AssertionError("x"), "deterministic"),
        (ReproError("x"), "deterministic"),
        (OSError("x"), "transient"),
        (MemoryError(), "transient"),
        (TimeoutError(), "transient"),
        (RuntimeError("x"), "transient"),  # unknown: retry is cheap
    ])
    def test_classify(self, exc, kind):
        assert classify_error(exc) == kind

    def test_deterministic_failure_not_retried(self, tmp_path,
                                               monkeypatch):
        log = tmp_path / "log"

        def boom():
            raise ValueError("same result every time")

        install_fakes(monkeypatch, log, {"expa": boom})
        results, _ = run_many(["expa"], jobs=2)
        assert failed(results["expa"])
        assert results["expa"]["attempts"] == 1
        assert results["expa"]["error_kind"] == "deterministic"
        assert executions(log) == ["expa"]

    def test_transient_failure_retried(self, tmp_path, monkeypatch):
        log = tmp_path / "log"

        def flaky():
            raise OSError("might work next time")

        install_fakes(monkeypatch, log, {"expa": flaky})
        results, _ = run_many(["expa"], jobs=2)
        assert failed(results["expa"])
        assert results["expa"]["attempts"] == 2
        assert results["expa"]["error_kind"] == "transient"
        assert executions(log) == ["expa", "expa"]

    def test_retry_delay_is_bounded(self):
        for attempt in range(2, 12):
            for _ in range(20):
                delay = runner._retry_delay(attempt)
                assert 0.0 <= delay <= RETRY_BACKOFF_MAX_S


class TestDeadline:
    def test_serial_deadline_produces_structured_failures(
            self, tmp_path, monkeypatch):
        log = tmp_path / "log"
        install_fakes(monkeypatch, log, {
            "expa": lambda: time.sleep(0.3),
            "expb": None,
            "expc": None,
        })
        results, timings = run_many(["expa", "expb", "expc"],
                                    deadline=0.2)
        assert "text" in results["expa"]
        for name in ("expb", "expc"):
            assert failed(results[name])
            assert results[name]["error_kind"] == "deadline"
            assert "deadline" in results[name]["error"]
        assert set(timings) == {"expa", "expb", "expc"}
        assert executions(log) == ["expa"]

    def test_isolated_deadline_stops_in_flight_workers(
            self, tmp_path, monkeypatch):
        log = tmp_path / "log"
        install_fakes(monkeypatch, log, {
            "expa": lambda: time.sleep(30),
            "expb": lambda: time.sleep(30),
        })
        start = time.monotonic()
        results, _ = run_many(["expa", "expb"], jobs=2, deadline=0.5)
        assert time.monotonic() - start < 20
        for name in ("expa", "expb"):
            assert failed(results[name])
            assert results[name]["error_kind"] == "deadline"


class TestCliFlags:
    def test_deadline_needs_a_number(self, capsys):
        assert main(["--deadline", "soon"]) == 2
        assert "--deadline needs a number" in capsys.readouterr().err

    def test_deadline_must_be_positive(self, capsys):
        assert main(["--deadline", "-3"]) == 2
        assert "must be positive" in capsys.readouterr().err

    def test_resume_conflicts_with_no_cache(self, capsys):
        assert main(["--resume", "--no-cache"]) == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_parse_resume_and_deadline(self):
        names, options = _parse_args(
            ["table3", "--resume", "--deadline", "5"]
        )
        assert names == ["table3"]
        assert options["resume"] is True
        assert options["deadline"] == 5.0


class TestOrphanReaping:
    """Satellite regression: draining a sweep leaves no processes.

    The parent receives SIGTERM mid-sweep; workers — and the
    grandchildren they spawned — must all be gone afterwards. Checked
    via a marker environment variable scanned in ``/proc/*/environ``
    (no psutil available, none needed).
    """

    SCRIPT = textwrap.dedent("""
        import subprocess, sys, time
        sys.path.insert(0, sys.argv[1])
        from repro.harness import runner

        def spawner():
            subprocess.Popen(["sleep", "300"])  # a grandchild
            time.sleep(300)
            return {"text": "unreachable"}

        runner.EXPERIMENTS = {"spawna": spawner, "spawnb": spawner}
        print("ready", flush=True)
        try:
            runner.run_many(["spawna", "spawnb"], jobs=2)
        except BaseException as exc:
            print(f"drained: {type(exc).__name__}", flush=True)
    """)

    @staticmethod
    def marked_pids(token):
        needle = f"REPRO_ORPHAN_MARK={token}".encode()
        found = []
        for entry in os.listdir("/proc"):
            if not entry.isdigit():
                continue
            try:
                with open(f"/proc/{entry}/environ", "rb") as handle:
                    if needle in handle.read():
                        found.append(int(entry))
            except OSError:
                continue
        return found

    def test_sigterm_drain_leaves_no_orphans(self, tmp_path):
        token = f"orphan-test-{os.getpid()}-{time.time_ns()}"
        env = dict(os.environ)
        env["REPRO_ORPHAN_MARK"] = token
        proc = subprocess.Popen(
            [sys.executable, "-c", self.SCRIPT, SRC],
            env=env, stdout=subprocess.PIPE, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            # Let both workers start and spawn their grandchildren.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if len(self.marked_pids(token)) >= 3:  # parent + workers
                    break
                time.sleep(0.05)
            time.sleep(0.3)
            proc.send_signal(signal.SIGTERM)
            assert "drained: SweepInterrupted" in proc.stdout.read()
            proc.wait(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        # Everything carrying the marker must exit promptly.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not self.marked_pids(token):
                return
            time.sleep(0.1)
        leftover = self.marked_pids(token)
        for pid in leftover:  # clean up before failing loudly
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
        pytest.fail(f"orphan processes survived the drain: {leftover}")
